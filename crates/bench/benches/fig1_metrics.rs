use criterion::{criterion_group, criterion_main, Criterion};
use holes_bench::bench_pool;

use holes_compiler::Personality;
use holes_pipeline::regression::quantitative_study;

/// Figure 1: line coverage, availability of variables and their product per
/// compiler version and optimization level.
fn bench(c: &mut Criterion) {
    let pool = bench_pool(40_000);
    for personality in [Personality::Ccg, Personality::Lcc] {
        let rows = quantitative_study(&pool, personality);
        println!("== Figure 1 ({personality}) ==");
        println!("version    level  line-cov  avail   product");
        for row in &rows {
            println!(
                "{:<10} {:<6} {:>7.3} {:>7.3} {:>8.3}",
                row.version,
                row.level.flag(),
                row.metrics.line_coverage,
                row.metrics.availability,
                row.metrics.product
            );
        }
    }
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("quantitative_study_ccg", |b| {
        b.iter(|| quantitative_study(&pool[..1], Personality::Ccg))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
