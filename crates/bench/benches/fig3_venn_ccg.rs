use criterion::{criterion_group, criterion_main, Criterion};
use holes_bench::bench_pool;

use holes_compiler::Personality;
use holes_pipeline::campaign::run_campaign;

/// Figure 3: distribution of unique violations over the sets of
/// optimization levels they reproduce at.
fn bench(c: &mut Criterion) {
    let pool = bench_pool(42_000);
    let personality = Personality::Ccg;
    let result = run_campaign(&pool, personality, personality.trunk());
    println!("== Venn distribution ({personality}) ==");
    for (levels, count) in result.venn() {
        let set: Vec<&str> = levels.iter().map(|l| l.flag()).collect();
        println!("{:<40} {count}", set.join("+"));
    }
    println!("violations at all levels: {}", result.at_all_levels());
    let mut group = c.benchmark_group("fig3_venn_ccg");
    group.sample_size(10);
    group.bench_function("venn", |b| b.iter(|| result.venn()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
