use criterion::{criterion_group, criterion_main, Criterion};
use holes_bench::bench_pool;

use holes_compiler::Personality;
use holes_pipeline::regression::{conjecture_grid, render_grid};

/// Figure 4: per-program count of violated conjectures across gcc-like
/// compiler versions.
fn bench(c: &mut Criterion) {
    let pool = bench_pool(46_000);
    let grid = conjecture_grid(&pool, Personality::Ccg);
    println!("== Figure 4 (ccg) — digits are #conjectures violated per program ==");
    println!("{}", render_grid(&grid, Personality::Ccg));
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("grid_one_program", |b| {
        b.iter(|| conjecture_grid(&pool[..1], Personality::Ccg))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
