//! The oracle hot-path benchmark: precomputed stop plans versus per-stop
//! DIE traversal, and snapshot-derived budget compiles versus full
//! pipeline runs during triage bisection.
//!
//! The run asserts the two headline claims of the allocation-free oracle
//! and aborts loudly if one regresses:
//!
//! 1. servicing breakpoint stops from a cached [`StopPlan`]
//!    (`trace_with_plan`) sustains at least **2× the stops/sec** of the
//!    unplanned reference tracer, across both backends and both debugger
//!    personalities — with the planned and unplanned traces asserted
//!    equal;
//! 2. a triage bisection performs **zero full recompiles for non-trunk
//!    budgets**: every budget probe is derived from the recorded
//!    pass-prefix snapshots by code generation alone (`codegen_only`), and
//!    the only full compile is the unbudgeted endpoint probe.
//!
//! The measured numbers (stops/sec planned vs unplanned, speedup, triage
//! full-compile vs codegen-only counts) are written as a machine-readable
//! JSON report to `BENCH_pr5.json` (override with `HOLES_BENCH_OUT`),
//! which CI uploads as an artifact.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use holes_bench::pool_size;

use holes_compiler::{BackendKind, CompilerConfig, Executable, OptLevel, Personality};
use holes_core::json::Json;
use holes_debugger::{trace_unplanned, trace_with_plan, DebuggerKind, StopPlan};
use holes_pipeline::campaign::run_campaign;
use holes_pipeline::triage::bisect;
use holes_pipeline::Subject;

/// Every (executable, debugger) pair the trace throughput is measured on:
/// both personalities, both backends, both debugger kinds, at -O2.
fn trace_workload(base: u64) -> Vec<(Executable, DebuggerKind)> {
    let mut workload = Vec::new();
    for seed in base..base + pool_size() as u64 {
        let subject = Subject::from_seed(seed).with_fresh_cache();
        for personality in [Personality::Ccg, Personality::Lcc] {
            for backend in BackendKind::ALL {
                let config = CompilerConfig::new(personality, OptLevel::O2).with_backend(backend);
                let exe = subject.compile(&config);
                for kind in [DebuggerKind::GdbLike, DebuggerKind::LldbLike] {
                    workload.push((exe.clone(), kind));
                }
            }
        }
    }
    workload
}

fn oracle_hot_path(c: &mut Criterion) {
    let workload = trace_workload(56_000);
    let repeats = 60u32;

    println!("== trace throughput: planned (stop plans) vs unplanned ==");
    // Planned path, as the artifact cache runs it: the plan is computed
    // once per (executable, debugger) — inside the timed region, amortized
    // over the repeats exactly like a cached plan amortizes over a
    // campaign's oracle queries.
    let started = Instant::now();
    let plans: Vec<StopPlan> = workload
        .iter()
        .map(|(exe, kind)| StopPlan::compute(exe, *kind))
        .collect();
    let mut planned_stops = 0u64;
    for _ in 0..repeats {
        for ((exe, _), plan) in workload.iter().zip(&plans) {
            planned_stops += black_box(trace_with_plan(exe, plan)).stops.len() as u64;
        }
    }
    let planned_elapsed = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let mut unplanned_stops = 0u64;
    for _ in 0..repeats {
        for (exe, kind) in &workload {
            unplanned_stops += black_box(trace_unplanned(exe, *kind)).stops.len() as u64;
        }
    }
    let unplanned_elapsed = started.elapsed().as_secs_f64();

    assert_eq!(planned_stops, unplanned_stops, "stop counts diverged");
    for ((exe, kind), plan) in workload.iter().zip(&plans) {
        assert_eq!(
            trace_with_plan(exe, plan),
            trace_unplanned(exe, *kind),
            "planned trace diverged from the reference"
        );
    }
    let planned_sps = planned_stops as f64 / planned_elapsed.max(f64::EPSILON);
    let unplanned_sps = unplanned_stops as f64 / unplanned_elapsed.max(f64::EPSILON);
    let speedup = planned_sps / unplanned_sps.max(f64::EPSILON);
    println!(
        "  planned {:.2}M stops/sec, unplanned {:.2}M stops/sec, speedup {speedup:.1}x \
         ({planned_stops} stops over {} executables x {repeats} repeats)",
        planned_sps / 1e6,
        unplanned_sps / 1e6,
        workload.len(),
    );
    assert!(
        speedup >= 2.0,
        "planned tracing should sustain at least 2x the unplanned stops/sec (got {speedup:.2}x)"
    );

    println!("== bisection: full compiles vs codegen-only derivations ==");
    let pool: Vec<Subject> = (56_000..56_000 + (pool_size() as u64).max(4))
        .map(Subject::from_seed)
        .collect();
    let personality = Personality::Lcc;
    let result = run_campaign(&pool, personality, personality.trunk());
    assert!(
        !result.records.is_empty(),
        "campaign found no violations to bisect"
    );
    let mut full_compiles = 0usize;
    let mut codegen_only = 0usize;
    let mut bisections = 0usize;
    for record in result.records.iter().take(12) {
        let config =
            CompilerConfig::new(personality, record.level).with_version(personality.trunk());
        let fresh = pool[record.subject].with_fresh_cache();
        let outcome = bisect(&fresh, &config, &record.violation);
        assert!(!outcome.culprits.is_empty(), "bisection found no culprit");
        let stats = fresh.cache_stats();
        // The hard claim: zero full recompiles for non-trunk budgets. The
        // only pipeline run a bisection performs is the unbudgeted
        // endpoint probe; every budget probe is codegen-only.
        assert!(
            stats.compiles <= 1,
            "a budget probe ran the full pipeline: {stats:?}"
        );
        assert!(
            stats.codegen_only >= 1,
            "bisection derived nothing from snapshots: {stats:?}"
        );
        full_compiles += stats.compiles;
        codegen_only += stats.codegen_only;
        bisections += 1;
    }
    println!(
        "  {bisections} bisections: {full_compiles} full compiles \
         (at most one unbudgeted endpoint each), {codegen_only} codegen-only derivations"
    );
    assert!(
        full_compiles <= bisections,
        "more full compiles than bisections"
    );
    assert!(codegen_only > full_compiles, "snapshots saved no work");

    let report = Json::Obj(vec![
        ("format".to_owned(), Json::str("holes.bench/v1")),
        ("bench".to_owned(), Json::str("oracle_hot_path")),
        ("trace_pairs".to_owned(), Json::from_usize(workload.len())),
        ("trace_repeats".to_owned(), Json::from_u64(repeats.into())),
        ("stops".to_owned(), Json::from_u64(planned_stops)),
        (
            "planned_stops_per_sec".to_owned(),
            Json::Num(format!("{planned_sps:.0}")),
        ),
        (
            "unplanned_stops_per_sec".to_owned(),
            Json::Num(format!("{unplanned_sps:.0}")),
        ),
        (
            "trace_speedup".to_owned(),
            Json::Num(format!("{speedup:.2}")),
        ),
        ("bisections".to_owned(), Json::from_usize(bisections)),
        (
            "bisect_full_compiles".to_owned(),
            Json::from_usize(full_compiles),
        ),
        (
            "bisect_codegen_only".to_owned(),
            Json::from_usize(codegen_only),
        ),
    ]);
    let out = std::env::var("HOLES_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr5.json".to_owned());
    std::fs::write(&out, report.to_pretty()).expect("writing the bench report");
    println!("  report written to {out}");

    let mut group = c.benchmark_group("oracle_hot_path");
    group.sample_size(10);
    let (exe, kind) = workload[0].clone();
    let plan = StopPlan::compute(&exe, kind);
    group.bench_function("trace_planned", |b| b.iter(|| trace_with_plan(&exe, &plan)));
    group.bench_function("trace_unplanned", |b| {
        b.iter(|| trace_unplanned(&exe, kind))
    });
    group.finish();
}

criterion_group!(benches, oracle_hot_path);
criterion_main!(benches);
