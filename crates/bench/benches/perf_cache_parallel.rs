//! Performance benchmarks for the evaluation engine itself: the artifact
//! cache, the targeted oracle, the binary-search bisection, and the parallel
//! campaign driver. The run asserts the engine's three headline claims (and
//! aborts loudly if one regresses):
//!
//! 1. binary-search bisection performs strictly fewer oracle compiles than
//!    the linear prefix scan on at least one triaged violation (and never
//!    meaningfully more on any),
//! 2. a repeat `violations()` query on a warm cache is at least 10× faster
//!    than the cold evaluation,
//! 3. the parallel campaign's `table1()` and `venn()` output is
//!    byte-identical to the serial reference implementation.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use holes_bench::bench_pool;

use holes_compiler::{CompilerConfig, Personality};
use holes_pipeline::campaign::{run_campaign, run_campaign_serial};
use holes_pipeline::triage::{bisect, bisect_linear};
use holes_pipeline::Subject;

fn compile_counts(c: &mut Criterion) {
    let pool = bench_pool(51_000);
    let personality = Personality::Lcc;
    let result = run_campaign(&pool, personality, personality.trunk());
    println!("== bisection oracle evaluations (binary vs linear) ==");
    let mut strictly_fewer = 0usize;
    let mut compared = 0usize;
    for record in result.records.iter().take(16) {
        let config =
            CompilerConfig::new(personality, record.level).with_version(personality.trunk());
        // Budget probes derive from pass-prefix snapshots (codegen only),
        // so the work each strategy performs is compiles + codegen_only.
        let for_binary = pool[record.subject].with_fresh_cache();
        let binary = bisect(&for_binary, &config, &record.violation);
        let binary_stats = for_binary.cache_stats();
        let binary_work = binary_stats.compiles + binary_stats.codegen_only;
        let for_linear = pool[record.subject].with_fresh_cache();
        let linear = bisect_linear(&for_linear, &config, &record.violation);
        let linear_stats = for_linear.cache_stats();
        let linear_work = linear_stats.compiles + linear_stats.codegen_only;
        assert_eq!(binary, linear, "bisection strategies disagree on a culprit");
        assert!(
            binary_work <= linear_work.max(6),
            "binary search evaluated noticeably more than the scan: \
             {binary_work} vs {linear_work}"
        );
        assert!(
            binary_stats.compiles <= 1 && linear_stats.compiles <= 1,
            "a non-trunk budget probe ran a full compile: \
             binary {binary_stats:?}, linear {linear_stats:?}"
        );
        println!(
            "  {} line {:>3} {:<12} binary {:>2} evaluations ({} full compiles), linear {:>2} ({})",
            config.describe(),
            record.violation.line,
            record.violation.variable,
            binary_work,
            binary_stats.compiles,
            linear_work,
            linear_stats.compiles,
        );
        strictly_fewer += usize::from(binary_work < linear_work);
        compared += 1;
    }
    assert!(compared > 0, "campaign produced no violations to bisect");
    if cfg!(debug_assertions) {
        println!("  (debug build: the monotonicity assert probes every budget)");
    } else {
        assert!(
            strictly_fewer > 0,
            "binary search never evaluated strictly fewer budgets than the linear scan"
        );
    }
    println!("  strictly fewer on {strictly_fewer}/{compared} violations");

    let mut group = c.benchmark_group("triage_bisect");
    group.sample_size(10);
    if let Some(record) = result.records.first() {
        let config =
            CompilerConfig::new(personality, record.level).with_version(personality.trunk());
        group.bench_function("binary_cold_cache", |b| {
            b.iter(|| {
                let fresh = pool[record.subject].with_fresh_cache();
                bisect(&fresh, &config, &record.violation)
            })
        });
        group.bench_function("linear_cold_cache", |b| {
            b.iter(|| {
                let fresh = pool[record.subject].with_fresh_cache();
                bisect_linear(&fresh, &config, &record.violation)
            })
        });
    }
    group.finish();
}

fn cache_speedup(c: &mut Criterion) {
    let pool = bench_pool(52_000);
    let config = CompilerConfig::new(Personality::Ccg, holes_compiler::OptLevel::O2);
    println!("== warm-cache speedup of violations() ==");
    let mut cold_total = 0.0f64;
    let mut warm_total = 0.0f64;
    for subject in &pool {
        let fresh = subject.with_fresh_cache();
        let start = Instant::now();
        let cold = fresh.violations(&config);
        let cold_elapsed = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let warm = fresh.violations(&config);
        let warm_elapsed = start.elapsed().as_secs_f64();
        assert_eq!(cold, warm, "cached violations differ from the cold run");
        cold_total += cold_elapsed;
        warm_total += warm_elapsed;
    }
    let speedup = cold_total / warm_total.max(f64::EPSILON);
    println!(
        "  cold {:.3} ms, warm {:.3} ms, speedup {speedup:.0}x over {} subjects",
        cold_total * 1e3,
        warm_total * 1e3,
        pool.len()
    );
    assert!(
        speedup >= 10.0,
        "warm-cache violations() should be at least 10x faster (got {speedup:.1}x)"
    );

    let mut group = c.benchmark_group("oracle_cache");
    group.sample_size(10);
    let subject: &Subject = &pool[0];
    group.bench_function("violations_cold", |b| {
        b.iter(|| subject.with_fresh_cache().violations(&config))
    });
    let warm = subject.with_fresh_cache();
    let _ = warm.violations(&config);
    group.bench_function("violations_warm", |b| b.iter(|| warm.violations(&config)));
    group.finish();
}

fn parallel_determinism(c: &mut Criterion) {
    let pool = bench_pool(53_000);
    println!("== parallel vs serial campaign (determinism) ==");
    for personality in [Personality::Ccg, Personality::Lcc] {
        let fresh: Vec<Subject> = pool.iter().map(Subject::with_fresh_cache).collect();
        let parallel = run_campaign(&fresh, personality, personality.trunk());
        let serial = run_campaign_serial(&pool, personality, personality.trunk());
        assert_eq!(
            parallel.table1(),
            serial.table1(),
            "{personality}: parallel table1 diverged from serial"
        );
        assert_eq!(
            parallel.venn(),
            serial.venn(),
            "{personality}: parallel venn diverged from serial"
        );
        println!("  {personality}: byte-identical table1 and venn");
    }

    let mut group = c.benchmark_group("campaign_parallelism");
    group.sample_size(10);
    group.bench_function("run_campaign_parallel", |b| {
        b.iter(|| {
            let fresh: Vec<Subject> = pool.iter().map(Subject::with_fresh_cache).collect();
            run_campaign(&fresh, Personality::Ccg, Personality::Ccg.trunk())
        })
    });
    group.bench_function("run_campaign_serial", |b| {
        b.iter(|| {
            let fresh: Vec<Subject> = pool.iter().map(Subject::with_fresh_cache).collect();
            run_campaign_serial(&fresh, Personality::Ccg, Personality::Ccg.trunk())
        })
    });
    group.finish();
}

criterion_group!(benches, compile_counts, cache_speedup, parallel_determinism);
criterion_main!(benches);
