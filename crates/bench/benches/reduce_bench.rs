use criterion::{criterion_group, criterion_main, Criterion};
use holes_bench::bench_pool;

use holes_compiler::{CompilerConfig, Personality};
use holes_pipeline::campaign::run_campaign;
use holes_pipeline::reduce::reduce;

/// §4.4: violation-preserving test-case reduction.
fn bench(c: &mut Criterion) {
    let pool = bench_pool(48_000);
    let personality = Personality::Ccg;
    let result = run_campaign(&pool, personality, personality.trunk());
    if let Some(record) = result.records.first() {
        let config = CompilerConfig::new(personality, record.level);
        let reduced = reduce(&pool[record.subject], &config, &record.violation, None);
        println!(
            "== Reduction == {} -> {} statements ({} attempts, {:.0}% removed)",
            reduced.original_statements,
            reduced.reduced_statements,
            reduced.attempts,
            100.0 * reduced.reduction_ratio()
        );
        let mut group = c.benchmark_group("reduce");
        group.sample_size(10);
        group.bench_function("reduce_one_violation", |b| {
            b.iter(|| reduce(&pool[record.subject], &config, &record.violation, None))
        });
        group.finish();
    } else {
        println!("no violations found to reduce in this pool");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
