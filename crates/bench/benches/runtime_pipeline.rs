use criterion::{criterion_group, criterion_main, Criterion};
use holes_bench::bench_pool;

use holes_compiler::{CompilerConfig, OptLevel, Personality};

/// §5.1 runtime: per-program, per-conjecture testing cost (the paper reports
/// ~30 s per program per conjecture on real compilers; our substrate is a VM,
/// so only the relative cost of the stages is meaningful).
fn bench(c: &mut Criterion) {
    let pool = bench_pool(47_000);
    let subject = &pool[0];
    let mut group = c.benchmark_group("pipeline_stages");
    group.sample_size(10);
    group.bench_function("compile_O2", |b| {
        b.iter(|| subject.compile(&CompilerConfig::new(Personality::Ccg, OptLevel::O2)))
    });
    group.bench_function("trace_O2", |b| {
        b.iter(|| subject.trace(&CompilerConfig::new(Personality::Ccg, OptLevel::O2)))
    });
    group.bench_function("check_conjectures_O2", |b| {
        b.iter(|| subject.violations(&CompilerConfig::new(Personality::Ccg, OptLevel::O2)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
