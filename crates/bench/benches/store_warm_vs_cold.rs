//! The persistent-store benchmark: one campaign cold (empty cache
//! directory) versus the same campaign warm (fresh in-memory caches, same
//! store — i.e. what a second CLI process sees), plus a raw VM throughput
//! measurement for the hot-loop optimizations.
//!
//! The run asserts the store's headline claims and aborts loudly if one
//! regresses:
//!
//! 1. the warm campaign performs **zero** compiles, traces, and checks —
//!    everything loads from disk;
//! 2. the warm campaign's rendered Table 1 is byte-identical to the cold
//!    run's;
//! 3. warm wall-time beats cold wall-time.
//!
//! The measured numbers (cold/warm wall-times, speedup, VM steps/sec) are
//! additionally written as a machine-readable JSON report to
//! `BENCH_pr3.json` (override the path with `HOLES_BENCH_OUT`), which CI
//! uploads as an artifact.

use std::sync::Arc;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use holes_bench::pool_size;

use holes_compiler::{CompilerConfig, OptLevel, Personality};
use holes_core::json::Json;
use holes_pipeline::campaign::run_campaign;
use holes_pipeline::{ArtifactStore, CacheStats, Subject};

/// Fresh-cache subjects for `seeds`, optionally bound to `store`.
fn pool(base: u64, store: Option<&Arc<ArtifactStore>>) -> Vec<Subject> {
    (base..base + pool_size() as u64)
        .map(|seed| {
            let subject = Subject::from_seed(seed).with_fresh_cache();
            if let Some(store) = store {
                subject.attach_store(Arc::clone(store));
            }
            subject
        })
        .collect()
}

fn aggregate(subjects: &[Subject]) -> CacheStats {
    let mut stats = CacheStats::default();
    for subject in subjects {
        stats.absorb(subject.cache_stats());
    }
    stats
}

fn store_warm_vs_cold(c: &mut Criterion) {
    let base = 54_000u64;
    let personality = Personality::Ccg;
    let root = std::env::temp_dir().join(format!("holes-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = Arc::new(ArtifactStore::open(&root).expect("open store"));

    println!("== persistent store: cold vs warm campaign ==");
    let cold_pool = pool(base, Some(&store));
    let started = Instant::now();
    let cold = run_campaign(&cold_pool, personality, personality.trunk());
    let cold_elapsed = started.elapsed().as_secs_f64();
    let cold_stats = aggregate(&cold_pool);
    assert!(cold_stats.compiles > 0, "cold campaign compiled nothing");
    assert_eq!(cold_stats.disk_loads, 0, "cold store was somehow warm");

    // Fresh in-memory caches bound to the now-populated store: this is what
    // a second `holes` process over the same range experiences.
    let warm_pool = pool(base, Some(&store));
    let started = Instant::now();
    let warm = run_campaign(&warm_pool, personality, personality.trunk());
    let warm_elapsed = started.elapsed().as_secs_f64();
    let warm_stats = aggregate(&warm_pool);
    assert_eq!(warm.table1(), cold.table1(), "warm table1 diverged");
    assert_eq!(warm.records, cold.records, "warm records diverged");
    assert_eq!(warm_stats.compiles, 0, "warm campaign recompiled");
    assert_eq!(warm_stats.traces, 0, "warm campaign retraced");
    assert_eq!(warm_stats.checks, 0, "warm campaign rechecked");
    assert!(warm_stats.disk_loads > 0, "warm campaign loaded nothing");
    let speedup = cold_elapsed / warm_elapsed.max(f64::EPSILON);
    println!(
        "  cold {:.1} ms, warm {:.1} ms, speedup {speedup:.1}x over {} programs \
         ({} disk loads, store at {})",
        cold_elapsed * 1e3,
        warm_elapsed * 1e3,
        cold_pool.len(),
        warm_stats.disk_loads,
        root.display(),
    );
    assert!(
        warm_elapsed < cold_elapsed,
        "warm-store campaign was not faster than cold ({warm_elapsed:.3}s vs {cold_elapsed:.3}s)"
    );

    // Raw VM throughput: run the O0 executables (the step-richest ones) to
    // completion repeatedly and count retired instructions per second.
    println!("== VM throughput (steps/sec) ==");
    let config = CompilerConfig::new(personality, OptLevel::O0);
    let executables: Vec<_> = cold_pool.iter().map(|s| s.compile(&config)).collect();
    let repeats = 20u64;
    let mut steps = 0u64;
    let started = Instant::now();
    for _ in 0..repeats {
        for exe in &executables {
            steps += black_box(exe.run().expect("program runs").steps);
        }
    }
    let vm_elapsed = started.elapsed().as_secs_f64();
    let steps_per_sec = steps as f64 / vm_elapsed.max(f64::EPSILON);
    println!(
        "  {steps} steps in {:.1} ms: {:.1}M steps/sec",
        vm_elapsed * 1e3,
        steps_per_sec / 1e6,
    );

    // The machine-readable report CI uploads.
    let report = Json::Obj(vec![
        ("format".to_owned(), Json::str("holes.bench/v1")),
        ("bench".to_owned(), Json::str("store_warm_vs_cold")),
        ("programs".to_owned(), Json::from_usize(cold_pool.len())),
        (
            "cold_ms".to_owned(),
            Json::Num(format!("{:.3}", cold_elapsed * 1e3)),
        ),
        (
            "warm_ms".to_owned(),
            Json::Num(format!("{:.3}", warm_elapsed * 1e3)),
        ),
        ("speedup".to_owned(), Json::Num(format!("{speedup:.2}"))),
        (
            "cold_compiles".to_owned(),
            Json::from_usize(cold_stats.compiles),
        ),
        (
            "warm_compiles".to_owned(),
            Json::from_usize(warm_stats.compiles),
        ),
        (
            "warm_disk_loads".to_owned(),
            Json::from_usize(warm_stats.disk_loads),
        ),
        ("vm_steps".to_owned(), Json::from_u64(steps)),
        (
            "vm_steps_per_sec".to_owned(),
            Json::Num(format!("{steps_per_sec:.0}")),
        ),
    ]);
    let out = std::env::var("HOLES_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr3.json".to_owned());
    std::fs::write(&out, report.to_pretty()).expect("writing the bench report");
    println!("  report written to {out}");

    let mut group = c.benchmark_group("store");
    group.sample_size(10);
    group.bench_function("campaign_warm_store", |b| {
        b.iter(|| {
            let fresh = pool(base, Some(&store));
            run_campaign(&fresh, personality, personality.trunk())
        })
    });
    group.bench_function("campaign_no_store", |b| {
        b.iter(|| {
            let fresh = pool(base, None);
            run_campaign(&fresh, personality, personality.trunk())
        })
    });
    group.finish();

    let _ = std::fs::remove_dir_all(&root);
}

criterion_group!(benches, store_warm_vs_cold);
criterion_main!(benches);
