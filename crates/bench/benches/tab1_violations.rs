use criterion::{criterion_group, criterion_main, Criterion};
use holes_bench::bench_pool;

use holes_compiler::Personality;
use holes_pipeline::campaign::run_campaign;

/// Table 1: conjecture violations per optimization level (trunk compilers).
fn bench(c: &mut Criterion) {
    let pool = bench_pool(41_000);
    for personality in [Personality::Lcc, Personality::Ccg] {
        let result = run_campaign(&pool, personality, personality.trunk());
        println!(
            "== Table 1 ({personality} trunk, {} programs) ==",
            pool.len()
        );
        println!("{}", result.table1());
        for conjecture in holes_core::Conjecture::ALL {
            println!(
                "programs with no {conjecture} violation: {}/{}",
                result.clean_programs(conjecture),
                pool.len()
            );
        }
    }
    let mut group = c.benchmark_group("tab1");
    group.sample_size(10);
    group.bench_function("campaign_one_program", |b| {
        b.iter(|| run_campaign(&pool[..1], Personality::Ccg, 4))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
