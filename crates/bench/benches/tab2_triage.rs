use criterion::{criterion_group, criterion_main, Criterion};
use holes_bench::bench_pool;

use holes_compiler::Personality;
use holes_pipeline::campaign::run_campaign;
use holes_pipeline::triage::triage_campaign;

/// Table 2: the optimizations most frequently identified as culprits, per
/// conjecture and compiler personality.
fn bench(c: &mut Criterion) {
    let pool = bench_pool(43_000);
    for personality in [Personality::Ccg, Personality::Lcc] {
        let result = run_campaign(&pool, personality, personality.trunk());
        let table = triage_campaign(&pool, personality, personality.trunk(), &result, 4);
        println!("== Table 2 ({personality}) — top culprit passes ==");
        println!("{}", table.render(5));
        println!("distinct culprits: {}", table.distinct_culprits());
    }
    let mut group = c.benchmark_group("tab2");
    group.sample_size(10);
    let result = run_campaign(&pool[..1], Personality::Ccg, 4);
    group.bench_function("triage_one_program", |b| {
        b.iter(|| triage_campaign(&pool[..1], Personality::Ccg, 4, &result, 1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
