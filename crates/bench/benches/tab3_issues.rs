use criterion::{criterion_group, criterion_main, Criterion};
use holes_bench::bench_pool;

use holes_compiler::Personality;
use holes_pipeline::campaign::run_campaign;
use holes_pipeline::report::build_report;

/// Table 3: issue classification by DIE manifestation (Missing / Hollow /
/// Incomplete / covered-but-undisplayable) and compiler-vs-debugger
/// attribution.
fn bench(c: &mut Criterion) {
    let pool = bench_pool(44_000);
    for personality in [Personality::Ccg, Personality::Lcc] {
        let result = run_campaign(&pool, personality, personality.trunk());
        let report = build_report(
            &pool,
            &result,
            personality,
            personality.trunk(),
            holes_pipeline::BackendKind::Reg,
            40,
        );
        println!("== Table 3 ({personality}) ==");
        println!("{}", report.render());
    }
    let mut group = c.benchmark_group("tab3");
    group.sample_size(10);
    let result = run_campaign(&pool[..1], Personality::Ccg, 4);
    group.bench_function("classify", |b| {
        b.iter(|| {
            build_report(
                &pool[..1],
                &result,
                Personality::Ccg,
                4,
                holes_pipeline::BackendKind::Reg,
                5,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
