use criterion::{criterion_group, criterion_main, Criterion};
use holes_bench::bench_pool;

use holes_compiler::Personality;
use holes_pipeline::regression::version_table;

/// Table 4: unique violations across compiler versions, including the
/// "patched" (gcc 105158 fix) and "trunk-star" (LSR partial fix) profiles.
fn bench(c: &mut Criterion) {
    let pool = bench_pool(45_000);
    for personality in [Personality::Ccg, Personality::Lcc] {
        let table = version_table(&pool, personality);
        println!("== Table 4 ({personality}) ==");
        println!("{}", table.render());
        if personality == Personality::Ccg {
            if let (Some(trunk), Some(patched)) =
                (table.counts_for("trunk"), table.counts_for("patched"))
            {
                if trunk[0] > 0 {
                    let drop = 100.0 * (trunk[0] - patched[0]) as f64 / trunk[0] as f64;
                    println!("C1 reduction from the 105158-style patch: {drop:.1}%");
                }
            }
        }
    }
    let mut group = c.benchmark_group("tab4");
    group.sample_size(10);
    group.bench_function("version_table_one_program", |b| {
        b.iter(|| version_table(&pool[..1], Personality::Ccg))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
