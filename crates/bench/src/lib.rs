//! Shared helpers for the benchmark harness that regenerates every table and
//! figure of the paper (see `benches/`). Each bench prints the regenerated
//! rows once (so `cargo bench` output doubles as the experiment log) and then
//! measures the cost of the underlying pipeline stage on a small pool.

#![forbid(unsafe_code)]

use holes_pipeline::{subject_pool, Subject};

/// Size of the program pool used by the benches. The paper uses 1000–5000
/// programs; the benches default to a small pool so that `cargo bench`
/// finishes quickly. Increase via the `HOLES_POOL` environment variable to
/// approach the paper's scale.
pub fn pool_size() -> usize {
    std::env::var("HOLES_POOL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Build the shared benchmark pool.
pub fn bench_pool(seed: u64) -> Vec<Subject> {
    subject_pool(seed, pool_size())
}
