//! A small, dependency-free command-line argument parser.
//!
//! Each subcommand declares its accepted value options and boolean switches
//! up front; unknown flags are rejected with a pointer to `--help` instead
//! of being silently ignored, so campaign scripts fail fast on typos.
//! Supported spellings: `--name value`, `--name=value`, `--switch`, and
//! bare positionals (file paths). `-h` is an alias for `--help`.

use std::fmt;

/// What a subcommand accepts.
pub struct Spec {
    /// Options that take a value (`--seeds 0..200`).
    pub options: &'static [&'static str],
    /// Boolean switches (`--quiet`).
    pub switches: &'static [&'static str],
    /// Whether bare positional arguments (file paths) are accepted.
    pub positionals: bool,
}

/// The parsed arguments of one subcommand invocation.
#[derive(Debug, Default)]
pub struct Parsed {
    options: Vec<(String, String)>,
    switches: Vec<String>,
    positionals: Vec<String>,
}

/// A command-line usage error (reported on stderr with exit code 2).
#[derive(Debug)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for UsageError {}

impl Parsed {
    /// Parse `args` against a spec. `--help`/`-h` always parse as the
    /// `help` switch.
    pub fn parse(args: &[String], spec: &Spec) -> Result<Parsed, UsageError> {
        let mut parsed = Parsed::default();
        let mut iter = args.iter();
        while let Some(token) = iter.next() {
            if token == "--help" || token == "-h" {
                parsed.switches.push("help".to_owned());
                continue;
            }
            if let Some(flag) = token.strip_prefix("--") {
                if let Some((name, value)) = flag.split_once('=') {
                    if spec.switches.contains(&name) {
                        return Err(UsageError(format!(
                            "switch `--{name}` does not take a value"
                        )));
                    }
                    if !spec.options.contains(&name) {
                        return Err(unknown_flag(name, spec));
                    }
                    parsed.options.push((name.to_owned(), value.to_owned()));
                } else if spec.switches.contains(&flag) {
                    parsed.switches.push(flag.to_owned());
                } else if spec.options.contains(&flag) {
                    let value = iter
                        .next()
                        .ok_or_else(|| UsageError(format!("option `--{flag}` expects a value")))?;
                    parsed.options.push((flag.to_owned(), value.clone()));
                } else {
                    return Err(unknown_flag(flag, spec));
                }
            } else if spec.positionals {
                parsed.positionals.push(token.clone());
            } else {
                return Err(UsageError(format!(
                    "unexpected positional argument `{token}`"
                )));
            }
        }
        Ok(parsed)
    }

    /// The last value given for an option, if any.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// An option's value parsed into `T`, or `default` when absent.
    pub fn opt_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, UsageError>
    where
        T::Err: fmt::Display,
    {
        match self.opt(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| UsageError(format!("invalid value for `--{name}`: {e}"))),
        }
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// The bare positional arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }
}

fn unknown_flag(name: &str, spec: &Spec) -> UsageError {
    let mut known: Vec<String> = spec
        .options
        .iter()
        .chain(spec.switches.iter())
        .map(|f| format!("--{f}"))
        .collect();
    known.sort();
    UsageError(format!(
        "unknown flag `--{name}` (accepted: {})",
        known.join(", ")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: Spec = Spec {
        options: &["seeds", "out"],
        switches: &["quiet"],
        positionals: true,
    };

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_options_switches_and_positionals() {
        let parsed = Parsed::parse(
            &strings(&[
                "--seeds",
                "0..4",
                "--quiet",
                "a.json",
                "--out=x.json",
                "b.json",
            ]),
            &SPEC,
        )
        .unwrap();
        assert_eq!(parsed.opt("seeds"), Some("0..4"));
        assert_eq!(parsed.opt("out"), Some("x.json"));
        assert!(parsed.switch("quiet"));
        assert!(!parsed.switch("help"));
        assert_eq!(parsed.positionals(), ["a.json", "b.json"]);
    }

    #[test]
    fn last_occurrence_of_an_option_wins() {
        let parsed =
            Parsed::parse(&strings(&["--seeds", "0..4", "--seeds", "1..2"]), &SPEC).unwrap();
        assert_eq!(parsed.opt("seeds"), Some("1..2"));
    }

    #[test]
    fn rejects_unknown_flags_and_missing_values() {
        assert!(Parsed::parse(&strings(&["--bogus"]), &SPEC).is_err());
        assert!(Parsed::parse(&strings(&["--seeds"]), &SPEC).is_err());
        assert!(Parsed::parse(&strings(&["--bogus=1"]), &SPEC).is_err());
        let switch_value = Parsed::parse(&strings(&["--quiet=true"]), &SPEC).unwrap_err();
        assert!(
            switch_value.to_string().contains("does not take a value"),
            "{switch_value}"
        );
        let no_positionals = Spec {
            positionals: false,
            ..SPEC
        };
        assert!(Parsed::parse(&strings(&["stray"]), &no_positionals).is_err());
    }

    #[test]
    fn help_aliases_parse_everywhere() {
        for alias in ["--help", "-h"] {
            let parsed = Parsed::parse(&strings(&[alias]), &SPEC).unwrap();
            assert!(parsed.switch("help"));
        }
    }

    #[test]
    fn opt_parse_applies_defaults_and_reports_bad_values() {
        let parsed = Parsed::parse(&strings(&["--seeds", "oops"]), &SPEC).unwrap();
        assert!(parsed
            .opt_parse::<holes::progen::SeedRange>("seeds", holes::progen::SeedRange::new(0, 1))
            .is_err());
        let empty = Parsed::parse(&[], &SPEC).unwrap();
        assert_eq!(empty.opt_parse("seeds", 7u64).unwrap(), 7);
    }
}
