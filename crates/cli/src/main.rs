//! `holes` — the command-line driver for the debug-information
//! conjecture-testing pipeline.
//!
//! The five subcommands cover the paper's §4 workflow end to end:
//!
//! * `generate` — inspect the seeded MiniC programs a campaign would test;
//! * `campaign` — run one (optionally sharded) violation campaign over a
//!   seed range and write a deterministic JSON shard file;
//! * `report` — merge shard files back into the monolithic campaign and
//!   render Table 1, the Venn distribution, and the issue classification;
//! * `triage` — attribute violations to culprit optimizations (Table 2);
//! * `reduce` — shrink one violating program while preserving the violation
//!   and its culprit.
//!
//! On top of them, the regression-gating workflow of §5.4 as CI commands:
//!
//! * `baseline` — `record` a run's unique-violation set, `diff` a later run
//!   against it (known/new/fixed; only *new* violations gate, exit 3);
//! * `corpus` — `add` distilled, replayable records of known violations,
//!   `replay` them all (fail fast on known bugs before spending budget).
//!
//! And the distributed campaign service:
//!
//! * `serve` — coordinate a campaign as shard leases handed to TCP workers,
//!   with heartbeat-deadline revocation, bounded retries plus quarantine, a
//!   crash journal that makes restarts free, and a merged stream
//!   byte-identical to the single-process unsharded run;
//! * `work` — a preemptible worker: lease, evaluate resumably, submit.
//!
//! Sharding contract: `K` runs of `campaign --seeds A..B --shards K --shard
//! I`, merged by `report`, produce byte-identical output to the single
//! unsharded run — the seam that lets campaigns fan out across machines
//! (and that makes a sharded `baseline record` byte-identical to an
//! unsharded one).

mod args;

use std::process::ExitCode;
use std::sync::Arc;

use holes::compiler::{BackendKind, CompilerConfig, OptLevel, Personality};
use holes::core::json::Json;
use holes::core::Conjecture;
use holes::pipeline::baseline::{Baseline, ViolationFingerprint, BASELINE_FORMAT};
use holes::pipeline::campaign::{run_campaign_on_with_policy, unique_key, CampaignTallies};
use holes::pipeline::corpus::{distill, Corpus, CorpusEntry, ReplayOutcome};
use holes::pipeline::par::par_map;
use holes::pipeline::reduce::reduce_with_policy;
use holes::pipeline::report::build_report_from_seeds;
use holes::pipeline::report::junit::{junit_xml, CaseOutcome, TestCase};
use holes::pipeline::report::sarif::{sarif_log, SarifResult};
use holes::pipeline::serve::{
    run_worker, Coordinator, LeaseConfig, RemoteStore, ServeConfig, WorkerConfig,
};
use holes::pipeline::shard::{
    merge_shards, run_shard_with_policy, validate_shard_specs, CampaignShard, CampaignSpec,
    ShardError,
};
use holes::pipeline::store::{install_process_store, CACHE_DIR_ENV};
use holes::pipeline::stream::{
    fold_jsonl_reader, is_jsonl_shard, parse_jsonl_header, read_jsonl_shard,
    resume_shard_streaming, run_shard_streaming_with_policy, StreamError,
};
use holes::pipeline::triage::{
    merge_triage_shards, run_triage_shard_with_policy, triage, triage_campaign_on_with_policy,
    TriageShard,
};
use holes::pipeline::{
    subject_pool, ArtifactStore, CacheStats, FaultPolicy, Subject, SubjectKey, SubjectOutcome,
};
use holes::progen::{ProgramGenerator, SeedRange};

use args::{Parsed, Spec, UsageError};

/// Write to stdout, treating a broken pipe (`holes ... | head`) as a clean
/// exit instead of a panic, like any well-behaved Unix filter.
fn stdout_write(text: std::fmt::Arguments<'_>) {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    if let Err(error) = out.write_fmt(text) {
        if error.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("holes: writing to stdout: {error}");
        std::process::exit(1);
    }
}

/// `print!` routed through [`stdout_write`].
macro_rules! out {
    ($($arg:tt)*) => { stdout_write(format_args!($($arg)*)) };
}

/// `println!` routed through [`stdout_write`].
macro_rules! outln {
    () => { stdout_write(format_args!("\n")) };
    ($($arg:tt)*) => { stdout_write(format_args!("{}\n", format_args!($($arg)*))) };
}

const USAGE: &str = "\
holes — conjecture-based hunting for debug-information holes

Usage: holes <command> [options]

Commands:
  generate   Show the seeded programs of a campaign range
  campaign   Run a (sharded) violation campaign, emit a JSON shard file
  report     Merge shard files; render Table 1, Venn, issue classification
  triage     Attribute violations to culprit optimizations (Table 2)
  reduce     Shrink one violating program, preserving violation + culprit
  baseline   Record a run's unique violations; diff later runs (CI gate)
  corpus     Distill known violations for replay; replay them (fail fast)
  serve      Coordinate a distributed campaign over lease-based workers
  work       Run a worker: lease shards from a coordinator, submit results
  cache      Manage the persistent artifact store (gc)
  help       Show this message

Most compiling commands accept `--backend reg|stack|frame` to target an
alternative machine model: the stack VM (`stack`), whose spill-heavy codegen
exposes location-loss classes the register backend cannot express, or the
frame-ABI register backend (`frame`), whose callee-saved save/restore frames
expose frame-base corruption classes neither other backend can express.

Run `holes <command> --help` for per-command options.
";

/// How a successfully-completed command ends the process: `Clean` exits 0;
/// `Faulted` exits 2 — the run finished, but one or more subjects were
/// contained as faults instead of evaluating, so the output is complete but
/// not fault-free; `Regressed` exits 3 — the regression gate fired
/// (`baseline diff` found new violations, or `corpus replay` found entries
/// that no longer reproduce). Hard failures exit 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunStatus {
    /// Every subject evaluated; exit 0.
    Clean,
    /// The command completed but contained subject faults; exit 2.
    Faulted,
    /// The regression gate fired; exit 3.
    Regressed,
}

impl RunStatus {
    /// `Clean` unless `faulted` subjects were contained, in which case the
    /// count is reported on stderr and the status degrades to `Faulted`.
    fn from_faulted(faulted: usize) -> RunStatus {
        if faulted == 0 {
            RunStatus::Clean
        } else {
            eprintln!("holes: {faulted} subject(s) faulted and were contained; exit status 2");
            RunStatus::Faulted
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(RunStatus::Clean) => ExitCode::SUCCESS,
        Ok(RunStatus::Faulted) => ExitCode::from(2),
        Ok(RunStatus::Regressed) => ExitCode::from(3),
        Err(error) => {
            eprintln!("holes: {error}");
            ExitCode::from(1)
        }
    }
}

fn run(argv: &[String]) -> Result<RunStatus, String> {
    let Some(command) = argv.first() else {
        out!("{USAGE}");
        return Ok(RunStatus::Clean);
    };
    let rest = &argv[1..];
    match command.as_str() {
        "generate" => cmd_generate(rest),
        "campaign" => cmd_campaign(rest),
        "report" => cmd_report(rest),
        "triage" => cmd_triage(rest),
        "reduce" => cmd_reduce(rest),
        "baseline" => cmd_baseline(rest),
        "corpus" => cmd_corpus(rest),
        "serve" => cmd_serve(rest),
        "work" => cmd_work(rest),
        "cache" => cmd_cache(rest),
        "help" | "--help" | "-h" => {
            out!("{USAGE}");
            Ok(RunStatus::Clean)
        }
        other => Err(format!("unknown command `{other}`; run `holes help`")),
    }
    .map_err(|e| format!("{command}: {e}"))
}

// ---------------------------------------------------------------- shared

fn parse_or_help(argv: &[String], spec: &Spec, usage: &str) -> Result<Option<Parsed>, UsageError> {
    let parsed = Parsed::parse(argv, spec)?;
    if parsed.switch("help") {
        out!("{usage}");
        return Ok(None);
    }
    Ok(Some(parsed))
}

fn seeds_of(parsed: &Parsed) -> Result<SeedRange, String> {
    parsed
        .opt("seeds")
        .ok_or("missing required option `--seeds A..B`")?
        .parse()
        .map_err(|e| format!("{e}"))
}

fn personality_of(parsed: &Parsed) -> Result<Personality, String> {
    parsed
        .opt_parse("personality", Personality::Ccg)
        .map_err(|e| e.to_string())
}

fn backend_of(parsed: &Parsed) -> Result<BackendKind, String> {
    parsed
        .opt_parse("backend", BackendKind::Reg)
        .map_err(|e| e.to_string())
}

/// The `, backend stack` suffix of progress lines; empty for the default
/// backend so default output stays byte-identical.
fn backend_suffix(backend: BackendKind) -> String {
    if backend == BackendKind::Reg {
        String::new()
    } else {
        format!(", backend {backend}")
    }
}

/// The fault policy of a compiling command: the optional `--fuel-limit`
/// step budget plus whatever `HOLES_FAULT_SEEDS` injects. With neither
/// present this is the default policy, whose output is byte-identical to a
/// pipeline without the containment layer.
fn policy_of(parsed: &Parsed) -> Result<FaultPolicy, String> {
    let fuel_limit = match parsed.opt("fuel-limit") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("invalid value for `--fuel-limit`: `{raw}`"))?,
        ),
        None => None,
    };
    FaultPolicy::from_env(fuel_limit)
}

fn version_of(parsed: &Parsed, personality: Personality) -> Result<usize, String> {
    match parsed.opt("compiler-version") {
        None => Ok(personality.trunk()),
        Some(name) => personality.version_index(name).ok_or_else(|| {
            format!(
                "unknown {personality} version `{name}` (available: {})",
                personality.version_names().join(", ")
            )
        }),
    }
}

fn write_out(parsed: &Parsed, contents: &str) -> Result<(), String> {
    if let Some(path) = parsed.opt("out") {
        std::fs::write(path, contents).map_err(|e| format!("writing `{path}`: {e}"))?;
    }
    Ok(())
}

/// Enable the persistent artifact store when `--cache-dir` (or the
/// `HOLES_CACHE_DIR` environment variable) names a directory. The flag is
/// exported into the environment so every subject this process creates —
/// however deep in the pipeline — binds to the same store.
///
/// An unusable cache directory is not fatal: [`ArtifactStore::from_env`]
/// warns once on stderr and the run continues with in-memory caching only,
/// so a full disk or a permissions slip never kills a long campaign.
fn cache_store(parsed: &Parsed) -> Result<Option<Arc<ArtifactStore>>, String> {
    if let Some(dir) = parsed.opt("cache-dir") {
        std::env::set_var(CACHE_DIR_ENV, dir);
    }
    Ok(ArtifactStore::from_env())
}

/// Print the evaluation-engine statistics on stderr (so stdout's
/// machine-readable output stays byte-identical with and without `--stats`).
fn print_stats(stats: &CacheStats, store: Option<&Arc<ArtifactStore>>) {
    eprintln!(
        "stats: compiles {}, traces {}, checks {}, hits {}, disk loads {}, codegen-only {}, \
         plan stops {}",
        stats.compiles,
        stats.traces,
        stats.checks,
        stats.hits,
        stats.disk_loads,
        stats.codegen_only,
        stats.plan_hits,
    );
    if let Some(store) = store {
        let s = store.stats();
        eprintln!(
            "store: dir {}, loads {}, misses {}, writes {}, rejected {}, retries {}, \
             quarantined {}, store errors {}",
            store.root().display(),
            s.loads,
            s.misses,
            s.writes,
            s.rejected,
            s.retries,
            s.quarantined,
            s.store_errors,
        );
        eprintln!(
            "remote: hits {}, misses {}, rejected {}, degraded {}",
            s.remote_hits, s.remote_misses, s.remote_rejected, s.remote_degraded,
        );
    }
}

// -------------------------------------------------------------- generate

const GENERATE_USAGE: &str = "\
Usage: holes generate --seeds A..B [--source]

Show the programs a campaign over the seed range would test: one summary
line per seed, or the full rendered source with --source.
";

fn cmd_generate(argv: &[String]) -> Result<RunStatus, String> {
    let spec = Spec {
        options: &["seeds"],
        switches: &["source"],
        positionals: false,
    };
    let Some(parsed) = parse_or_help(argv, &spec, GENERATE_USAGE).map_err(|e| e.to_string())?
    else {
        return Ok(RunStatus::Clean);
    };
    let seeds = seeds_of(&parsed)?;
    for seed in seeds.iter() {
        let generated = ProgramGenerator::from_seed(seed).generate();
        if parsed.switch("source") {
            outln!("// seed {seed}");
            out!("{}", generated.source.text);
            outln!();
        } else {
            outln!(
                "seed {seed}: {} statements, {} functions, sites: C1 {}, C2 {}, C3 {}",
                generated.program.stmt_count(),
                generated.program.functions.len(),
                generated.analysis.opaque_calls.len(),
                generated.analysis.global_stores.len(),
                generated.analysis.local_assignments.len(),
            );
        }
    }
    Ok(RunStatus::Clean)
}

// -------------------------------------------------------------- campaign

const CAMPAIGN_USAGE: &str = "\
Usage: holes campaign --seeds A..B [options]

Run one violation campaign shard and emit its deterministic JSON file.

Options:
  --seeds A..B             Seed range of the whole campaign (required)
  --personality ccg|lcc    Compiler personality (default: ccg)
  --compiler-version NAME  Version name, e.g. trunk or 8.4 (default: trunk)
  --backend reg|stack|frame  Machine model to compile for (default: reg);
                           the stack VM surfaces spill-slot location-loss
                           classes the register backend cannot express
  --shards K               Total number of shards (default: 1)
  --shard I                This run's shard index, 0-based (default: 0)
  --out FILE               Write the shard JSON here instead of stdout
  --jsonl                  Stream holes.campaign-jsonl/v1 (one record per
                           line, bounded memory) instead of one document
  --resume                 Continue a killed `--jsonl --out FILE` run: the
                           intact prefix of FILE is kept, the remaining
                           subjects are re-evaluated, and the final file is
                           byte-identical to an uninterrupted run
  --fuel-limit N           Contain subjects whose machines exceed N steps
                           as fault records instead of truncating silently
  --corpus FILE            Prioritize known violations: replay the
                           holes.corpus/v1 entries of FILE first (progress
                           on stderr) and fail fast with exit 3 if any no
                           longer reproduces, before fresh seeds spend
                           budget
  --cache-dir DIR          Persist compiled artifacts under DIR and reuse
                           them across invocations (or set HOLES_CACHE_DIR)
  --stats                  Report cache/store statistics on stderr
  --quiet                  Suppress the progress summary and Table 1

K shard files over the same range, merged with `holes report`, reproduce
the unsharded campaign byte-for-byte; `report` accepts both formats.
A campaign that completes with contained subject faults exits 2.
";

fn cmd_campaign(argv: &[String]) -> Result<RunStatus, String> {
    let spec = Spec {
        options: &[
            "seeds",
            "personality",
            "compiler-version",
            "backend",
            "shards",
            "shard",
            "out",
            "cache-dir",
            "fuel-limit",
            "corpus",
        ],
        switches: &["quiet", "jsonl", "stats", "resume"],
        positionals: false,
    };
    let Some(parsed) = parse_or_help(argv, &spec, CAMPAIGN_USAGE).map_err(|e| e.to_string())?
    else {
        return Ok(RunStatus::Clean);
    };
    let store = cache_store(&parsed)?;
    let policy = policy_of(&parsed)?;
    if let Some(regressed) = corpus_prepass(&parsed)? {
        return Ok(regressed);
    }
    let personality = personality_of(&parsed)?;
    let campaign = CampaignSpec::new(
        personality,
        version_of(&parsed, personality)?,
        seeds_of(&parsed)?,
    )
    .with_shard(
        parsed.opt_parse("shards", 1).map_err(|e| e.to_string())?,
        parsed.opt_parse("shard", 0).map_err(|e| e.to_string())?,
    )
    .with_backend(backend_of(&parsed)?);

    if parsed.switch("jsonl") {
        return campaign_jsonl(&parsed, &campaign, &policy, store.as_ref());
    }
    if parsed.switch("resume") {
        return Err(
            "`--resume` requires `--jsonl` (only the streaming format is resumable)".into(),
        );
    }

    let (shard, stats) = run_shard_with_policy(&campaign, &policy).map_err(|e| e.to_string())?;
    if parsed.switch("stats") {
        print_stats(&stats, store.as_ref());
    }
    let status = RunStatus::from_faulted(shard.result.faults.len());
    let rendered = shard.to_json().to_pretty();
    let Some(path) = parsed.opt("out") else {
        out!("{rendered}");
        return Ok(status);
    };
    std::fs::write(path, &rendered).map_err(|e| format!("writing `{path}`: {e}"))?;
    if !parsed.switch("quiet") {
        outln!(
            "campaign: {} {}, seeds {}, shard {}/{}{}: {} programs, {} violation records",
            campaign.personality,
            campaign.personality.version_names()[campaign.version],
            campaign.seeds,
            campaign.shard,
            campaign.shards,
            backend_suffix(campaign.backend),
            shard.result.programs,
            shard.result.records.len(),
        );
        out!("{}", shard.result.table1());
    }
    Ok(status)
}

/// The `--jsonl` path of `holes campaign`: stream records to the output as
/// they are computed, holding only one evaluation chunk in memory. With
/// `--resume`, continue a killed run's partial file instead of starting
/// over.
fn campaign_jsonl(
    parsed: &Parsed,
    campaign: &CampaignSpec,
    policy: &FaultPolicy,
    store: Option<&Arc<ArtifactStore>>,
) -> Result<RunStatus, String> {
    if parsed.switch("resume") {
        let Some(path) = parsed.opt("out") else {
            return Err("`--resume` requires `--out FILE` (the stream to continue)".into());
        };
        let outcome = resume_shard_streaming(campaign, std::path::Path::new(path), policy)
            .map_err(|e| format!("`{path}`: {e}"))?;
        if parsed.switch("stats") {
            print_stats(&outcome.stats, store);
        }
        if !parsed.switch("quiet") {
            if outcome.already_complete {
                outln!(
                    "campaign: `{path}` is already complete ({} violation records); \
                     nothing to resume",
                    outcome.records,
                );
            } else {
                outln!(
                    "campaign: resumed `{path}`: re-evaluated {} subjects, {} violation \
                     records total",
                    outcome.resumed_subjects,
                    outcome.records,
                );
            }
        }
        return Ok(RunStatus::from_faulted(outcome.faulted));
    }
    let outcome = match parsed.opt("out") {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("writing `{path}`: {e}"))?;
            run_shard_streaming_with_policy(campaign, std::io::BufWriter::new(file), policy)
        }
        None => run_shard_streaming_with_policy(campaign, std::io::stdout().lock(), policy),
    };
    let run = match outcome {
        Ok(summary) => summary,
        // A closed pipe downstream (`holes campaign --jsonl | head`) is a
        // clean exit for a Unix filter, exactly as the non-streaming writer
        // behaves.
        Err(StreamError::Io(error)) if error.kind() == std::io::ErrorKind::BrokenPipe => {
            std::process::exit(0);
        }
        Err(error) => return Err(error.to_string()),
    };
    if parsed.switch("stats") {
        print_stats(&run.stats, store);
    }
    if parsed.opt("out").is_some() && !parsed.switch("quiet") {
        outln!(
            "campaign: {} {}, seeds {}, shard {}/{}{}: {} programs, {} violation records \
             (streamed)",
            campaign.personality,
            campaign.personality.version_names()[campaign.version],
            campaign.seeds,
            campaign.shard,
            campaign.shards,
            backend_suffix(campaign.backend),
            campaign.seeds.shard_len(campaign.shards, campaign.shard),
            run.records,
        );
    }
    Ok(RunStatus::from_faulted(run.faulted))
}

// ---------------------------------------------------------------- report

const REPORT_USAGE: &str = "\
Usage: holes report FILE... [options]

Merge campaign shard files back into the monolithic campaign and render
Table 1, the Venn distribution of Figures 2-3, and (with --issues) the
Table 3 issue classification. The shard files must cover the campaign's
full seed range exactly once. Both shard formats are accepted (and may be
mixed): holes.campaign/v1 documents and holes.campaign-jsonl/v1 streams;
the merged output is byte-identical either way. A truncated JSONL stream
(from a killed campaign) is diagnosed with its intact-record count; rerun
the campaign with --resume to complete it first.

Options:
  --json          Print the machine-readable summary instead of text
  --format FMT    Render the unique violations as `sarif` (SARIF 2.1.0,
                  for code-scanning uploads) or `junit` (JUnit XML, for CI
                  test-summary UIs) instead of the text/JSON report
  --out FILE      Also write the JSON summary (or, with --format, that
                  rendering) to FILE
  --issues N      Classify up to N unique violations (DIE category and
                  compiler/debugger attribution; recompiles the programs)
  --cache-dir DIR Persist/reuse the artifacts --issues recompiles
";

/// Parse one shard file of either format, auto-detected by its first line.
fn parse_shard_file(path: &str) -> Result<CampaignShard, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))?;
    if is_jsonl_shard(&text) {
        return read_jsonl_shard(&text).map_err(|e| format!("`{path}`: {e}"));
    }
    let json = Json::parse(&text).map_err(|e| format!("`{path}`: {e}"))?;
    CampaignShard::from_json(&json).map_err(|e| format!("`{path}`: {e}"))
}

fn cmd_report(argv: &[String]) -> Result<RunStatus, String> {
    let spec = Spec {
        options: &["out", "issues", "cache-dir", "format"],
        switches: &["json"],
        positionals: true,
    };
    let Some(parsed) = parse_or_help(argv, &spec, REPORT_USAGE).map_err(|e| e.to_string())? else {
        return Ok(RunStatus::Clean);
    };
    let _store = cache_store(&parsed)?;
    if parsed.positionals().is_empty() {
        return Err("no shard files given".into());
    }
    let issue_limit: usize = parsed.opt_parse("issues", 0).map_err(|e| e.to_string())?;
    if issue_limit == 0 {
        // The default path streams: every aggregate the report renders is
        // order-independent, so records fold into one accumulator file by
        // file (line by line for JSONL inputs) and are never materialized.
        return report_streaming(&parsed);
    }
    // `--issues` classifies the first N unique violations in canonical
    // merged-record order, so this path still materializes the records.
    let mut shards = Vec::new();
    for path in parsed.positionals() {
        shards.push(parse_shard_file(path)?);
    }
    let campaign = shards[0].spec.clone();
    // Remember which file carried which shard, so a merge failure (duplicate
    // shard index, foreign campaign, missing shard) names the files at
    // fault, not just the indices.
    let origins: Vec<String> = parsed
        .positionals()
        .iter()
        .zip(&shards)
        .map(|(path, shard)| {
            format!(
                "`{path}` (shard {}/{})",
                shard.spec.shard, shard.spec.shards
            )
        })
        .collect();
    let result = merge_shards(shards)
        .map_err(|e: ShardError| format!("{e}; inputs were: {}", origins.join(", ")))?;
    // Regenerates only the (at most `issue_limit`) classified programs
    // from their seeds, not the campaign's full range.
    let issues = build_report_from_seeds(
        &result,
        campaign.personality,
        campaign.version,
        campaign.backend,
        issue_limit,
    );
    render_report(
        &parsed,
        &campaign,
        &result.tallies(),
        Some((&issues, issue_limit)),
    )
}

/// The streaming path of `holes report`: fold every input file's records
/// into one [`CampaignTallies`] accumulator and render from the tallies.
/// Output is byte-identical to the materializing path; memory is bounded
/// by the accumulator (unique violations), never by the record count.
fn report_streaming(parsed: &Parsed) -> Result<RunStatus, String> {
    let (campaign, tallies) = fold_shard_files(parsed.positionals())?;
    render_report(parsed, &campaign, &tallies, None)
}

/// Fold campaign shard files into one [`CampaignTallies`] accumulator —
/// line by line for JSONL shards, per parsed document for classic shards —
/// and validate that together they cover one campaign exactly once. The
/// deterministic-merge seam shared by `holes report` and `holes baseline
/// record`/`diff`: both commands see the identical merged campaign, so a
/// sharded baseline is byte-identical to an unsharded one.
fn fold_shard_files(paths: &[String]) -> Result<(CampaignSpec, CampaignTallies), String> {
    use std::io::{BufRead, Read};
    let mut specs: Vec<CampaignSpec> = Vec::new();
    let mut tallies: Option<CampaignTallies> = None;
    for path in paths {
        let file = std::fs::File::open(path).map_err(|e| format!("reading `{path}`: {e}"))?;
        let mut reader = std::io::BufReader::new(file);
        let mut first_line = String::new();
        reader
            .read_line(&mut first_line)
            .map_err(|e| format!("reading `{path}`: {e}"))?;
        if is_jsonl_shard(&first_line) {
            let (spec, levels) =
                parse_jsonl_header(first_line.trim_end()).map_err(|e| format!("`{path}`: {e}"))?;
            let into = tallies
                .get_or_insert_with(|| CampaignTallies::new(levels, spec.seeds.len() as usize));
            // Chain the already-consumed header line back in front of the
            // remaining stream, so the reader sees the whole file.
            let chained = std::io::Cursor::new(first_line.clone()).chain(reader);
            let summary = fold_jsonl_reader(chained, |record| into.add(&record))
                .map_err(|e| format!("`{path}`: {e}"))?;
            for _ in &summary.faults {
                into.add_fault();
            }
            specs.push(summary.spec);
        } else {
            // A classic holes.campaign/v1 document: parse it, fold its
            // records, and drop it before the next file is opened.
            let mut text = first_line;
            reader
                .read_to_string(&mut text)
                .map_err(|e| format!("reading `{path}`: {e}"))?;
            let json = Json::parse(&text).map_err(|e| format!("`{path}`: {e}"))?;
            let shard = CampaignShard::from_json(&json).map_err(|e| format!("`{path}`: {e}"))?;
            let into = tallies.get_or_insert_with(|| {
                CampaignTallies::new(shard.result.levels.clone(), shard.spec.seeds.len() as usize)
            });
            for record in &shard.result.records {
                into.add(record);
            }
            for _ in &shard.result.faults {
                into.add_fault();
            }
            specs.push(shard.spec);
        }
    }
    let origins: Vec<String> = paths
        .iter()
        .zip(&specs)
        .map(|(path, spec)| format!("`{path}` (shard {}/{})", spec.shard, spec.shards))
        .collect();
    let campaign = validate_shard_specs(&specs)
        .map_err(|e| format!("{e}; inputs were: {}", origins.join(", ")))?;
    let tallies = tallies.expect("at least one input file was folded");
    Ok((campaign, tallies))
}

/// Render the merged campaign — JSON summary and/or the text tables — from
/// its one-pass tallies. Shared by the streaming and materializing paths,
/// which therefore cannot diverge byte-wise.
fn render_report(
    parsed: &Parsed,
    campaign: &CampaignSpec,
    tallies: &CampaignTallies,
    issues: Option<(&holes::pipeline::report::IssueReport, usize)>,
) -> Result<RunStatus, String> {
    // `--format sarif|junit` replaces the report output entirely with the
    // CI-native rendering of the unique-violation set; every other path
    // below is byte-identical to a binary without the option.
    if let Some(format) = parsed.opt("format") {
        let rendered = render_report_format(format, campaign, tallies)?;
        write_out(parsed, &rendered)?;
        out!("{rendered}");
        return Ok(RunStatus::from_faulted(tallies.faulted()));
    }
    // The JSON summary re-aggregates every tally; build it only when a
    // machine-readable sink asked for it.
    if parsed.switch("json") || parsed.opt("out").is_some() {
        let mut header = vec![
            ("format".to_owned(), Json::str("holes.report/v1")),
            (
                "personality".to_owned(),
                Json::str(campaign.personality.name()),
            ),
            (
                "compiler_version".to_owned(),
                Json::str(campaign.personality.version_names()[campaign.version]),
            ),
            ("seeds".to_owned(), Json::str(campaign.seeds.to_string())),
        ];
        if campaign.backend != BackendKind::Reg {
            header.push(("backend".to_owned(), Json::str(campaign.backend.name())));
        }
        header.push(("summary".to_owned(), tallies.summary_json()));
        if let Some((report, _)) = issues {
            header.push(("issues".to_owned(), report.to_json()));
        }
        let rendered = Json::Obj(header).to_pretty();
        write_out(parsed, &rendered)?;
        if parsed.switch("json") {
            out!("{rendered}");
            return Ok(RunStatus::from_faulted(tallies.faulted()));
        }
    }

    outln!(
        "campaign: {} {}, seeds {}{}, {} programs, {} violation records",
        campaign.personality,
        campaign.personality.version_names()[campaign.version],
        campaign.seeds,
        backend_suffix(campaign.backend),
        tallies.programs(),
        tallies.records(),
    );
    // Faulted subjects are reported, never dropped — but the line exists
    // only when there is something to report, keeping fault-free output
    // byte-identical to pre-containment reports.
    if tallies.faulted() > 0 {
        outln!(
            "faulted subjects: {} (contained; records above exclude them)",
            tallies.faulted(),
        );
    }
    outln!();
    outln!("Table 1: violations per level (unique across levels in the last row)");
    out!("{}", tallies.table1());
    outln!();
    outln!("violations at all levels: {}", tallies.at_all_levels());
    outln!(
        "clean programs: C1 {}, C2 {}, C3 {}",
        tallies.clean_programs(Conjecture::C1),
        tallies.clean_programs(Conjecture::C2),
        tallies.clean_programs(Conjecture::C3),
    );
    let venn = tallies.venn();
    if !venn.is_empty() {
        outln!();
        outln!("Venn distribution (level set -> unique violations):");
        for (levels, count) in venn {
            let key: Vec<&str> = levels.iter().map(|l| l.flag()).collect();
            outln!("  {:<28} {count}", key.join(","));
        }
    }
    if let Some((report, limit)) = issues {
        outln!();
        outln!("Table 3: issue classification (first {limit} unique violations)");
        out!("{}", report.render());
    }
    Ok(RunStatus::from_faulted(tallies.faulted()))
}

/// Render the merged campaign's unique-violation set as SARIF or JUnit —
/// each violation keyed by the same canonical fingerprint `baseline diff`
/// uses, so code-scanning UIs dedup results across runs consistently with
/// the gate.
fn render_report_format(
    format: &str,
    campaign: &CampaignSpec,
    tallies: &CampaignTallies,
) -> Result<String, String> {
    let violations: Vec<(ViolationFingerprint, String)> = tallies
        .unique_violations()
        .map(|((subject, conjecture, line, variable), levels)| {
            let fingerprint = ViolationFingerprint {
                seed: campaign.seeds.start + *subject as u64,
                conjecture: *conjecture,
                line: *line,
                variable: variable.to_string(),
            };
            let flags: Vec<&str> = levels.iter().map(|l| l.flag()).collect();
            (fingerprint, flags.join(","))
        })
        .collect();
    let describe = |fp: &ViolationFingerprint, levels: &String| {
        format!(
            "{} violation: variable `{}` at line {} of seed {} ({} {} at {levels})",
            fp.conjecture,
            fp.variable,
            fp.line,
            fp.seed,
            campaign.personality.name(),
            campaign.personality.version_names()[campaign.version],
        )
    };
    match format {
        "sarif" => {
            let results: Vec<SarifResult> = violations
                .iter()
                .map(|(fp, levels)| SarifResult {
                    rule: fp.conjecture,
                    level: "warning",
                    message: describe(fp, levels),
                    uri: format!("seed-{}.minic", fp.seed),
                    line: fp.line,
                    fingerprint: fp.to_string(),
                })
                .collect();
            Ok(sarif_log(&results).to_pretty())
        }
        "junit" => {
            let cases: Vec<TestCase> = violations
                .iter()
                .map(|(fp, levels)| TestCase {
                    classname: format!("holes.{}", fp.conjecture),
                    name: fp.to_string(),
                    outcome: CaseOutcome::Failed {
                        message: describe(fp, levels),
                    },
                })
                .collect();
            Ok(junit_xml("report", &cases))
        }
        other => Err(format!(
            "unknown report format `{other}` (expected `sarif` or `junit`)"
        )),
    }
}

// -------------------------------------------------------------- baseline

const BASELINE_USAGE: &str = "\
Usage: holes baseline record SHARD-FILE... [--out FILE] [--quiet]
       holes baseline diff BASELINE INPUT... [options]

record  Snapshot a merged campaign's unique-violation set into a
        deterministic holes.baseline/v1 document. The shard files must
        cover the campaign's full seed range exactly once (both shard
        formats are accepted); a sharded recording is byte-identical to an
        unsharded one.

diff    Compare a later run against a recorded baseline and partition its
        violations into known (in both), new (only in the run), and fixed
        (only in the baseline). INPUT is either another baseline file or
        the later run's shard files (auto-detected). The runs must share
        personality and backend; the seed range and compiler version may
        differ — growing the range and bumping the version are exactly the
        regression axes the gate exists for. Exits 3 when (and only when)
        *new* violations are present.

Options:
  --out FILE      Write the baseline (record) or the rendered diff (diff)
                  to FILE as well as stdout
  --format FMT    Diff rendering: text (default), json
                  (holes.baseline-diff/v1), sarif (new violations only, as
                  errors), or junit (known pass, new fail, fixed skipped)
  --quiet         Suppress the record summary line when --out is given
";

/// Read and validate one `holes.baseline/v1` file.
fn load_baseline(path: &str) -> Result<Baseline, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("`{path}`: {e}"))?;
    Baseline::from_json(&json).map_err(|e| format!("`{path}`: {e}"))
}

/// Whether a file is a baseline document (rather than a shard file),
/// decided by its `format` tag — JSONL shards never parse as one document,
/// so they fall through to shard handling naturally.
fn is_baseline_file(path: &str) -> Result<bool, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))?;
    Ok(Json::parse(&text)
        .ok()
        .and_then(|json| json.get("format").and_then(Json::as_str).map(String::from))
        .is_some_and(|format| format == BASELINE_FORMAT))
}

fn cmd_baseline(argv: &[String]) -> Result<RunStatus, String> {
    let spec = Spec {
        options: &["out", "format"],
        switches: &["quiet"],
        positionals: true,
    };
    let Some(parsed) = parse_or_help(argv, &spec, BASELINE_USAGE).map_err(|e| e.to_string())?
    else {
        return Ok(RunStatus::Clean);
    };
    match parsed.positionals() {
        [action, files @ ..] if action == "record" => baseline_record(&parsed, files),
        [action, baseline, inputs @ ..] if action == "diff" => {
            baseline_diff(&parsed, baseline, inputs)
        }
        [action] if action == "diff" => {
            Err("diff needs a baseline file and the later run's input".into())
        }
        [] => Err("missing action (try `holes baseline record` or `holes baseline diff`)".into()),
        [other, ..] => Err(format!(
            "unknown baseline action `{other}` (expected `record` or `diff`)"
        )),
    }
}

/// `holes baseline record`: fold the shard files and snapshot the merged
/// campaign's unique-violation set.
fn baseline_record(parsed: &Parsed, files: &[String]) -> Result<RunStatus, String> {
    if files.is_empty() {
        return Err("no shard files given".into());
    }
    if parsed.opt("format").is_some() {
        return Err("`--format` applies to `diff` only (a baseline has one format)".into());
    }
    let (campaign, tallies) = fold_shard_files(files)?;
    let baseline = Baseline::from_tallies(&campaign, &tallies);
    let rendered = baseline.to_json().to_pretty();
    let status = RunStatus::from_faulted(tallies.faulted());
    let Some(path) = parsed.opt("out") else {
        out!("{rendered}");
        return Ok(status);
    };
    std::fs::write(path, &rendered).map_err(|e| format!("writing `{path}`: {e}"))?;
    if !parsed.switch("quiet") {
        outln!(
            "baseline: {} {}, seeds {}{}: {} unique violations recorded",
            campaign.personality,
            campaign.personality.version_names()[campaign.version],
            campaign.seeds,
            backend_suffix(campaign.backend),
            baseline.fingerprints.len(),
        );
    }
    Ok(status)
}

/// `holes baseline diff`: compare a later run (baseline file or shard
/// files) against the recorded baseline; new violations gate with exit 3.
fn baseline_diff(
    parsed: &Parsed,
    baseline_path: &str,
    inputs: &[String],
) -> Result<RunStatus, String> {
    if inputs.is_empty() {
        return Err("diff needs a baseline file and the later run's input".into());
    }
    let baseline = load_baseline(baseline_path)?;
    let run = if inputs.len() == 1 && is_baseline_file(&inputs[0])? {
        load_baseline(&inputs[0])?
    } else {
        let (campaign, tallies) = fold_shard_files(inputs)?;
        Baseline::from_tallies(&campaign, &tallies)
    };
    let diff = baseline.diff(&run).map_err(|e| e.to_string())?;
    let rendered = match parsed.opt("format").unwrap_or("text") {
        "text" => diff.render(),
        "json" => diff.to_json().to_pretty(),
        "sarif" => diff.sarif().to_pretty(),
        "junit" => diff.junit(),
        other => {
            return Err(format!(
                "unknown diff format `{other}` (expected `text`, `json`, `sarif`, or `junit`)"
            ))
        }
    };
    write_out(parsed, &rendered)?;
    out!("{rendered}");
    if diff.has_regressions() {
        eprintln!(
            "holes: {} new violation(s) not in the baseline; exit status 3",
            diff.new.len(),
        );
        return Ok(RunStatus::Regressed);
    }
    Ok(RunStatus::Clean)
}

// ---------------------------------------------------------------- corpus

const CORPUS_USAGE: &str = "\
Usage: holes corpus add --corpus FILE (--seed S | SHARD-FILE...) [options]
       holes corpus replay --corpus FILE [options]

add     Distill known violations into replayable holes.corpus/v1 entries:
        triage the culprit pass, reduce the program while preserving the
        violation, and merge the entries into FILE (created if missing; an
        entry re-added for the same seed, configuration, and site replaces
        the old one). With --seed, distill the first violation of that
        seeded program; with shard files, distill up to --limit unique
        violations of the merged campaign in canonical order.

replay  Re-verify every entry of FILE: regenerate its program from the
        seed, probe the recorded violation site under the recorded
        configuration, and confirm the culprit attribution (a pass-level
        culprit must take the violation with it when disabled; an `isel`
        culprit must survive a zero-pass pipeline). Exits 3 listing the
        entries that no longer reproduce — run it first in CI, so known
        bugs fail fast before fresh seeds spend budget.

Options:
  --corpus FILE            The corpus to add to / replay (required)
  --seed S                 Distill from this seeded program (add)
  --limit N                Unique violations distilled per `add` run from
                           shard files (default: 5)
  --personality ccg|lcc    Personality for --seed mode (default: ccg)
  --compiler-version NAME  Version name for --seed mode (default: trunk)
  --backend reg|stack|frame  Machine model for --seed mode (default: reg)
  --level -O2              Level for --seed mode (default: first violating)
  --cache-dir DIR          Persist compiled artifacts under DIR and reuse
                           them across invocations (or set HOLES_CACHE_DIR);
                           distilled entries are mirrored into the store
  --quiet                  Suppress the per-entry progress lines
";

fn cmd_corpus(argv: &[String]) -> Result<RunStatus, String> {
    let spec = Spec {
        options: &[
            "corpus",
            "seed",
            "limit",
            "personality",
            "compiler-version",
            "backend",
            "level",
            "cache-dir",
        ],
        switches: &["quiet"],
        positionals: true,
    };
    let Some(parsed) = parse_or_help(argv, &spec, CORPUS_USAGE).map_err(|e| e.to_string())? else {
        return Ok(RunStatus::Clean);
    };
    match parsed.positionals() {
        [action, files @ ..] if action == "add" => corpus_add(&parsed, files),
        [action] if action == "replay" => corpus_replay(&parsed),
        [action, stray, ..] if action == "replay" => Err(format!(
            "unexpected argument `{stray}` after `replay` (the corpus is `--corpus FILE`)"
        )),
        [] => Err("missing action (try `holes corpus add` or `holes corpus replay`)".into()),
        [other, ..] => Err(format!(
            "unknown corpus action `{other}` (expected `add` or `replay`)"
        )),
    }
}

/// Read a corpus file, or start an empty corpus if the file does not exist
/// yet (so the first `corpus add` needs no separate init step).
fn load_corpus(path: &str) -> Result<Corpus, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) if error.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Corpus::new());
        }
        Err(error) => return Err(format!("reading `{path}`: {error}")),
    };
    let json = Json::parse(&text).map_err(|e| format!("`{path}`: {e}"))?;
    Corpus::from_json(&json).map_err(|e| format!("`{path}`: {e}"))
}

/// `holes corpus add`: distill violations (from one seed or from shard
/// files) and merge the entries into the corpus file.
fn corpus_add(parsed: &Parsed, files: &[String]) -> Result<RunStatus, String> {
    let corpus_path = parsed
        .opt("corpus")
        .ok_or("missing required option `--corpus FILE`")?;
    let store = cache_store(parsed)?;
    let mut corpus = load_corpus(corpus_path)?;
    let entries = match parsed.opt("seed") {
        Some(raw) => {
            if !files.is_empty() {
                return Err(format!(
                    "cannot combine `--seed` with shard files (`{}`)",
                    files[0]
                ));
            }
            let seed: u64 = raw
                .parse()
                .map_err(|_| format!("invalid value for `--seed`: `{raw}`"))?;
            corpus_distill_seed(parsed, seed)?
        }
        None => {
            if files.is_empty() {
                return Err("nothing to add: give `--seed S` or shard files".into());
            }
            let limit: usize = parsed.opt_parse("limit", 5).map_err(|e| e.to_string())?;
            corpus_distill_shards(files, limit)?
        }
    };
    let mut added = 0usize;
    for entry in entries {
        // Mirror the distilled entry into the artifact store, beside the
        // compiled artifacts its replay will reuse.
        if let Some(store) = &store {
            let subject = Subject::from_seed(entry.seed);
            store.save_corpus_entry(
                SubjectKey::derive(entry.seed, &subject.source.text),
                &entry.config(),
                entry.conjecture,
                entry.line,
                &entry.variable,
                entry.to_json(),
            );
        }
        if !parsed.switch("quiet") {
            outln!(
                "corpus add: {} ({} {} {}{}), culprit {}, {} -> {} statements",
                entry.fingerprint(),
                entry.personality,
                entry.personality.version_names()[entry.version],
                entry.level.flag(),
                backend_suffix(entry.backend),
                entry.culprit.as_deref().unwrap_or("none"),
                entry.original_statements,
                entry.reduced_statements,
            );
        }
        if corpus.add(entry) {
            added += 1;
        }
    }
    let rendered = corpus.to_json().to_pretty();
    std::fs::write(corpus_path, &rendered).map_err(|e| format!("writing `{corpus_path}`: {e}"))?;
    if !parsed.switch("quiet") {
        outln!(
            "corpus: {} entries in `{corpus_path}` ({added} new)",
            corpus.entries.len(),
        );
    }
    Ok(RunStatus::Clean)
}

/// Distill the first violation of one seeded program (the `--seed` mode of
/// `corpus add`), honoring the personality/version/backend/level options.
fn corpus_distill_seed(parsed: &Parsed, seed: u64) -> Result<Vec<CorpusEntry>, String> {
    let personality = personality_of(parsed)?;
    let version = version_of(parsed, personality)?;
    let backend = backend_of(parsed)?;
    let subject = Subject::from_seed(seed);
    let levels: Vec<OptLevel> = match parsed.opt("level") {
        Some(raw) => {
            let level: OptLevel = raw.parse().map_err(|e| format!("{e}"))?;
            if !personality.levels().contains(&level) {
                return Err(format!(
                    "{personality} does not evaluate {level} (levels: {})",
                    personality
                        .levels()
                        .iter()
                        .map(|l| l.flag())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            vec![level]
        }
        None => personality.levels().to_vec(),
    };
    let found = levels.iter().find_map(|&level| {
        let config = CompilerConfig::new(personality, level)
            .with_version(version)
            .with_backend(backend);
        let violation = subject.violations(&config).first().cloned()?;
        Some((config, violation))
    });
    let Some((config, violation)) = found else {
        return Err(format!(
            "seed {seed}: no violations under {} {} at {}",
            personality,
            personality.version_names()[version],
            levels
                .iter()
                .map(|l| l.flag())
                .collect::<Vec<_>>()
                .join(", "),
        ));
    };
    Ok(vec![distill(&subject, &config, &violation)])
}

/// Distill up to `limit` unique violations of the merged campaign the
/// shard files describe, in canonical merged-record order (the shard-file
/// mode of `corpus add`).
fn corpus_distill_shards(files: &[String], limit: usize) -> Result<Vec<CorpusEntry>, String> {
    let mut shards = Vec::new();
    for path in files {
        shards.push(parse_shard_file(path)?);
    }
    let campaign = shards[0].spec.clone();
    let origins: Vec<String> = files
        .iter()
        .zip(&shards)
        .map(|(path, shard)| {
            format!(
                "`{path}` (shard {}/{})",
                shard.spec.shard, shard.spec.shards
            )
        })
        .collect();
    let result = merge_shards(shards)
        .map_err(|e: ShardError| format!("{e}; inputs were: {}", origins.join(", ")))?;
    let mut seen = std::collections::BTreeSet::new();
    let mut entries = Vec::new();
    for record in &result.records {
        if entries.len() >= limit {
            break;
        }
        if !seen.insert(unique_key(record)) {
            continue;
        }
        let subject = Subject::from_seed(record.seed);
        let config = CompilerConfig::new(campaign.personality, record.level)
            .with_version(campaign.version)
            .with_backend(campaign.backend);
        entries.push(distill(&subject, &config, &record.violation));
    }
    Ok(entries)
}

/// `holes corpus replay`: re-verify every entry in parallel; entries that
/// no longer reproduce (or whose culprit attribution fails) gate with
/// exit 3.
/// The outcome of replaying a whole corpus: rendered per-entry verdict
/// lines (with pass flags, so callers can filter under `--quiet`) and the
/// failure tally. Shared by `holes corpus replay` and the `--corpus`
/// seed-prioritization pre-pass of `campaign` and `serve`.
struct CorpusReplay {
    lines: Vec<(String, bool)>,
    total: usize,
    failed: usize,
}

fn replay_corpus(corpus_path: &str) -> Result<CorpusReplay, String> {
    let text = std::fs::read_to_string(corpus_path)
        .map_err(|e| format!("reading `{corpus_path}`: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("`{corpus_path}`: {e}"))?;
    let corpus = Corpus::from_json(&json).map_err(|e| format!("`{corpus_path}`: {e}"))?;
    let outcomes: Vec<ReplayOutcome> = par_map(&corpus.entries, |_, entry| {
        entry.replay(&Subject::from_seed(entry.seed))
    });
    let mut failed = 0usize;
    let mut lines = Vec::with_capacity(corpus.entries.len());
    for (entry, outcome) in corpus.entries.iter().zip(&outcomes) {
        let verdict = if outcome.passed() {
            "ok"
        } else if !outcome.reproduced {
            failed += 1;
            "FAILED (violation gone)"
        } else {
            failed += 1;
            "FAILED (culprit attribution no longer holds)"
        };
        lines.push((
            format!(
                "replay {} ({} {} {}{}): {verdict}",
                outcome.fingerprint,
                entry.personality,
                entry.personality.version_names()[entry.version],
                entry.level.flag(),
                backend_suffix(entry.backend),
            ),
            outcome.passed(),
        ));
    }
    Ok(CorpusReplay {
        lines,
        total: corpus.entries.len(),
        failed,
    })
}

fn corpus_replay(parsed: &Parsed) -> Result<RunStatus, String> {
    let corpus_path = parsed
        .opt("corpus")
        .ok_or("missing required option `--corpus FILE`")?;
    let _store = cache_store(parsed)?;
    let replay = replay_corpus(corpus_path)?;
    if replay.total == 0 {
        outln!("corpus replay: `{corpus_path}` has no entries");
        return Ok(RunStatus::Clean);
    }
    for (line, passed) in &replay.lines {
        if !parsed.switch("quiet") || !passed {
            outln!("{line}");
        }
    }
    outln!(
        "corpus replay: {} of {} entries reproduced",
        replay.total - replay.failed,
        replay.total,
    );
    if replay.failed > 0 {
        eprintln!(
            "holes: {} corpus entr(y/ies) failed to replay; exit status 3",
            replay.failed
        );
        return Ok(RunStatus::Regressed);
    }
    Ok(RunStatus::Clean)
}

/// Seed prioritization: when a campaign (or serve) run names a `--corpus`,
/// replay the known violations *first* and fail fast — exit 3 before any
/// fresh seed (or shard lease) spends budget — if one no longer
/// reproduces. All replay output goes to stderr so the campaign's own
/// stdout (shard JSON, merged stream) stays byte-identical with and
/// without the pre-pass.
fn corpus_prepass(parsed: &Parsed) -> Result<Option<RunStatus>, String> {
    let Some(corpus_path) = parsed.opt("corpus") else {
        return Ok(None);
    };
    let replay = replay_corpus(corpus_path)?;
    if replay.total == 0 {
        eprintln!("holes: corpus `{corpus_path}` has no entries; continuing");
        return Ok(None);
    }
    for (line, passed) in &replay.lines {
        if !parsed.switch("quiet") || !passed {
            eprintln!("{line}");
        }
    }
    eprintln!(
        "corpus replay: {} of {} entries reproduced",
        replay.total - replay.failed,
        replay.total,
    );
    if replay.failed > 0 {
        eprintln!(
            "holes: {} known violation(s) no longer reproduce; failing fast before \
             spending campaign budget; exit status 3",
            replay.failed
        );
        return Ok(Some(RunStatus::Regressed));
    }
    Ok(None)
}

// ----------------------------------------------------------- serve/work

/// SIGTERM → drain. The handler only stores to an atomic the coordinator
/// loop polls; `signal(2)` is declared directly (typed function-pointer
/// handler, no cast) so no foreign crate is needed.
#[cfg(unix)]
mod term {
    use std::sync::atomic::AtomicBool;

    pub static DRAIN: AtomicBool = AtomicBool::new(false);

    type Handler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    extern "C" fn on_term(_signum: i32) {
        DRAIN.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    const SIGTERM: i32 = 15;

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_term);
        }
    }
}

#[cfg(not(unix))]
mod term {
    use std::sync::atomic::AtomicBool;

    pub static DRAIN: AtomicBool = AtomicBool::new(false);

    pub fn install() {}
}

const SERVE_USAGE: &str = "\
Usage: holes serve --seeds A..B --listen ADDR --journal FILE [options]

Coordinate a distributed campaign: decompose the seed range into shard
leases, hand them to `holes work` workers over TCP (holes.rpc/v1), and
merge the accepted shards into a holes.campaign-jsonl/v1 stream that is
byte-identical to a single-process unsharded run of the same range.

Leases carry heartbeat deadlines: a worker that dies or is preempted
loses its lease after 4 missed beats, the shard requeues, and any late
result from the revoked lease is discarded — no subject is ever
double-counted. Every accepted shard is fsynced into the journal before
it is acknowledged, so a coordinator killed mid-campaign and restarted
with the same --journal resumes without re-running finished work. A
shard that burns --max-attempts leases is quarantined and reported
instead of hanging the campaign. SIGTERM drains: no new leases, in-flight
work finishes and is journaled, then the coordinator exits 2.

Options:
  --seeds A..B             Seed range of the whole campaign (required)
  --personality ccg|lcc    Compiler personality (default: ccg)
  --compiler-version NAME  Version name, e.g. trunk or 8.4 (default: trunk)
  --backend reg|stack|frame  Machine model to compile for (default: reg)
  --listen ADDR            host:port to accept workers on (required);
                           port 0 picks a free port (address on stderr)
  --journal FILE           holes.serve-journal/v1 crash journal (required)
  --lease-shards K         Shard leases to cut the campaign into
                           (default: 16)
  --heartbeat-ms N         Worker heartbeat cadence, 1..=86400000
                           (default: 500)
  --max-attempts N         Leases a shard may burn before quarantine
                           (default: 3)
  --out FILE               Write the merged stream here instead of stdout
  --corpus FILE            Prioritize known violations: replay the
                           holes.corpus/v1 entries of FILE and fail fast
                           with exit 3 before any lease is granted
  --cache-dir DIR          Also serve a fleet-wide artifact cache out of
                           DIR (holes.cache-rpc/v1, same listener; or set
                           HOLES_CACHE_DIR); workers opt in with
                           --cache-server. HOLES_CACHE_CHAOS=
                           drop:N|corrupt:N|delay:N mutates the N-th
                           cache reply for chaos testing
  --quiet                  Suppress lease progress on stderr

Exit status: 0 — complete, no contained faults; 2 — complete with
contained faults, or cut short by quarantined shards or a SIGTERM drain
(the merged output is only written when every shard completed); 1 — hard
failure (bad spec, unusable journal, socket errors).
";

fn cmd_serve(argv: &[String]) -> Result<RunStatus, String> {
    let spec = Spec {
        options: &[
            "seeds",
            "personality",
            "compiler-version",
            "backend",
            "listen",
            "journal",
            "lease-shards",
            "heartbeat-ms",
            "max-attempts",
            "out",
            "corpus",
            "cache-dir",
        ],
        switches: &["quiet"],
        positionals: false,
    };
    let Some(parsed) = parse_or_help(argv, &spec, SERVE_USAGE).map_err(|e| e.to_string())? else {
        return Ok(RunStatus::Clean);
    };
    let personality = personality_of(&parsed)?;
    let campaign = CampaignSpec::new(
        personality,
        version_of(&parsed, personality)?,
        seeds_of(&parsed)?,
    )
    .with_backend(backend_of(&parsed)?);
    let listen = parsed
        .opt("listen")
        .ok_or("missing required option `--listen ADDR`")?;
    let journal = parsed
        .opt("journal")
        .ok_or("missing required option `--journal FILE`")?;
    if let Some(regressed) = corpus_prepass(&parsed)? {
        return Ok(regressed);
    }
    let heartbeat_ms: u64 = parsed
        .opt_parse("heartbeat-ms", 500)
        .map_err(|e| e.to_string())?;
    // Reject nonsense cadences at the door rather than letting them reach
    // deadline arithmetic: zero would revoke every lease instantly, and
    // anything beyond a day is a typo'd unit, not a heartbeat.
    const MAX_HEARTBEAT_MS: u64 = 24 * 60 * 60 * 1000;
    if heartbeat_ms == 0 || heartbeat_ms > MAX_HEARTBEAT_MS {
        return Err(format!(
            "`--heartbeat-ms {heartbeat_ms}` is out of range (expected 1..={MAX_HEARTBEAT_MS})"
        ));
    }
    let config = ServeConfig {
        lease_shards: parsed
            .opt_parse("lease-shards", 16)
            .map_err(|e| e.to_string())?,
        lease: LeaseConfig {
            heartbeat: std::time::Duration::from_millis(heartbeat_ms),
            max_attempts: parsed
                .opt_parse("max-attempts", 3)
                .map_err(|e| e.to_string())?,
        },
        journal: std::path::PathBuf::from(journal),
        cache: cache_store(&parsed)?,
        cache_chaos: None,
        quiet: parsed.switch("quiet"),
    };
    let coordinator = Coordinator::bind(listen).map_err(|e| format!("binding `{listen}`: {e}"))?;
    // Always announced (even under --quiet): with `--listen 127.0.0.1:0`
    // this line is how anyone learns the actual port.
    eprintln!(
        "serve: listening on {}",
        coordinator.local_addr().map_err(|e| e.to_string())?
    );
    term::install();
    let report = coordinator
        .run(&campaign, &config, &term::DRAIN)
        .map_err(|e| e.to_string())?;

    for (index, cause) in &report.quarantined {
        eprintln!("holes: shard {index} quarantined: {cause}");
    }
    if !report.complete() {
        if !report.quarantined.is_empty() {
            eprintln!(
                "holes: {} shard(s) quarantined; merged output not written; exit status 2",
                report.quarantined.len()
            );
        }
        if report.drained {
            eprintln!(
                "holes: drained before completion; merged output not written \
                 (resume with the same --journal); exit status 2"
            );
        }
        return Ok(RunStatus::Faulted);
    }

    let merged = match parsed.opt("out") {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("writing `{path}`: {e}"))?;
            let run = report
                .write_merged(std::io::BufWriter::new(file))
                .map_err(|e| format!("writing `{path}`: {e}"))?;
            if !parsed.switch("quiet") {
                outln!(
                    "serve: campaign complete: {} shards, {} programs, {} violation records \
                     (merged)",
                    report.shards.len(),
                    campaign.seeds.len(),
                    run.records,
                );
            }
            run
        }
        None => match report.write_merged(std::io::stdout().lock()) {
            Ok(run) => run,
            // A closed pipe downstream is a clean exit for a Unix filter,
            // matching `campaign --jsonl`.
            Err(holes::pipeline::serve::ServeError::Io(error))
                if error.kind() == std::io::ErrorKind::BrokenPipe =>
            {
                std::process::exit(0);
            }
            Err(error) => return Err(error.to_string()),
        },
    };
    Ok(RunStatus::from_faulted(merged.faulted))
}

const WORK_USAGE: &str = "\
Usage: holes work --connect ADDR [options]

Run a campaign worker: lease shards from a `holes serve` coordinator,
evaluate them with fault containment, heartbeat in the background, and
submit the results. Shards stream through the resumable JSON Lines
writer into --work-dir, so a worker killed mid-shard (kill -9 included)
and restarted over the same directory re-evaluates only the unfinished
suffix of its shard.

Options:
  --connect ADDR           Coordinator host:port (required)
  --work-dir DIR           Directory for in-progress shard streams
                           (default: holes-work); keep it stable across
                           restarts — that is what makes recovery cheap
  --worker-id NAME         Label shown in coordinator logs (default: pid-N)
  --fuel-limit N           Contain subjects whose machines exceed N steps
                           as fault records instead of truncating silently
  --patience-ms N          How long to retry an unreachable coordinator —
                           which may be restarting from its journal —
                           before shutting down cleanly (default: 10000)
  --cache-dir DIR          Persist compiled artifacts under DIR and reuse
                           them across invocations (or set HOLES_CACHE_DIR)
  --cache-server ADDR      Fetch artifacts from (and write them through
                           to) the coordinator's shared cache at ADDR
                           (holes.cache-rpc/v1); without --cache-dir the
                           local tier defaults to WORK-DIR/cache. Every
                           fetched artifact is revalidated like a disk
                           load — a corrupt or stale reply is quarantined
                           and recomputed, never trusted
  --cache-failures N       Consecutive cache transport failures before the
                           circuit breaker degrades this worker to
                           local-only caching, with periodic re-probes
                           (default: 3)
  --stats                  Report cache/store statistics on stderr
  --quiet                  Suppress per-lease progress on stderr

A worker exits 0 when the coordinator reports the campaign over (or
stays unreachable past the patience window) and 1 on hard errors. An
unreachable or misbehaving cache server is never fatal: the worker
degrades to local-only caching and still exits 0. Results from revoked
leases are submitted anyway and discarded by the coordinator —
preemption never double-counts a subject.
HOLES_SERVE_CHAOS=abort:N|preempt:N injects deterministic failures for
chaos testing (see `holes serve`).
";

fn cmd_work(argv: &[String]) -> Result<RunStatus, String> {
    let spec = Spec {
        options: &[
            "connect",
            "work-dir",
            "worker-id",
            "fuel-limit",
            "patience-ms",
            "cache-dir",
            "cache-server",
            "cache-failures",
        ],
        switches: &["quiet", "stats"],
        positionals: false,
    };
    let Some(parsed) = parse_or_help(argv, &spec, WORK_USAGE).map_err(|e| e.to_string())? else {
        return Ok(RunStatus::Clean);
    };
    let mut store = cache_store(&parsed)?;
    let work_dir = std::path::PathBuf::from(parsed.opt("work-dir").unwrap_or("holes-work"));
    if let Some(server) = parsed.opt("cache-server") {
        if store.is_none() {
            // The remote tier layers under a local store; default to a
            // cache beside the shard streams so `--cache-server` alone
            // gives the full memory → disk → remote ladder.
            let root = work_dir.join("cache");
            match ArtifactStore::open(&root) {
                Ok(local) => {
                    let local = Arc::new(local);
                    install_process_store(Some(Arc::clone(&local)));
                    store = Some(local);
                }
                Err(error) => eprintln!(
                    "holes: cache at {} unusable ({error}); continuing with in-memory caching only",
                    root.display()
                ),
            }
        }
        if let Some(local) = &store {
            let failures: u32 = parsed
                .opt_parse("cache-failures", 3)
                .map_err(|e| e.to_string())?;
            let remote = RemoteStore::new(server)
                .with_failure_threshold(failures)
                .with_quiet(parsed.switch("quiet"));
            local.attach_remote(Arc::new(remote));
        }
    } else if parsed.opt("cache-failures").is_some() {
        return Err("`--cache-failures` requires `--cache-server ADDR`".into());
    }
    let policy = policy_of(&parsed)?;
    let connect = parsed
        .opt("connect")
        .ok_or("missing required option `--connect ADDR`")?;
    let patience_ms: u64 = parsed
        .opt_parse("patience-ms", 10_000)
        .map_err(|e| e.to_string())?;
    let config = WorkerConfig {
        connect: connect.to_owned(),
        work_dir,
        policy,
        worker_id: parsed
            .opt("worker-id")
            .map(str::to_owned)
            .unwrap_or_else(|| format!("pid-{}", std::process::id())),
        patience: std::time::Duration::from_millis(patience_ms),
        quiet: parsed.switch("quiet"),
    };
    let outcome = run_worker(&config).map_err(|e| e.to_string())?;
    if parsed.switch("stats") {
        print_stats(&outcome.stats, store.as_ref());
    }
    if !parsed.switch("quiet") {
        outln!(
            "work: {} lease(s), {} accepted, {} discarded, {} subject(s) resumed",
            outcome.leases,
            outcome.accepted,
            outcome.discarded,
            outcome.resumed_subjects,
        );
    }
    Ok(RunStatus::Clean)
}

// ---------------------------------------------------------------- triage

const TRIAGE_USAGE: &str = "\
Usage: holes triage --seeds A..B [options]
       holes triage --seeds A..B --shards K --shard I [options]
       holes triage SHARD-FILE... [options]

Run the campaign over the seed range and attribute a sample of its unique
violations to culprit optimizations: pass bisection for lcc, per-flag
disabling for ccg (Table 2).

With --shards/--shard, run one shard of a sharded triage and emit a
deterministic holes.triage-shard/v1 JSON file; in shard mode the limit is
applied per conjecture *per subject* (selection is then shard-local), and
K merged shard files reproduce the K=1 run exactly. With shard FILEs as
positional arguments, merge them and render Table 2.

Options:
  --seeds A..B             Seed range (required unless merging files)
  --personality ccg|lcc    Compiler personality (default: ccg)
  --compiler-version NAME  Version name (default: trunk)
  --backend reg|stack|frame  Machine model to compile for (default: reg)
  --shards K               Total number of triage shards
  --shard I                This run's shard index, 0-based
  --limit N                Violations triaged per conjecture (default: 10);
                           per subject in shard mode
  --top M                  Culprits listed per conjecture (default: 5)
  --json                   Print the machine-readable table instead
  --out FILE               Also write the JSON output to FILE
  --quiet                  Suppress the shard-mode progress summary
  --fuel-limit N           Contain subjects whose machines exceed N steps
                           as faults instead of truncating silently
  --cache-dir DIR          Persist compiled artifacts under DIR and reuse
                           them across invocations (or set HOLES_CACHE_DIR)
  --stats                  Report cache/store statistics on stderr
";

fn cmd_triage(argv: &[String]) -> Result<RunStatus, String> {
    let spec = Spec {
        options: &[
            "seeds",
            "personality",
            "compiler-version",
            "backend",
            "shards",
            "shard",
            "limit",
            "top",
            "out",
            "cache-dir",
            "fuel-limit",
        ],
        switches: &["json", "stats", "quiet"],
        positionals: true,
    };
    let Some(parsed) = parse_or_help(argv, &spec, TRIAGE_USAGE).map_err(|e| e.to_string())? else {
        return Ok(RunStatus::Clean);
    };
    let store = cache_store(&parsed)?;
    let policy = policy_of(&parsed)?;
    let top: usize = parsed.opt_parse("top", 5).map_err(|e| e.to_string())?;
    if !parsed.positionals().is_empty() {
        // Merge mode is selected by the positional shard files; run-mode
        // options would be silently ignored, so a mixture is an error (a
        // stray token must not hijack a campaign invocation).
        for option in [
            "seeds",
            "personality",
            "compiler-version",
            "backend",
            "shards",
            "shard",
            "limit",
            "fuel-limit",
        ] {
            if parsed.opt(option).is_some() {
                return Err(format!(
                    "cannot combine shard files with `--{option}` (merge mode takes only \
                     `--top`, `--json`, and `--out`)"
                ));
            }
        }
        return triage_merge(&parsed, top);
    }
    let seeds = seeds_of(&parsed)?;
    let personality = personality_of(&parsed)?;
    let version = version_of(&parsed, personality)?;
    let backend = backend_of(&parsed)?;
    let limit: usize = parsed.opt_parse("limit", 10).map_err(|e| e.to_string())?;
    if parsed.opt("shards").is_some() || parsed.opt("shard").is_some() {
        let spec = CampaignSpec::new(personality, version, seeds)
            .with_shard(
                parsed.opt_parse("shards", 1).map_err(|e| e.to_string())?,
                parsed.opt_parse("shard", 0).map_err(|e| e.to_string())?,
            )
            .with_backend(backend);
        return triage_shard_mode(&parsed, &spec, limit, &policy, store.as_ref());
    }
    let subjects = subject_pool(seeds.start, seeds.len() as usize);
    let result = run_campaign_on_with_policy(&subjects, personality, version, backend, &policy);
    let (table, triage_faults) = triage_campaign_on_with_policy(
        &subjects,
        personality,
        version,
        backend,
        &result,
        limit,
        &policy,
    );
    let faulted = result.faults.len() + triage_faults.len();
    if parsed.switch("stats") {
        let mut stats = CacheStats::default();
        for subject in &subjects {
            stats.absorb(subject.cache_stats());
        }
        print_stats(&stats, store.as_ref());
    }
    let rendered = table.to_json().to_pretty();
    write_out(&parsed, &rendered)?;
    if parsed.switch("json") {
        out!("{rendered}");
        return Ok(RunStatus::from_faulted(faulted));
    }
    outln!(
        "triage: {} {}, seeds {}{}, up to {limit} violations per conjecture",
        personality,
        personality.version_names()[version],
        seeds,
        backend_suffix(backend),
    );
    outln!();
    outln!("Table 2: culprit passes per conjecture (top {top})");
    out!("{}", table.render(top));
    Ok(RunStatus::from_faulted(faulted))
}

/// The shard mode of `holes triage`: run one shard, emit its
/// `holes.triage-shard/v1` JSON.
fn triage_shard_mode(
    parsed: &Parsed,
    spec: &CampaignSpec,
    limit: usize,
    policy: &FaultPolicy,
    store: Option<&Arc<ArtifactStore>>,
) -> Result<RunStatus, String> {
    let (shard, faults, stats) =
        run_triage_shard_with_policy(spec, limit, policy).map_err(|e| e.to_string())?;
    if parsed.switch("stats") {
        print_stats(&stats, store);
    }
    let status = RunStatus::from_faulted(faults.len());
    let rendered = shard.to_json().to_pretty();
    let Some(path) = parsed.opt("out") else {
        out!("{rendered}");
        return Ok(status);
    };
    std::fs::write(path, &rendered).map_err(|e| format!("writing `{path}`: {e}"))?;
    if !parsed.switch("quiet") {
        outln!(
            "triage: {} {}, seeds {}, shard {}/{}{}, up to {limit} violations per conjecture \
             per subject",
            spec.personality,
            spec.personality.version_names()[spec.version],
            spec.seeds,
            spec.shard,
            spec.shards,
            backend_suffix(spec.backend),
        );
    }
    Ok(status)
}

/// The merge mode of `holes triage`: fold triage shard files back into the
/// monolithic Table 2.
fn triage_merge(parsed: &Parsed, top: usize) -> Result<RunStatus, String> {
    let mut shards = Vec::new();
    for path in parsed.positionals() {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))?;
        let json = Json::parse(&text).map_err(|e| format!("`{path}`: {e}"))?;
        shards.push(TriageShard::from_json(&json).map_err(|e| format!("`{path}`: {e}"))?);
    }
    let first = shards[0].clone();
    let table = merge_triage_shards(shards).map_err(|e| e.to_string())?;
    let rendered = table.to_json().to_pretty();
    write_out(parsed, &rendered)?;
    if parsed.switch("json") {
        out!("{rendered}");
        return Ok(RunStatus::Clean);
    }
    // No shard count in the header: merging K files must render
    // byte-identically to merging the single K=1 file.
    outln!(
        "triage: {} {}, seeds {}{}, up to {} violations per conjecture per subject",
        first.spec.personality,
        first.spec.personality.version_names()[first.spec.version],
        first.spec.seeds,
        backend_suffix(first.spec.backend),
        first.limit,
    );
    outln!();
    outln!("Table 2: culprit passes per conjecture (top {top})");
    out!("{}", table.render(top));
    Ok(RunStatus::Clean)
}

// ---------------------------------------------------------------- reduce

const REDUCE_USAGE: &str = "\
Usage: holes reduce --seed S [options]

Find a conjecture violation on the seeded program, triage its culprit
optimization, and shrink the program while preserving both the violation
and the culprit (the paper's reduction oracle).

Options:
  --seed S                 Program seed (required)
  --personality ccg|lcc    Compiler personality (default: ccg)
  --compiler-version NAME  Version name (default: trunk)
  --backend reg|stack|frame  Machine model to compile for (default: reg)
  --level -O2              Optimization level (default: first violating)
  --no-culprit             Reduce without preserving the culprit
  --fuel-limit N           Contain a reduction whose oracle machines exceed
                           N steps as a fault (exit 2) instead of hanging
  --cache-dir DIR          Persist compiled artifacts under DIR and reuse
                           them across invocations (or set HOLES_CACHE_DIR)
";

fn cmd_reduce(argv: &[String]) -> Result<RunStatus, String> {
    let spec = Spec {
        options: &[
            "seed",
            "personality",
            "compiler-version",
            "backend",
            "level",
            "cache-dir",
            "fuel-limit",
        ],
        switches: &["no-culprit"],
        positionals: false,
    };
    let Some(parsed) = parse_or_help(argv, &spec, REDUCE_USAGE).map_err(|e| e.to_string())? else {
        return Ok(RunStatus::Clean);
    };
    let _store = cache_store(&parsed)?;
    let policy = policy_of(&parsed)?;
    let seed: u64 = match parsed.opt("seed") {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value for `--seed`: `{raw}`"))?,
        None => return Err("missing required option `--seed S`".into()),
    };
    let personality = personality_of(&parsed)?;
    let version = version_of(&parsed, personality)?;
    let backend = backend_of(&parsed)?;
    let subject = Subject::from_seed(seed);

    // Pick the level: the requested one, or the first level that violates.
    let levels: Vec<OptLevel> = match parsed.opt("level") {
        Some(raw) => {
            let level: OptLevel = raw.parse().map_err(|e| format!("{e}"))?;
            if !personality.levels().contains(&level) {
                return Err(format!(
                    "{personality} does not evaluate {level} (levels: {})",
                    personality
                        .levels()
                        .iter()
                        .map(|l| l.flag())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            vec![level]
        }
        None => personality.levels().to_vec(),
    };
    let found = levels.iter().find_map(|&level| {
        let config = CompilerConfig::new(personality, level)
            .with_version(version)
            .with_backend(backend);
        let violation = subject.violations(&config).first().cloned()?;
        Some((config, violation))
    });
    let Some((config, violation)) = found else {
        outln!(
            "seed {seed}: no violations under {} {} at {}",
            personality,
            personality.version_names()[version],
            levels
                .iter()
                .map(|l| l.flag())
                .collect::<Vec<_>>()
                .join(", "),
        );
        return Ok(RunStatus::Clean);
    };
    outln!(
        "seed {seed}: {} violation at {} — variable `{}` at line {}, observed {}",
        violation.conjecture,
        config.describe(),
        violation.variable,
        violation.line,
        violation.observed,
    );

    let culprit = if parsed.switch("no-culprit") {
        None
    } else {
        let outcome = triage(&subject, &config, &violation);
        match outcome.culprits.first() {
            Some(pass) => {
                outln!("culprit: {pass} (of {:?})", outcome.culprits);
                Some(pass.clone())
            }
            None => {
                outln!("culprit: none identified; reducing without culprit preservation");
                None
            }
        }
    };
    let reduced = match reduce_with_policy(
        &subject,
        &config,
        &violation,
        culprit.as_deref(),
        &policy,
        0,
    ) {
        SubjectOutcome::Completed(reduced) => reduced,
        SubjectOutcome::Faulted(fault) => {
            eprintln!(
                "holes: reduction of seed {seed} faulted during {} and was contained: {}",
                fault.stage, fault.cause,
            );
            return Ok(RunStatus::Faulted);
        }
    };
    outln!(
        "reduced {} -> {} statements ({:.0}% smaller) in {} attempts",
        reduced.original_statements,
        reduced.reduced_statements,
        reduced.reduction_ratio() * 100.0,
        reduced.attempts,
    );
    outln!();
    outln!("// reduced program (seed {seed})");
    out!("{}", reduced.subject.source.text);
    Ok(RunStatus::Clean)
}

// ----------------------------------------------------------------- cache

const CACHE_USAGE: &str = "\
Usage: holes cache gc --max-bytes N [--cache-dir DIR]

Garbage-collect the persistent artifact store down to at most N bytes,
evicting whole fingerprints (every artifact of one subject+configuration
pair together) oldest-first by modification time. Safe to run while
campaign shards are writing to the same store.

Options:
  --max-bytes N    Byte budget the store is collected down to (required)
  --cache-dir DIR  The store to collect (or set HOLES_CACHE_DIR)
";

fn cmd_cache(argv: &[String]) -> Result<RunStatus, String> {
    let spec = Spec {
        options: &["max-bytes", "cache-dir"],
        switches: &[],
        positionals: true,
    };
    let Some(parsed) = parse_or_help(argv, &spec, CACHE_USAGE).map_err(|e| e.to_string())? else {
        return Ok(RunStatus::Clean);
    };
    match parsed.positionals() {
        [action] if action == "gc" => {}
        [action, stray, ..] if action == "gc" => {
            return Err(format!(
                "unexpected argument `{stray}` after `gc` (the budget is `--max-bytes N`)"
            ));
        }
        [] => return Err("missing action (try `holes cache gc --max-bytes N`)".into()),
        [other, ..] => return Err(format!("unknown cache action `{other}` (expected `gc`)")),
    }
    let store = cache_store(&parsed)?
        .ok_or("no artifact store configured (use --cache-dir or HOLES_CACHE_DIR)")?;
    let max_bytes: u64 = match parsed.opt("max-bytes") {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value for `--max-bytes`: `{raw}`"))?,
        None => return Err("missing required option `--max-bytes N`".into()),
    };
    let stats = store
        .gc(max_bytes)
        .map_err(|e| format!("collecting `{}`: {e}", store.root().display()))?;
    outln!(
        "cache gc: {} -> {} bytes (budget {max_bytes}); evicted {} fingerprints, {} files, \
         {} bytes",
        stats.scanned_bytes,
        stats.remaining_bytes,
        stats.evicted_fingerprints,
        stats.deleted_files,
        stats.deleted_bytes,
    );
    Ok(RunStatus::Clean)
}
