//! End-to-end tests of the `holes` binary, including the acceptance
//! criterion of the sharding contract: `campaign --seeds 0..200 --shards 4
//! --shard i` outputs, merged via `report`, are byte-identical to the
//! single-shard run.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn holes(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_holes"))
        .args(args)
        .output()
        .expect("spawning the holes binary")
}

fn ok_stdout(args: &[&str]) -> Vec<u8> {
    let output = holes(args);
    assert!(
        output.status.success(),
        "`holes {}` failed: {}",
        args.join(" "),
        String::from_utf8_lossy(&output.stderr)
    );
    output.stdout
}

/// Compare `actual` against the committed fixture `tests/golden/<name>` at
/// the workspace root, or rewrite the fixture when `HOLES_BLESS=1` is set
/// (mirroring the root crate's golden-file tests).
fn golden(name: &str, actual: &[u8]) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name);
    if std::env::var_os("HOLES_BLESS").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless it with `HOLES_BLESS=1 cargo test -p holes_cli`",
            path.display()
        )
    });
    assert_eq!(
        String::from_utf8_lossy(actual),
        String::from_utf8_lossy(&expected),
        "`{name}` drifted from its golden fixture; if the change is \
         intended, re-bless with `HOLES_BLESS=1 cargo test -p holes_cli`"
    );
}

/// A scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("holes-cli-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("creating scratch dir");
        Scratch(dir)
    }

    fn path(&self, file: &str) -> String {
        self.0.join(file).to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn four_sharded_campaigns_merge_byte_identically_to_the_single_shard_run() {
    let scratch = Scratch::new("shards");
    let seeds = "0..200";
    let mut shard_files = Vec::new();
    for shard in 0..4 {
        let file = scratch.path(&format!("shard{shard}.json"));
        ok_stdout(&[
            "campaign",
            "--seeds",
            seeds,
            "--shards",
            "4",
            "--shard",
            &shard.to_string(),
            "--out",
            &file,
            "--quiet",
        ]);
        shard_files.push(file);
    }
    let full = scratch.path("full.json");
    ok_stdout(&["campaign", "--seeds", seeds, "--out", &full, "--quiet"]);

    // Text report: merged shards (in scrambled order) vs the monolithic run.
    let mut merged_args = vec!["report"];
    merged_args.extend(shard_files.iter().rev().map(String::as_str));
    let merged_text = ok_stdout(&merged_args);
    let single_text = ok_stdout(&["report", &full]);
    assert_eq!(
        merged_text, single_text,
        "merged text report differs from the single-shard run"
    );
    assert!(!merged_text.is_empty());

    // JSON report: same byte-identity.
    let mut merged_json_args = vec!["report", "--json"];
    merged_json_args.extend(shard_files.iter().map(String::as_str));
    let merged_json = ok_stdout(&merged_json_args);
    let single_json = ok_stdout(&["report", "--json", &full]);
    assert_eq!(
        merged_json, single_json,
        "merged JSON report differs from the single-shard run"
    );

    // The shard files really partition the work: per-shard record counts sum
    // to the monolithic run's.
    let count_records = |path: &str| {
        std::fs::read_to_string(Path::new(path))
            .unwrap()
            .matches("\"seed\":")
            .count()
    };
    let sharded_total: usize = shard_files.iter().map(|f| count_records(f)).sum();
    assert_eq!(sharded_total, count_records(&full));
    assert!(sharded_total > 0, "campaign found no violations at all");
}

#[test]
fn report_rejects_incomplete_and_foreign_shard_sets() {
    let scratch = Scratch::new("report-errors");
    let shard0 = scratch.path("shard0.json");
    let other = scratch.path("other.json");
    ok_stdout(&[
        "campaign", "--seeds", "0..20", "--shards", "2", "--shard", "0", "--out", &shard0,
        "--quiet",
    ]);
    ok_stdout(&["campaign", "--seeds", "0..30", "--out", &other, "--quiet"]);

    let incomplete = holes(&["report", &shard0]);
    assert!(!incomplete.status.success());
    assert!(String::from_utf8_lossy(&incomplete.stderr).contains("cover"));

    let mixed = holes(&["report", &shard0, &other]);
    assert!(!mixed.status.success());

    let missing = holes(&["report", &scratch.path("does-not-exist.json")]);
    assert!(!missing.status.success());

    let none = holes(&["report"]);
    assert!(!none.status.success());
    assert!(String::from_utf8_lossy(&none.stderr).contains("no shard files"));
}

#[test]
fn campaign_output_is_deterministic_across_runs_and_equals_the_out_file() {
    let scratch = Scratch::new("determinism");
    let stdout_run = ok_stdout(&["campaign", "--seeds", "40..44", "--personality", "lcc"]);
    let again = ok_stdout(&["campaign", "--seeds", "40..44", "--personality", "lcc"]);
    assert_eq!(stdout_run, again, "campaign output is not deterministic");
    let file = scratch.path("out.json");
    ok_stdout(&[
        "campaign",
        "--seeds",
        "40..44",
        "--personality",
        "lcc",
        "--out",
        &file,
        "--quiet",
    ]);
    assert_eq!(stdout_run, std::fs::read(Path::new(&file)).unwrap());
}

#[test]
fn generate_triage_and_reduce_cover_the_paper_workflow() {
    let generate = ok_stdout(&["generate", "--seeds", "5..7"]);
    let text = String::from_utf8(generate).unwrap();
    assert!(
        text.contains("seed 5:") && text.contains("seed 6:"),
        "{text}"
    );

    let source =
        String::from_utf8(ok_stdout(&["generate", "--seeds", "5..6", "--source"])).unwrap();
    assert!(source.contains("int main(void)"), "{source}");

    let triage = String::from_utf8(ok_stdout(&[
        "triage",
        "--seeds",
        "0..6",
        "--personality",
        "lcc",
        "--limit",
        "2",
    ]))
    .unwrap();
    assert!(triage.contains("Table 2"), "{triage}");

    let reduce = String::from_utf8(ok_stdout(&["reduce", "--seed", "3"])).unwrap();
    assert!(reduce.contains("reduced"), "{reduce}");
}

/// Extract the integer following `label` in the `--stats` stderr line.
fn stat_after(stderr: &str, label: &str) -> usize {
    let start = stderr
        .find(label)
        .unwrap_or_else(|| panic!("no `{label}` in stats output: {stderr}"))
        + label.len();
    stderr[start..]
        .trim_start()
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .and_then(|digits| digits.parse().ok())
        .unwrap_or_else(|| panic!("no number after `{label}` in: {stderr}"))
}

#[test]
fn second_triage_process_over_a_cached_range_compiles_nothing() {
    let scratch = Scratch::new("warm-triage");
    let cache = scratch.path("cache");
    let seeds = "300..312";

    // A campaign populates the persistent store across process boundaries.
    let shard_file = scratch.path("campaign.json");
    ok_stdout(&[
        "campaign",
        "--seeds",
        seeds,
        "--cache-dir",
        &cache,
        "--out",
        &shard_file,
        "--quiet",
    ]);

    let triage_args = [
        "triage",
        "--seeds",
        seeds,
        "--cache-dir",
        &cache,
        "--stats",
        "--limit",
        "2",
        "--json",
    ];
    let first = holes(&triage_args);
    assert!(first.status.success(), "{first:?}");
    let first_stderr = String::from_utf8_lossy(&first.stderr).into_owned();
    assert!(
        stat_after(&first_stderr, "disk loads") > 0,
        "first triage did not reuse the campaign's artifacts: {first_stderr}"
    );

    // The second process finds *everything* (campaign + triage probes) on
    // disk: zero compilations, zero traces, zero checks.
    let second = holes(&triage_args);
    assert!(second.status.success(), "{second:?}");
    let second_stderr = String::from_utf8_lossy(&second.stderr).into_owned();
    assert_eq!(
        stat_after(&second_stderr, "compiles"),
        0,
        "warm triage recompiled: {second_stderr}"
    );
    assert_eq!(
        stat_after(&second_stderr, "traces"),
        0,
        "warm triage retraced: {second_stderr}"
    );
    assert_eq!(
        stat_after(&second_stderr, "checks"),
        0,
        "warm triage rechecked: {second_stderr}"
    );
    assert!(stat_after(&second_stderr, "disk loads") > 0);
    assert_eq!(
        first.stdout, second.stdout,
        "cached triage output diverged from the cold run"
    );

    // And the cache is observably *used*, not just written: a cache-less run
    // agrees byte-for-byte on stdout too.
    let bare = ok_stdout(&["triage", "--seeds", seeds, "--limit", "2", "--json"]);
    assert_eq!(bare, second.stdout);
}

#[test]
fn corrupted_cache_files_are_ignored_and_rewritten() {
    let scratch = Scratch::new("corrupt-cache");
    let cache = scratch.path("cache");
    let args = [
        "campaign",
        "--seeds",
        "330..336",
        "--cache-dir",
        &cache,
        "--quiet",
    ];
    let clean = ok_stdout(&args);

    // Truncate or garble every artifact the store wrote.
    let mut damaged = 0;
    for entry in walkdir(Path::new(&cache)) {
        let text = std::fs::read_to_string(&entry).unwrap();
        let bad = if damaged % 2 == 0 {
            text[..text.len() / 3].to_owned()
        } else {
            "garbage".to_owned()
        };
        std::fs::write(&entry, bad).unwrap();
        damaged += 1;
    }
    assert!(damaged > 0, "store wrote nothing under {cache}");

    // The next process rejects the damage, recomputes, and stays correct.
    let recovered = ok_stdout(&args);
    assert_eq!(clean, recovered, "corrupted store changed campaign output");
    // A third run loads the healed files and still agrees.
    let healed = ok_stdout(&args);
    assert_eq!(clean, healed);
}

fn walkdir(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                files.push(path);
            }
        }
    }
    files
}

#[test]
fn jsonl_shards_report_byte_identically_and_mix_with_classic_shards() {
    let scratch = Scratch::new("jsonl");
    let seeds = "360..400";

    // Full classic run as the reference.
    let full = scratch.path("full.json");
    ok_stdout(&["campaign", "--seeds", seeds, "--out", &full, "--quiet"]);

    // Shard 0 streamed as JSONL, shard 1 classic.
    let s0 = scratch.path("s0.jsonl");
    ok_stdout(&[
        "campaign", "--seeds", seeds, "--shards", "2", "--shard", "0", "--jsonl", "--out", &s0,
        "--quiet",
    ]);
    let s1 = scratch.path("s1.json");
    ok_stdout(&[
        "campaign", "--seeds", seeds, "--shards", "2", "--shard", "1", "--out", &s1, "--quiet",
    ]);

    let jsonl_text = std::fs::read_to_string(Path::new(&s0)).unwrap();
    let first_line = jsonl_text.lines().next().unwrap();
    assert!(
        first_line.contains("holes.campaign-jsonl/v1"),
        "{first_line}"
    );
    assert!(jsonl_text.lines().last().unwrap().contains("\"end\":true"));

    for flags in [vec![], vec!["--json"]] {
        let mut mixed_args = vec!["report"];
        mixed_args.extend(flags.iter().copied());
        let mut single_args = mixed_args.clone();
        mixed_args.extend([s0.as_str(), s1.as_str()]);
        single_args.push(full.as_str());
        assert_eq!(
            ok_stdout(&mixed_args),
            ok_stdout(&single_args),
            "JSONL+classic merge diverged from the classic run ({flags:?})"
        );
    }

    // Streaming to stdout equals the file contents.
    let streamed = ok_stdout(&[
        "campaign", "--seeds", seeds, "--shards", "2", "--shard", "0", "--jsonl",
    ]);
    assert_eq!(streamed, jsonl_text.as_bytes());

    // A truncated stream is rejected by report with a pointer to the file.
    let truncated = scratch.path("trunc.jsonl");
    let cut = jsonl_text.len() - jsonl_text.len() / 4;
    std::fs::write(Path::new(&truncated), &jsonl_text[..cut]).unwrap();
    let failure = holes(&["report", &truncated, &s1]);
    assert_eq!(failure.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&failure.stderr);
    assert!(stderr.contains("trunc.jsonl"), "{stderr}");
    // The diagnostic names the intact prefix and the recovery flag.
    assert!(stderr.contains("truncated stream ("), "{stderr}");
    assert!(stderr.contains("rerun with --resume"), "{stderr}");
}

/// The distinct (seed, level, violation-site) keys of a campaign shard
/// file.
fn record_keys(path: &str) -> std::collections::BTreeSet<String> {
    let text = std::fs::read_to_string(Path::new(path)).unwrap();
    let json = holes::core::json::Json::parse(&text).unwrap();
    let records = json.get("records").and_then(|r| r.as_arr()).unwrap();
    records
        .iter()
        .map(|record| {
            [
                "seed",
                "level",
                "conjecture",
                "line",
                "variable",
                "observed",
            ]
            .iter()
            .map(|key| {
                let field = record.get(key).unwrap();
                field
                    .as_str()
                    .map(str::to_owned)
                    .or_else(|| field.as_u64().map(|n| n.to_string()))
                    .unwrap()
            })
            .collect::<Vec<_>>()
            .join("|")
        })
        .collect()
}

#[test]
fn stack_backend_surfaces_violations_the_register_backend_cannot_express() {
    let scratch = Scratch::new("backends");
    let seeds = "0..30";
    let reg_file = scratch.path("reg.json");
    let stack_file = scratch.path("stack.json");
    ok_stdout(&["campaign", "--seeds", seeds, "--out", &reg_file, "--quiet"]);
    ok_stdout(&[
        "campaign",
        "--seeds",
        seeds,
        "--backend",
        "stack",
        "--out",
        &stack_file,
        "--quiet",
    ]);

    // Default-backend output carries no backend field at all — the
    // register-backend shard format is byte-compatible with the
    // pre-backend era.
    let reg_text = std::fs::read_to_string(Path::new(&reg_file)).unwrap();
    assert!(!reg_text.contains("backend"), "default shard grew a field");
    let stack_text = std::fs::read_to_string(Path::new(&stack_file)).unwrap();
    assert!(
        stack_text.contains("\"backend\": \"stack\""),
        "{stack_text}"
    );

    // The acceptance criterion: the stack campaign surfaces violations
    // (spill-slot / stack-relative location loss) that the register
    // campaign over the same seeds does not contain.
    let reg_keys = record_keys(&reg_file);
    let stack_keys = record_keys(&stack_file);
    let stack_only: Vec<_> = stack_keys.difference(&reg_keys).collect();
    assert!(
        !stack_only.is_empty(),
        "stack backend exposed no new violation sites"
    );

    // Both reports render; the stack one names its backend, the register
    // one stays byte-identical to a backend-unaware run.
    let reg_report = String::from_utf8(ok_stdout(&["report", &reg_file])).unwrap();
    assert!(!reg_report.contains("backend"), "{reg_report}");
    let stack_report = String::from_utf8(ok_stdout(&["report", &stack_file])).unwrap();
    assert!(stack_report.contains("backend stack"), "{stack_report}");

    // Stack campaigns are deterministic too.
    let again = scratch.path("stack2.json");
    ok_stdout(&[
        "campaign",
        "--seeds",
        seeds,
        "--backend",
        "stack",
        "--out",
        &again,
        "--quiet",
    ]);
    assert_eq!(
        std::fs::read(Path::new(&stack_file)).unwrap(),
        std::fs::read(Path::new(&again)).unwrap()
    );
}

/// The register backend is the default, and its campaign/report bytes are
/// pinned by committed golden files: the codegen-pipeline refactor (and any
/// future one) must reproduce them exactly, not merely equivalently.
#[test]
fn default_campaign_and_report_bytes_match_the_committed_goldens() {
    let scratch = Scratch::new("golden-bytes");
    let campaign_file = scratch.path("campaign.json");
    ok_stdout(&[
        "campaign",
        "--seeds",
        "2500..2506",
        "--out",
        &campaign_file,
        "--quiet",
    ]);
    golden(
        "cli-campaign-2500-2506.json",
        &std::fs::read(Path::new(&campaign_file)).unwrap(),
    );
    golden(
        "cli-report-2500-2506.txt",
        &ok_stdout(&["report", &campaign_file]),
    );
}

#[test]
fn frame_backend_surfaces_violations_neither_existing_backend_can_express() {
    let scratch = Scratch::new("frame-backend");
    let seeds = "0..30";
    let reg_file = scratch.path("reg.json");
    let stack_file = scratch.path("stack.json");
    let frame_file = scratch.path("frame.json");
    ok_stdout(&["campaign", "--seeds", seeds, "--out", &reg_file, "--quiet"]);
    for (backend, file) in [("stack", &stack_file), ("frame", &frame_file)] {
        ok_stdout(&[
            "campaign",
            "--seeds",
            seeds,
            "--backend",
            backend,
            "--out",
            file,
            "--quiet",
        ]);
    }

    let frame_text = std::fs::read_to_string(Path::new(&frame_file)).unwrap();
    assert!(
        frame_text.contains("\"backend\": \"frame\""),
        "{frame_text}"
    );

    // The acceptance criterion for the frame-layout defect class: the
    // frame-backend campaign surfaces violation sites (stale frame-base
    // offsets resolving past the frame, dropped callee-saved locations)
    // that neither the register nor the stack campaign over the same
    // seeds contains.
    let reg_keys = record_keys(&reg_file);
    let stack_keys = record_keys(&stack_file);
    let frame_keys = record_keys(&frame_file);
    let frame_only: Vec<_> = frame_keys
        .iter()
        .filter(|key| !reg_keys.contains(*key) && !stack_keys.contains(*key))
        .collect();
    assert!(
        !frame_only.is_empty(),
        "frame backend exposed no new violation sites"
    );

    // The report renders and names the backend.
    let frame_report = String::from_utf8(ok_stdout(&["report", &frame_file])).unwrap();
    assert!(frame_report.contains("backend frame"), "{frame_report}");

    // Frame campaigns are deterministic.
    let again = scratch.path("frame2.json");
    ok_stdout(&[
        "campaign",
        "--seeds",
        seeds,
        "--backend",
        "frame",
        "--out",
        &again,
        "--quiet",
    ]);
    assert_eq!(
        std::fs::read(Path::new(&frame_file)).unwrap(),
        std::fs::read(Path::new(&again)).unwrap()
    );
}

#[test]
fn sharded_triage_merges_byte_identically_to_the_single_shard_run() {
    let scratch = Scratch::new("triage-shards");
    let seeds = "0..12";
    let mut shard_files = Vec::new();
    for shard in 0..3 {
        let file = scratch.path(&format!("t{shard}.json"));
        ok_stdout(&[
            "triage",
            "--seeds",
            seeds,
            "--shards",
            "3",
            "--shard",
            &shard.to_string(),
            "--limit",
            "1",
            "--personality",
            "lcc",
            "--out",
            &file,
            "--quiet",
        ]);
        shard_files.push(file);
    }
    let whole = scratch.path("whole.json");
    ok_stdout(&[
        "triage",
        "--seeds",
        seeds,
        "--shards",
        "1",
        "--shard",
        "0",
        "--limit",
        "1",
        "--personality",
        "lcc",
        "--out",
        &whole,
        "--quiet",
    ]);

    // Merged shards (scrambled order) == the single-shard run, in both the
    // text and machine-readable renderings.
    let mut merged_args = vec!["triage"];
    merged_args.extend(shard_files.iter().rev().map(String::as_str));
    let merged_text = ok_stdout(&merged_args);
    let single_text = ok_stdout(&["triage", &whole]);
    assert_eq!(merged_text, single_text);
    let mut merged_json_args = vec!["triage", "--json"];
    merged_json_args.extend(shard_files.iter().map(String::as_str));
    let merged_json = ok_stdout(&merged_json_args);
    let single_json = ok_stdout(&["triage", "--json", &whole]);
    assert_eq!(merged_json, single_json);
    assert!(String::from_utf8_lossy(&merged_text).contains("Table 2"));

    // An incomplete shard set is rejected with a pointer to the problem.
    let incomplete = holes(&["triage", &shard_files[0]]);
    assert!(!incomplete.status.success());
    assert!(String::from_utf8_lossy(&incomplete.stderr).contains("cover"));

    // A stray positional must not silently hijack a run invocation into
    // merge mode (discarding --seeds and friends).
    let mixed = holes(&["triage", "--seeds", seeds, &shard_files[0]]);
    assert_eq!(mixed.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&mixed.stderr).contains("cannot combine"),
        "{}",
        String::from_utf8_lossy(&mixed.stderr)
    );
}

#[test]
fn cache_gc_caps_the_store_and_keeps_campaigns_correct() {
    let scratch = Scratch::new("cache-gc");
    let cache = scratch.path("cache");
    let args = [
        "campaign",
        "--seeds",
        "420..428",
        "--cache-dir",
        &cache,
        "--quiet",
    ];
    let clean = ok_stdout(&args);
    let before: u64 = walkdir(Path::new(&cache))
        .iter()
        .map(|f| std::fs::metadata(f).map(|m| m.len()).unwrap_or(0))
        .sum();
    assert!(before > 4096, "store suspiciously small: {before}");

    // Collect down to half the size; the store must land under budget.
    let budget = (before / 2).to_string();
    let gc_output = String::from_utf8(ok_stdout(&[
        "cache",
        "gc",
        "--max-bytes",
        &budget,
        "--cache-dir",
        &cache,
    ]))
    .unwrap();
    assert!(gc_output.contains("cache gc:"), "{gc_output}");
    let after: u64 = walkdir(Path::new(&cache))
        .iter()
        .map(|f| std::fs::metadata(f).map(|m| m.len()).unwrap_or(0))
        .sum();
    assert!(after <= before / 2, "gc left {after} > budget {budget}");

    // A campaign over the capped store recomputes what was evicted and
    // stays byte-identical.
    let recomputed = ok_stdout(&args);
    assert_eq!(clean, recomputed, "gc changed campaign output");

    // Usage errors behave like the rest of the tool.
    for bad in [
        vec!["cache"],
        vec!["cache", "shrink"],
        vec!["cache", "gc", "--cache-dir", cache.as_str()],
        vec!["cache", "gc", "1000", "--cache-dir", cache.as_str()],
    ] {
        let output = holes(&bad);
        assert_eq!(output.status.code(), Some(1), "`holes {}`", bad.join(" "));
        assert!(!output.stderr.is_empty());
    }
    // The stray-argument error names the stray, not the valid action.
    let stray = holes(&["cache", "gc", "1000", "--cache-dir", &cache]);
    let stderr = String::from_utf8_lossy(&stray.stderr);
    assert!(stderr.contains("`1000`"), "{stderr}");
}

#[test]
fn help_and_usage_errors_behave_like_a_unix_tool() {
    let help = String::from_utf8(ok_stdout(&["help"])).unwrap();
    assert!(help.contains("Usage: holes <command>"));
    for command in [
        "generate", "campaign", "report", "triage", "reduce", "cache",
    ] {
        let text = String::from_utf8(ok_stdout(&[command, "--help"])).unwrap();
        assert!(
            text.contains(&format!("holes {command}")),
            "{command}: {text}"
        );
    }
    let bare = String::from_utf8(ok_stdout(&[])).unwrap();
    assert_eq!(bare, help, "bare invocation should print the usage");

    for bad in [
        vec!["frobnicate"],
        vec!["campaign"],
        vec!["campaign", "--seeds", "9..3"],
        vec!["campaign", "--seeds", "0..4", "--bogus"],
        vec![
            "campaign", "--seeds", "0..4", "--shards", "2", "--shard", "2",
        ],
        vec!["triage", "--seeds", "0..4", "--personality", "gcc"],
        vec!["campaign", "--seeds", "0..4", "--backend", "x86"],
        vec!["reduce"],
    ] {
        let output = holes(&bad);
        assert_eq!(
            output.status.code(),
            Some(1),
            "`holes {}` should fail with exit code 1",
            bad.join(" ")
        );
        assert!(!output.stderr.is_empty());
    }
}

/// Run the binary with extra environment variables set.
fn holes_env(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut command = Command::new(env!("CARGO_BIN_EXE_holes"));
    command.args(args);
    for (key, value) in envs {
        command.env(key, value);
    }
    command.output().expect("spawning the holes binary")
}

#[test]
fn killed_jsonl_campaigns_resume_byte_identically() {
    let scratch = Scratch::new("resume");
    let seeds = "300..330";
    let full = scratch.path("full.jsonl");
    ok_stdout(&[
        "campaign", "--seeds", seeds, "--jsonl", "--out", &full, "--quiet",
    ]);
    let reference = std::fs::read(Path::new(&full)).unwrap();

    // Kill points across the whole file: mid-header, mid-record, the last
    // byte (a footer cut), and a missing file entirely.
    let partial = scratch.path("partial.jsonl");
    let cuts = [0, 1, reference.len() / 3, reference.len() - 1];
    for cut in cuts {
        std::fs::write(Path::new(&partial), &reference[..cut]).unwrap();
        ok_stdout(&[
            "campaign", "--seeds", seeds, "--jsonl", "--out", &partial, "--resume", "--quiet",
        ]);
        let resumed = std::fs::read(Path::new(&partial)).unwrap();
        assert_eq!(resumed, reference, "kill at byte {cut} broke resume");
    }
    std::fs::remove_file(Path::new(&partial)).unwrap();
    ok_stdout(&[
        "campaign", "--seeds", seeds, "--jsonl", "--out", &partial, "--resume", "--quiet",
    ]);
    assert_eq!(std::fs::read(Path::new(&partial)).unwrap(), reference);

    // Resuming the complete file is a no-op that says so.
    let noop = holes(&[
        "campaign", "--seeds", seeds, "--jsonl", "--out", &partial, "--resume",
    ]);
    assert!(noop.status.success());
    assert!(String::from_utf8_lossy(&noop.stdout).contains("already complete"));
    assert_eq!(std::fs::read(Path::new(&partial)).unwrap(), reference);

    // A file from a different campaign is refused, not overwritten.
    let foreign = scratch.path("foreign.jsonl");
    ok_stdout(&[
        "campaign", "--seeds", "0..5", "--jsonl", "--out", &foreign, "--quiet",
    ]);
    let before = std::fs::read(Path::new(&foreign)).unwrap();
    let refused = holes(&[
        "campaign", "--seeds", seeds, "--jsonl", "--out", &foreign, "--resume", "--quiet",
    ]);
    assert_eq!(refused.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&refused.stderr).contains("cannot resume"));
    assert_eq!(std::fs::read(Path::new(&foreign)).unwrap(), before);

    // --resume needs the streaming format and a file to stream into.
    for bad in [
        vec!["campaign", "--seeds", seeds, "--resume"],
        vec!["campaign", "--seeds", seeds, "--jsonl", "--resume"],
    ] {
        let output = holes(&bad);
        assert_eq!(output.status.code(), Some(1), "`holes {}`", bad.join(" "));
        assert!(String::from_utf8_lossy(&output.stderr).contains("--resume"));
    }
}

#[test]
fn injected_faults_exit_2_and_flow_into_the_report() {
    let scratch = Scratch::new("faults");
    let seeds = "40..52";
    let faulted = scratch.path("faulted.jsonl");
    let inject = [("HOLES_FAULT_SEEDS", "43,47")];

    let campaign = holes_env(
        &[
            "campaign", "--seeds", seeds, "--jsonl", "--out", &faulted, "--quiet",
        ],
        &inject,
    );
    assert_eq!(
        campaign.status.code(),
        Some(2),
        "contained faults must exit 2"
    );
    let text = std::fs::read_to_string(Path::new(&faulted)).unwrap();
    assert_eq!(text.matches("\"fault\":").count(), 2, "{text}");
    assert!(
        text.contains("\"faulted\":2"),
        "missing footer tally: {text}"
    );

    // The report renders the tally, keeps the surviving records, and also
    // exits 2 — faulted subjects are never silently dropped.
    let report = holes_env(&["report", &faulted], &[]);
    assert_eq!(report.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&report.stdout);
    assert!(stdout.contains("faulted subjects: 2"), "{stdout}");

    // The classic (non-streaming) format carries the same faults and exit.
    let classic = scratch.path("faulted.json");
    let campaign = holes_env(
        &["campaign", "--seeds", seeds, "--out", &classic, "--quiet"],
        &inject,
    );
    assert_eq!(campaign.status.code(), Some(2));
    let report = holes_env(&["report", &classic], &[]);
    assert_eq!(report.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&report.stdout).contains("faulted subjects: 2"));

    // Fault-free runs of the same range are untouched: exit 0 and not a
    // word about faults anywhere.
    let clean = holes(&[
        "campaign", "--seeds", seeds, "--jsonl", "--out", &faulted, "--quiet",
    ]);
    assert!(clean.status.success());
    let text = std::fs::read_to_string(Path::new(&faulted)).unwrap();
    assert!(!text.contains("fault"), "{text}");
    let report = ok_stdout(&["report", &faulted]);
    assert!(!String::from_utf8_lossy(&report).contains("faulted"));
}

#[test]
fn unusable_cache_directories_degrade_to_memory_only_with_a_warning() {
    let scratch = Scratch::new("bad-cache");
    // A regular file where the store root should be makes every mkdir fail.
    let blocker = scratch.path("not-a-dir");
    std::fs::write(Path::new(&blocker), "occupied").unwrap();
    let reference = ok_stdout(&["campaign", "--seeds", "0..6"]);

    let degraded = holes(&["campaign", "--seeds", "0..6", "--cache-dir", &blocker]);
    assert!(degraded.status.success(), "degraded run must still succeed");
    let stderr = String::from_utf8_lossy(&degraded.stderr);
    assert!(
        stderr.contains("in-memory caching only"),
        "missing degrade warning: {stderr}"
    );
    assert_eq!(
        degraded.stdout, reference,
        "memory-only run changed results"
    );
}

#[test]
fn baseline_record_diff_gates_new_violations_with_exit_3() {
    let scratch = Scratch::new("baseline");
    let base_run = scratch.path("base-run.json");
    ok_stdout(&[
        "campaign",
        "--seeds",
        "2500..2506",
        "--out",
        &base_run,
        "--quiet",
    ]);
    let grown_run = scratch.path("grown-run.json");
    ok_stdout(&[
        "campaign",
        "--seeds",
        "2500..2507",
        "--out",
        &grown_run,
        "--quiet",
    ]);

    // Record the baseline from the unsharded run...
    let baseline = scratch.path("baseline.json");
    ok_stdout(&[
        "baseline", "record", &base_run, "--out", &baseline, "--quiet",
    ]);
    // ...and again from three shard files given in scrambled order: the
    // deterministic-merge seam makes the two recordings byte-identical.
    let mut shard_files = Vec::new();
    for shard in 0..3 {
        let file = scratch.path(&format!("bshard{shard}.json"));
        ok_stdout(&[
            "campaign",
            "--seeds",
            "2500..2506",
            "--shards",
            "3",
            "--shard",
            &shard.to_string(),
            "--out",
            &file,
            "--quiet",
        ]);
        shard_files.push(file);
    }
    let sharded = scratch.path("baseline-sharded.json");
    let mut record_args = vec!["baseline", "record"];
    record_args.extend(shard_files.iter().rev().map(String::as_str));
    record_args.extend(["--out", &sharded, "--quiet"]);
    ok_stdout(&record_args);
    assert_eq!(
        std::fs::read(Path::new(&baseline)).unwrap(),
        std::fs::read(Path::new(&sharded)).unwrap(),
        "sharded baseline recording is not byte-identical to the unsharded one"
    );

    // An identical re-run diffs empty and exits 0.
    let identity = holes(&["baseline", "diff", &baseline, &base_run]);
    assert!(identity.status.success(), "identity diff must exit 0");
    let identity_text = String::from_utf8(identity.stdout).unwrap();
    assert!(identity_text.contains("new: 0"), "{identity_text}");
    assert!(identity_text.contains("fixed: 0"), "{identity_text}");
    assert!(!identity_text.contains("new violations"), "{identity_text}");

    // The grown run gates: exit 3, and the text diff names exactly the
    // added seed's fingerprints as new.
    let diff = holes(&["baseline", "diff", &baseline, &grown_run]);
    assert_eq!(diff.status.code(), Some(3), "grown diff must exit 3");
    assert!(
        String::from_utf8_lossy(&diff.stderr).contains("exit status 3"),
        "stderr must explain the gate"
    );
    let text = String::from_utf8(diff.stdout).unwrap();
    let section = text
        .split("new violations (not in baseline):\n")
        .nth(1)
        .expect("text diff lists the new violations");
    let new_fps: Vec<&str> = section
        .lines()
        .take_while(|line| line.starts_with("  "))
        .map(str::trim)
        .collect();
    assert!(!new_fps.is_empty(), "no new fingerprints listed:\n{text}");
    assert!(
        new_fps.iter().all(|fp| fp.starts_with("s2506:")),
        "a fingerprint outside the added seed was reported new:\n{text}"
    );

    // The JSON and SARIF renderings name the same fingerprints: in both,
    // the added seed appears once per new violation and nowhere else.
    let json = String::from_utf8(ok_stdout_status3(&[
        "baseline", "diff", "--format", "json", &baseline, &grown_run,
    ]))
    .unwrap();
    assert_eq!(json.matches("s2506:").count(), new_fps.len(), "{json}");
    for fp in &new_fps {
        assert!(json.contains(fp), "JSON diff is missing `{fp}`");
    }
    let sarif = String::from_utf8(ok_stdout_status3(&[
        "baseline", "diff", "--format", "sarif", &baseline, &grown_run,
    ]))
    .unwrap();
    assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"level\": \"error\""), "{sarif}");
    assert_eq!(sarif.matches("s2506:").count(), new_fps.len(), "{sarif}");
    assert!(
        !sarif.contains("s2500:"),
        "SARIF diff output must list new violations only"
    );
    let junit = String::from_utf8(ok_stdout_status3(&[
        "baseline", "diff", "--format", "junit", &baseline, &grown_run,
    ]))
    .unwrap();
    assert!(
        junit.contains(&format!("failures=\"{}\"", new_fps.len())),
        "{junit}"
    );
}

/// Like `ok_stdout`, but for gate commands expected to exit 3.
fn ok_stdout_status3(args: &[&str]) -> Vec<u8> {
    let output = holes(args);
    assert_eq!(
        output.status.code(),
        Some(3),
        "`holes {}` should gate with exit 3: {}",
        args.join(" "),
        String::from_utf8_lossy(&output.stderr)
    );
    output.stdout
}

#[test]
fn report_on_an_empty_campaign_renders_an_empty_table_and_valid_formats() {
    let scratch = Scratch::new("empty-report");
    let run = scratch.path("empty.json");
    ok_stdout(&["campaign", "--seeds", "5..5", "--out", &run, "--quiet"]);

    let text = String::from_utf8(ok_stdout(&["report", &run])).unwrap();
    assert!(text.contains("Table 1"), "{text}");
    assert!(text.contains("unique        0      0      0"), "{text}");
    assert!(text.contains("violations at all levels: 0"), "{text}");

    let sarif = String::from_utf8(ok_stdout(&["report", "--format", "sarif", &run])).unwrap();
    assert!(sarif.contains("\"results\": []"), "{sarif}");
    assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");

    let junit = String::from_utf8(ok_stdout(&["report", "--format", "junit", &run])).unwrap();
    assert!(
        junit.contains("<testsuites tests=\"0\" failures=\"0\">"),
        "{junit}"
    );

    // An empty run also records an empty baseline that diffs clean against
    // itself.
    let baseline = scratch.path("baseline.json");
    ok_stdout(&["baseline", "record", &run, "--out", &baseline, "--quiet"]);
    let diff = String::from_utf8(ok_stdout(&["baseline", "diff", &baseline, &run])).unwrap();
    assert!(diff.contains("known: 0"), "{diff}");
    assert!(diff.contains("new: 0"), "{diff}");
}

#[test]
fn corpus_add_then_replay_reproduces_and_tampered_entries_gate() {
    let scratch = Scratch::new("corpus");
    let corpus = scratch.path("corpus.json");

    // Distill one known violation from a seed and replay it.
    let added = String::from_utf8(ok_stdout(&[
        "corpus", "add", "--corpus", &corpus, "--seed", "2500",
    ]))
    .unwrap();
    assert!(added.contains("culprit"), "{added}");
    assert!(added.contains("(1 new)"), "{added}");
    let replay = String::from_utf8(ok_stdout(&["corpus", "replay", "--corpus", &corpus])).unwrap();
    assert!(
        replay.contains("corpus replay: 1 of 1 entries reproduced"),
        "{replay}"
    );

    // Adding the same seed again dedupes instead of growing the corpus.
    let again = String::from_utf8(ok_stdout(&[
        "corpus", "add", "--corpus", &corpus, "--seed", "2500",
    ]))
    .unwrap();
    assert!(again.contains("(0 new)"), "{again}");

    // Retargeting an entry at a different seed breaks replay: the gate
    // fires with exit 3 and says which entry died.
    let text = std::fs::read_to_string(Path::new(&corpus)).unwrap();
    let tampered = scratch.path("tampered.json");
    std::fs::write(
        Path::new(&tampered),
        text.replace("\"seed\": 2500", "\"seed\": 2501"),
    )
    .unwrap();
    let gate = holes(&["corpus", "replay", "--corpus", &tampered]);
    assert_eq!(gate.status.code(), Some(3), "tampered replay must exit 3");
    let gate_text = String::from_utf8(gate.stdout).unwrap();
    assert!(gate_text.contains("FAILED (violation gone)"), "{gate_text}");
    assert!(
        String::from_utf8_lossy(&gate.stderr).contains("exit status 3"),
        "stderr must explain the gate"
    );

    // Shard-file mode: distill the first violations of a campaign and
    // replay them in one go.
    let run = scratch.path("run.json");
    ok_stdout(&[
        "campaign",
        "--seeds",
        "2500..2502",
        "--out",
        &run,
        "--quiet",
    ]);
    let from_shards = scratch.path("from-shards.json");
    let added = String::from_utf8(ok_stdout(&[
        "corpus",
        "add",
        "--corpus",
        &from_shards,
        "--limit",
        "2",
        &run,
    ]))
    .unwrap();
    assert!(added.contains("(2 new)"), "{added}");
    let replay =
        String::from_utf8(ok_stdout(&["corpus", "replay", "--corpus", &from_shards])).unwrap();
    assert!(
        replay.contains("corpus replay: 2 of 2 entries reproduced"),
        "{replay}"
    );
}

/// Out-of-range heartbeat cadences are rejected when the command line is
/// parsed, before the coordinator binds a socket or touches its journal —
/// they would otherwise reach the lease-deadline arithmetic.
#[test]
fn serve_rejects_out_of_range_heartbeats_at_parse_time() {
    let scratch = Scratch::new("serve-heartbeat");
    for bad in ["0", "86400001", "18446744073709551615"] {
        let output = holes(&[
            "serve",
            "--seeds",
            "0..4",
            "--listen",
            "127.0.0.1:0",
            "--journal",
            &scratch.path("journal.jsonl"),
            "--heartbeat-ms",
            bad,
        ]);
        assert!(
            !output.status.success(),
            "`--heartbeat-ms {bad}` was accepted"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(stderr.contains("out of range"), "{stderr}");
    }
}

/// Spawn `holes serve` with stderr piped and return the child plus the
/// actual listening address announced on stderr (`--listen 127.0.0.1:0`).
fn spawn_serve(args: &[&str]) -> (std::process::Child, String) {
    use std::io::BufRead;
    let mut child = Command::new(env!("CARGO_BIN_EXE_holes"))
        .arg("serve")
        .args(args)
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawning holes serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = std::io::BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before announcing its address")
            .expect("reading serve stderr");
        if let Some(addr) = line.strip_prefix("serve: listening on ") {
            break addr.to_string();
        }
    };
    // Keep draining stderr so the coordinator never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

#[test]
fn serve_fleet_with_a_preempted_worker_matches_the_single_process_campaign() {
    let scratch = Scratch::new("serve-fleet");
    let seeds = "2600..2618";
    let reference = scratch.path("reference.jsonl");
    ok_stdout(&[
        "campaign", "--seeds", seeds, "--jsonl", "--out", &reference, "--quiet",
    ]);

    let merged = scratch.path("merged.jsonl");
    let journal = scratch.path("journal.jsonl");
    let (mut serve, addr) = spawn_serve(&[
        "--seeds",
        seeds,
        "--listen",
        "127.0.0.1:0",
        "--journal",
        &journal,
        "--lease-shards",
        "4",
        "--heartbeat-ms",
        "100",
        "--out",
        &merged,
        "--quiet",
    ]);

    // One worker is chaos-preempted on its first lease (no heartbeats, so
    // the coordinator revokes it and must discard the late result); the
    // other runs clean. Between them the campaign completes.
    let preempted = Command::new(env!("CARGO_BIN_EXE_holes"))
        .args([
            "work",
            "--connect",
            &addr,
            "--work-dir",
            &scratch.path("w1"),
            "--patience-ms",
            "2000",
        ])
        .env("HOLES_SERVE_CHAOS", "preempt:1")
        .spawn()
        .expect("spawning the preempted worker");
    let clean = Command::new(env!("CARGO_BIN_EXE_holes"))
        .args([
            "work",
            "--connect",
            &addr,
            "--work-dir",
            &scratch.path("w2"),
            "--patience-ms",
            "2000",
            "--quiet",
        ])
        .spawn()
        .expect("spawning the clean worker");

    for mut worker in [preempted, clean] {
        let status = worker.wait().expect("waiting for a worker");
        assert!(status.success(), "workers exit 0, got {status}");
    }
    let status = serve.wait().expect("waiting for serve");
    assert_eq!(status.code(), Some(0), "serve exits clean");

    let merged_bytes = std::fs::read(Path::new(&merged)).unwrap();
    let reference_bytes = std::fs::read(Path::new(&reference)).unwrap();
    assert_eq!(
        merged_bytes, reference_bytes,
        "merged fleet output differs from the single-process run"
    );
    assert!(
        Path::new(&journal).exists(),
        "the journal survives the campaign"
    );
}

#[test]
fn a_kill_nined_worker_resumes_its_shard_and_the_merge_stays_byte_identical() {
    let scratch = Scratch::new("serve-kill9");
    let seeds = "2620..2636";
    let reference = scratch.path("reference.jsonl");
    ok_stdout(&[
        "campaign", "--seeds", seeds, "--jsonl", "--out", &reference, "--quiet",
    ]);

    let merged = scratch.path("merged.jsonl");
    let (mut serve, addr) = spawn_serve(&[
        "--seeds",
        seeds,
        "--listen",
        "127.0.0.1:0",
        "--journal",
        &scratch.path("journal.jsonl"),
        "--lease-shards",
        "2",
        "--heartbeat-ms",
        "100",
        "--out",
        &merged,
        "--quiet",
    ]);

    // First incarnation dies the hard way (process abort after the 5th
    // emitted stream line — no flushes, a torn shard file left behind).
    let work_dir = scratch.path("w");
    let killed = Command::new(env!("CARGO_BIN_EXE_holes"))
        .args([
            "work",
            "--connect",
            &addr,
            "--work-dir",
            &work_dir,
            "--patience-ms",
            "2000",
            "--quiet",
        ])
        .env("HOLES_SERVE_CHAOS", "abort:5")
        .output()
        .expect("spawning the doomed worker");
    assert!(!killed.status.success(), "abort:5 must kill the worker");

    // Second incarnation over the SAME work directory resumes the torn
    // stream and finishes the campaign.
    let revived = holes(&[
        "work",
        "--connect",
        &addr,
        "--work-dir",
        &work_dir,
        "--patience-ms",
        "2000",
    ]);
    assert!(revived.status.success(), "revived worker exits 0");

    let status = serve.wait().expect("waiting for serve");
    assert_eq!(status.code(), Some(0), "serve exits clean");
    assert_eq!(
        std::fs::read(Path::new(&merged)).unwrap(),
        std::fs::read(Path::new(&reference)).unwrap(),
        "kill -9 mid-shard leaked into the merged bytes"
    );
}

#[test]
fn bogus_fault_seed_lists_are_rejected_up_front_with_the_offending_entry() {
    let output = holes_env(
        &["campaign", "--seeds", "0..1", "--quiet"],
        &[("HOLES_FAULT_SEEDS", "12,zap,14")],
    );
    assert_eq!(
        output.status.code(),
        Some(1),
        "a typo'd kill list must not run"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("HOLES_FAULT_SEEDS"), "{stderr}");
    assert!(
        stderr.contains("zap"),
        "the message names the bad entry: {stderr}"
    );
}

#[test]
fn campaign_corpus_prepass_replays_first_and_gates_regressions() {
    let scratch = Scratch::new("prepass");
    let corpus = scratch.path("corpus.json");
    ok_stdout(&["corpus", "add", "--corpus", &corpus, "--seed", "2500"]);

    // A healthy corpus: the prepass replays on stderr and the campaign
    // output stays byte-identical to a corpus-less run.
    let plain = ok_stdout(&["campaign", "--seeds", "2500..2503", "--quiet"]);
    let prepassed = holes(&[
        "campaign",
        "--seeds",
        "2500..2503",
        "--quiet",
        "--corpus",
        &corpus,
    ]);
    assert!(prepassed.status.success());
    assert_eq!(
        prepassed.stdout, plain,
        "the prepass must not disturb campaign stdout"
    );

    // A corpus whose entry no longer reproduces fails fast with exit 3
    // before any campaign work.
    let text = std::fs::read_to_string(Path::new(&corpus)).unwrap();
    let tampered = scratch.path("tampered.json");
    std::fs::write(
        Path::new(&tampered),
        text.replace("\"seed\": 2500", "\"seed\": 2501"),
    )
    .unwrap();
    let gated = holes(&[
        "campaign",
        "--seeds",
        "2500..2503",
        "--quiet",
        "--corpus",
        &tampered,
    ]);
    assert_eq!(
        gated.status.code(),
        Some(3),
        "a dead corpus entry gates the campaign"
    );
    let stderr = String::from_utf8_lossy(&gated.stderr);
    assert!(stderr.contains("no longer reproduce"), "{stderr}");
    assert!(
        gated.stdout.is_empty(),
        "no campaign output after a failed prepass"
    );

    // A missing corpus file is a hard error, not a silent skip.
    let missing = holes(&[
        "campaign",
        "--seeds",
        "2500..2501",
        "--corpus",
        &scratch.path("nope.json"),
        "--quiet",
    ]);
    assert_eq!(missing.status.code(), Some(1));
}
