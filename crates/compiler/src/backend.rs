//! The code-generation backend abstraction.
//!
//! A [`Backend`] bundles everything that differs between the simulated
//! machine models the compiler can target:
//!
//! * the **ISA and lowering** — how optimized IR becomes machine code
//!   ([`crate::codegen`] for the register VM, [`crate::codegen_stack`] for
//!   the stack VM);
//! * the **location descriptions** its codegen emits — registers and frame
//!   slots on the register VM; frame-base-relative and composite
//!   expressions on the stack VM (see `holes_debuginfo::Location`);
//! * the **stepper** the debugger drives — obtained from the produced
//!   [`MachineCode`] via `MachineCode::spawn`, behind the
//!   `holes_machine::Vm` trait;
//! * the **backend-gated defects** — e.g. the stack backend's spill-loss
//!   class ([`crate::defects::stack_catalogue`]), which corrupts location
//!   descriptions the other backend cannot even express.
//!
//! Backend selection travels in [`CompilerConfig::backend`] (a
//! [`BackendKind`]) and is part of the configuration's fingerprint, so
//! artifact caches and the on-disk store never alias executables of
//! different backends. [`backend_for`] maps the selector to the
//! implementation; [`crate::compile`] is the only caller.

use holes_debuginfo::DebugInfo;
use holes_machine::{BackendKind, MachineCode};
use holes_minic::ast::Program;

use crate::config::CompilerConfig;
use crate::ir::IrProgram;
use crate::{codegen, codegen_stack};

/// One code-generation backend: a machine model plus the lowering that
/// targets it. See the module docs for what varies per backend.
pub trait Backend {
    /// The selector this backend implements.
    fn kind(&self) -> BackendKind;

    /// Lower an optimized IR program to machine code plus debug
    /// information. The returned defect identifiers name the backend-gated
    /// defects that actually fired during lowering (recorded in the
    /// pipeline report, like pass-level defects).
    fn codegen(
        &self,
        source: &Program,
        ir: &IrProgram,
        source_name: &str,
        config: &CompilerConfig,
    ) -> (MachineCode, DebugInfo, Vec<&'static str>);
}

/// The register-VM backend (the default).
pub struct RegBackend;

impl Backend for RegBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Reg
    }

    fn codegen(
        &self,
        source: &Program,
        ir: &IrProgram,
        source_name: &str,
        _config: &CompilerConfig,
    ) -> (MachineCode, DebugInfo, Vec<&'static str>) {
        let (machine, debug) = codegen::codegen(source, ir, source_name);
        (MachineCode::Reg(machine), debug, Vec::new())
    }
}

/// The stack-VM backend.
pub struct StackBackend;

impl Backend for StackBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Stack
    }

    fn codegen(
        &self,
        source: &Program,
        ir: &IrProgram,
        source_name: &str,
        config: &CompilerConfig,
    ) -> (MachineCode, DebugInfo, Vec<&'static str>) {
        let (machine, debug, applied) =
            codegen_stack::codegen_stack(source, ir, source_name, config);
        (MachineCode::Stack(machine), debug, applied)
    }
}

/// The frame-ABI backend: the register ISA with callee-saved registers, a
/// real frame layout, and frame-base-relative location descriptions.
pub struct FrameBackend;

impl Backend for FrameBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Frame
    }

    fn codegen(
        &self,
        source: &Program,
        ir: &IrProgram,
        source_name: &str,
        config: &CompilerConfig,
    ) -> (MachineCode, DebugInfo, Vec<&'static str>) {
        let (machine, debug, applied) = codegen::codegen_frame(source, ir, source_name, config);
        (MachineCode::Frame(machine), debug, applied)
    }
}

/// The backend implementing a selector.
pub fn backend_for(kind: BackendKind) -> &'static dyn Backend {
    match kind {
        BackendKind::Reg => &RegBackend,
        BackendKind::Stack => &StackBackend,
        BackendKind::Frame => &FrameBackend,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectors_map_to_their_backends() {
        for kind in BackendKind::ALL {
            assert_eq!(backend_for(kind).kind(), kind);
        }
    }
}
