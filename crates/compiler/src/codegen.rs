//! Code generation for the register-file ISA, structured as the pipeline
//!
//! ```text
//!   IR ──lowering──▶ VCode<RInst> ──regalloc──▶ Allocation ──emission──▶ MInst
//! ```
//!
//! *Lowering* (`lower_function`) turns each IR instruction into one or
//! more virtual instructions (`RInst`) over virtual registers and records
//! the per-position liveness summary the backend-neutral allocator
//! ([`crate::regalloc`]) consumes. *Emission* applies the allocator's
//! explicit spill/reload edits, lays out the frame ([`crate::frame`]), and
//! produces runnable [`MachineProgram`] code together with the
//! backend-neutral `DebugArtifacts` every backend hands to the shared
//! debug-information emitter (`emit_debug_info`): DWARF-style variable
//! DIEs with `DW_AT_location` location lists or `DW_AT_const_value`
//! attributes, and the line table — the raw material of every experiment in
//! the paper.
//!
//! The same pipeline serves two frame conventions ([`FrameAbi`]):
//!
//! * [`codegen`] — the default register backend. Register files are banked
//!   per call, so there is no prologue/epilogue; its machine code and debug
//!   bytes are pinned by golden tests and reproduce the pre-pipeline
//!   monolithic backend exactly (`mod legacy` keeps that backend as the
//!   differential reference).
//! * [`codegen_frame`] — the `frame` backend: same ISA, but registers
//!   `CALLEE_SAVED_FIRST..ALLOCATABLE` are callee-saved. Functions save
//!   them to the frame's save area in the prologue and restore them before
//!   returning, spilled and callee-saved variables are described
//!   frame-base-relative (`DW_OP_fbreg`-style, resolved against
//!   `Vm::frame_base`), and subprogram DIEs carry `DW_AT_frame_base`. This
//!   is the only backend whose location classes can express the
//!   `DW_CFA`-style frame-layout defects of
//!   [`crate::defects::frame_catalogue`].

use std::collections::HashMap;

use holes_debuginfo::{Attr, AttrValue, DebugInfo, DieId, DieTag, LineRow, LocListEntry, Location};
use holes_machine::{
    CallTarget, GlobalSlot, MAddr, MFunction, MInst, MachineProgram, Operand, Reg, NUM_REGS,
};
use holes_minic::ast::{BinOp, Program, UnOp};

use crate::config::CompilerConfig;
use crate::defects::{frame_catalogue, frame_defect_plan, DefectAction, FrameDefectPlan};
use crate::frame::{FrameAbi, FrameLayout};
use crate::ir::{
    DbgLoc, DebugVarId, IrFunction, IrProgram, Op, ScopeId, ScopeKind, SlotId, Temp, Value,
};
use crate::regalloc::{allocate, Allocation, Edit};
use crate::vcode::{PosInfo, Storage, VCode, VDef, VInst, VInstruction, VReg};

/// Registers reserved as scratch for spills (the last three).
const SCRATCH0: Reg = (NUM_REGS - 3) as Reg;
const SCRATCH1: Reg = (NUM_REGS - 2) as Reg;
/// Number of allocatable registers.
const ALLOCATABLE: usize = NUM_REGS - 3;
/// First callee-saved register of the frame ABI: under
/// [`codegen_frame`], registers `CALLEE_SAVED_FIRST..ALLOCATABLE` must be
/// saved by any function that uses them.
const CALLEE_SAVED_FIRST: Reg = 5;

/// The backend-neutral per-function lowering artifacts every backend hands
/// to the shared debug-information emitter ([`emit_debug_info`]): where the
/// function's code lives, its line-table rows, the scope of every emitted
/// instruction, and the variable binding timeline. Keeping this shape
/// backend-independent is what makes the DIE *structure* identical across
/// backends — only the [`Location`] payloads differ.
pub(crate) struct DebugArtifacts {
    /// Base code address of the function.
    pub base_address: u64,
    /// Number of emitted instructions.
    pub code_len: usize,
    /// Line-table rows for this function.
    pub line_rows: Vec<LineRow>,
    /// Scope of every emitted instruction.
    pub inst_scopes: Vec<ScopeId>,
    /// Variable binding timeline: `(instruction index, var, location)`.
    pub bindings: Vec<(usize, DebugVarId, Location)>,
    /// Total frame size in slots when the function lays out a real frame
    /// (the frame ABI), emitted as `DW_AT_frame_base` on the subprogram
    /// DIE; `None` for backends without a frame base attribute.
    pub frame_base: Option<u64>,
}

impl DebugArtifacts {
    /// The `[low, high)` code address range of the function.
    fn pc_range(&self) -> (u64, u64) {
        (self.base_address, self.base_address + self.code_len as u64)
    }
}

/// Lay out the source globals as VM data-segment slots (shared by every
/// backend, which use the same data-address scheme).
pub(crate) fn lower_globals(source: &Program) -> Vec<GlobalSlot> {
    source
        .globals
        .iter()
        .map(|g| GlobalSlot {
            name: g.name.clone(),
            elements: g.element_count(),
            init: g.init.clone(),
            bits: g.ty.bits(),
            signed: g.ty.signed(),
            volatile: g.is_volatile,
        })
        .collect()
}

/// Generate register-VM machine code and debug information for a lowered
/// (and possibly optimized) program — the default backend, under the banked
/// frame convention.
pub fn codegen(source: &Program, ir: &IrProgram, source_name: &str) -> (MachineProgram, DebugInfo) {
    let (machine, debug, _) = codegen_with_abi(source, ir, source_name, FrameAbi::Banked, None);
    (machine, debug)
}

/// Generate machine code and debug information under the callee-saved frame
/// ABI (the `frame` backend): prologue/epilogue save/restore, a real frame
/// layout with a save area, frame-base-relative location descriptions, and
/// the frame-layout defect classes of
/// [`crate::defects::frame_catalogue`]. Returns the identifiers of the
/// backend-gated defects that actually fired.
pub fn codegen_frame(
    source: &Program,
    ir: &IrProgram,
    source_name: &str,
    config: &CompilerConfig,
) -> (MachineProgram, DebugInfo, Vec<&'static str>) {
    codegen_with_abi(
        source,
        ir,
        source_name,
        FrameAbi::Saved {
            callee_saved_first: CALLEE_SAVED_FIRST,
            allocatable: ALLOCATABLE as u8,
        },
        Some(config),
    )
}

/// Which frame-layout defect actions fired during emission (per function,
/// aggregated per program).
#[derive(Debug, Clone, Copy, Default)]
struct FrameDefectsApplied {
    /// A frame-resident binding was shifted by the stale (function-entry)
    /// frame-base rule.
    stale: bool,
    /// A callee-saved register binding lost its location.
    clobber: bool,
}

/// The shared pipeline driver: lower every function, allocate, lay out the
/// frame under `abi`, emit, and run the shared debug-information emitter.
fn codegen_with_abi(
    source: &Program,
    ir: &IrProgram,
    source_name: &str,
    abi: FrameAbi,
    config: Option<&CompilerConfig>,
) -> (MachineProgram, DebugInfo, Vec<&'static str>) {
    let globals = lower_globals(source);
    let entry = source.main().0 as u32;

    let mut functions: Vec<MFunction> = Vec::with_capacity(ir.functions.len());
    let mut artifacts: Vec<DebugArtifacts> = Vec::with_capacity(ir.functions.len());
    let mut applied = FrameDefectsApplied::default();
    for (index, func) in ir.functions.iter().enumerate() {
        let vcode = lower_function(func, index);
        let allocation = allocate(&vcode, ALLOCATABLE as u8);
        let layout = FrameLayout::new(abi, func.slots, &allocation);
        let plan = config
            .map(|c| frame_defect_plan(c, func))
            .unwrap_or_default();
        let (machine, artifact, fired) =
            Emitter::new(&vcode, &allocation, &layout, abi, &plan).emit();
        applied.stale |= fired.stale;
        applied.clobber |= fired.clobber;
        functions.push(machine);
        artifacts.push(artifact);
    }

    let machine = MachineProgram {
        functions,
        globals,
        entry,
    };

    let debug = emit_debug_info(source, ir, &artifacts, &machine.globals, source_name);
    let ids = match config {
        None => Vec::new(),
        Some(config) => frame_catalogue(config.personality)
            .into_iter()
            .filter(|d| d.active_in(config))
            .filter(|d| match d.action {
                DefectAction::StaleFrameBase => applied.stale,
                DefectAction::ClobberCalleeSaved => applied.clobber,
                _ => false,
            })
            .map(|d| d.id)
            .collect(),
    };
    (machine, debug, ids)
}

/// A virtual-register value operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RVal {
    /// An immediate.
    Imm(i64),
    /// A virtual register.
    Reg(VReg),
}

/// A virtual-register definition: the vreg written, and whether this
/// instruction is the one after which a spilled definition is stored back
/// (multi-instruction lowerings set it only on the group's last
/// instruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RDef {
    vreg: VReg,
    store_after: bool,
}

/// An addressing mode over virtual registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RAddr {
    /// Data-segment address: global base plus optional index register plus
    /// constant displacement.
    Global {
        global: u32,
        index: Option<RVal>,
        disp: u32,
    },
    /// A frame slot of the current function.
    Frame { slot: u32 },
    /// Indirect through a computed address.
    Indirect { addr: RVal },
}

/// The register ISA's virtual instruction set: [`holes_machine::MInst`]
/// over virtual registers, plus the position-recording pseudo-instructions
/// (labels and debug bindings) that emit no machine code.
#[derive(Debug, Clone)]
enum RInst {
    /// Record a branch-target position.
    Label(u32),
    /// Record a debug binding at the current machine address.
    Bind {
        var: DebugVarId,
        loc: DbgLoc,
    },
    Mov {
        dst: RDef,
        src: RVal,
    },
    Un {
        op: UnOp,
        dst: RDef,
        src: RVal,
    },
    Bin {
        op: BinOp,
        dst: RDef,
        lhs: RVal,
        rhs: RVal,
    },
    Trunc {
        dst: RDef,
        bits: u32,
        signed: bool,
    },
    Load {
        dst: RDef,
        addr: RAddr,
    },
    Store {
        addr: RAddr,
        src: RVal,
    },
    Lea {
        dst: RDef,
        addr: RAddr,
    },
    Jump {
        label: u32,
    },
    BranchZero {
        cond: RVal,
        label: u32,
    },
    BranchNonZero {
        cond: RVal,
        label: u32,
    },
    Call {
        target: CallTarget,
        args: Vec<RVal>,
        ret: Option<RDef>,
    },
    Ret {
        value: Option<RVal>,
    },
}

fn visit_val(v: &RVal, scratch: Option<u8>, visit: &mut dyn FnMut(VReg, Option<u8>)) {
    if let RVal::Reg(r) = v {
        visit(*r, scratch);
    }
}

fn visit_addr(a: &RAddr, visit: &mut dyn FnMut(VReg, Option<u8>)) {
    match a {
        RAddr::Global {
            index: Some(index), ..
        } => visit_val(index, Some(SCRATCH1), visit),
        RAddr::Indirect { addr } => visit_val(addr, Some(SCRATCH1), visit),
        RAddr::Global { index: None, .. } | RAddr::Frame { .. } => {}
    }
}

impl VInstruction for RInst {
    fn visit_uses(&self, visit: &mut dyn FnMut(VReg, Option<u8>)) {
        match self {
            RInst::Mov { src, .. } | RInst::Un { src, .. } => {
                visit_val(src, Some(SCRATCH1), visit);
            }
            RInst::Bin { lhs, rhs, .. } => {
                visit_val(lhs, Some(SCRATCH1), visit);
                visit_val(rhs, Some(SCRATCH0), visit);
            }
            RInst::Load { addr, .. } | RInst::Lea { addr, .. } => visit_addr(addr, visit),
            RInst::Store { addr, src } => {
                visit_addr(addr, visit);
                visit_val(src, Some(SCRATCH0), visit);
            }
            RInst::BranchZero { cond, .. } | RInst::BranchNonZero { cond, .. } => {
                visit_val(cond, Some(SCRATCH1), visit);
            }
            // Call arguments consume spill slots directly (`Operand::Slot`),
            // so several spilled arguments never fight over the scratch
            // registers: no reload is planned for them.
            RInst::Call { args, .. } => {
                for arg in args {
                    visit_val(arg, None, visit);
                }
            }
            RInst::Ret { value } => {
                if let Some(value) = value {
                    visit_val(value, Some(SCRATCH1), visit);
                }
            }
            RInst::Label(_) | RInst::Bind { .. } | RInst::Jump { .. } | RInst::Trunc { .. } => {}
        }
    }

    fn def(&self) -> Option<VDef> {
        let dst = match self {
            RInst::Mov { dst, .. }
            | RInst::Un { dst, .. }
            | RInst::Bin { dst, .. }
            | RInst::Trunc { dst, .. }
            | RInst::Load { dst, .. }
            | RInst::Lea { dst, .. } => Some(*dst),
            RInst::Call { ret, .. } => *ret,
            _ => None,
        };
        dst.map(|d| VDef {
            vreg: d.vreg,
            scratch: SCRATCH0,
            store_after: d.store_after,
        })
    }
}

fn vreg(t: Temp) -> VReg {
    VReg(t.0)
}

fn rval(v: Value) -> RVal {
    match v {
        Value::Const(c) => RVal::Imm(c),
        Value::Temp(t) => RVal::Reg(vreg(t)),
    }
}

fn rdef(t: Temp, store_after: bool) -> RDef {
    RDef {
        vreg: vreg(t),
        store_after,
    }
}

fn raddr_global(global: holes_minic::ast::GlobalId, index: Option<Value>) -> RAddr {
    match index {
        None => RAddr::Global {
            global: global.0 as u32,
            index: None,
            disp: 0,
        },
        Some(Value::Const(c)) => RAddr::Global {
            global: global.0 as u32,
            index: None,
            disp: c.max(0) as u32,
        },
        Some(v) => RAddr::Global {
            global: global.0 as u32,
            index: Some(rval(v)),
            disp: 0,
        },
    }
}

/// Lower one IR function to virtual-register code: map temps to vregs
/// one-to-one, expand each IR operation into its [`RInst`] sequence, and
/// record the per-position liveness summary ([`PosInfo`]) the allocator
/// consumes. Liveness lives at IR-position granularity so that
/// multi-instruction expansions cannot perturb live ranges.
fn lower_function(func: &IrFunction, index: usize) -> VCode<RInst> {
    // First-occurrence IR position of every label (branch targets for
    // back-edge detection).
    let mut label_ir_pos: HashMap<u32, usize> = HashMap::new();
    for (i, inst) in func.insts.iter().enumerate() {
        if let Op::Label(l) = inst.op {
            label_ir_pos.entry(l.0).or_insert(i);
        }
    }

    let mut insts: Vec<VInst<RInst>> = Vec::with_capacity(func.insts.len());
    let mut positions: Vec<PosInfo> = Vec::with_capacity(func.insts.len());
    for inst in &func.insts {
        let line = inst.line;
        let scope = inst.scope;
        let mut pos = PosInfo::default();
        if let Some(d) = inst.op.def() {
            pos.def = Some(vreg(d));
        }
        for u in inst.op.uses() {
            if let Value::Temp(t) = u {
                pos.uses.push(vreg(t));
            }
        }
        if let Op::DbgValue {
            loc: DbgLoc::Value(Value::Temp(t)),
            ..
        } = inst.op
        {
            pos.dbg_use = Some(vreg(t));
        }
        pos.branch_target = match inst.op {
            Op::Jump(l)
            | Op::BranchZero { target: l, .. }
            | Op::BranchNonZero { target: l, .. } => label_ir_pos.get(&l.0).copied(),
            _ => None,
        };

        let mut push = |inst: RInst, is_stmt: bool| {
            insts.push(VInst {
                inst,
                line,
                scope,
                is_stmt,
            });
        };
        match &inst.op {
            Op::Label(l) => push(RInst::Label(l.0), false),
            Op::DbgValue { var, loc } => {
                push(
                    RInst::Bind {
                        var: *var,
                        loc: *loc,
                    },
                    false,
                );
            }
            Op::Nop => {}
            Op::Copy { dst, src } => {
                push(
                    RInst::Mov {
                        dst: rdef(*dst, true),
                        src: rval(*src),
                    },
                    true,
                );
            }
            Op::Un { dst, op, src } => {
                push(
                    RInst::Un {
                        op: *op,
                        dst: rdef(*dst, true),
                        src: rval(*src),
                    },
                    true,
                );
            }
            Op::Bin { dst, op, lhs, rhs } => {
                push(
                    RInst::Bin {
                        op: *op,
                        dst: rdef(*dst, true),
                        lhs: rval(*lhs),
                        rhs: rval(*rhs),
                    },
                    true,
                );
            }
            Op::Trunc {
                dst,
                src,
                bits,
                signed,
            } => {
                // Two-instruction expansion: the spill store (if any)
                // belongs after the truncation, so only the final
                // instruction carries `store_after`.
                push(
                    RInst::Mov {
                        dst: rdef(*dst, false),
                        src: rval(*src),
                    },
                    true,
                );
                push(
                    RInst::Trunc {
                        dst: rdef(*dst, true),
                        bits: *bits,
                        signed: *signed,
                    },
                    false,
                );
            }
            Op::LoadGlobal {
                dst, global, index, ..
            } => {
                push(
                    RInst::Load {
                        dst: rdef(*dst, true),
                        addr: raddr_global(*global, *index),
                    },
                    true,
                );
            }
            Op::StoreGlobal {
                global,
                index,
                value,
                ..
            } => {
                push(
                    RInst::Store {
                        addr: raddr_global(*global, *index),
                        src: rval(*value),
                    },
                    true,
                );
            }
            Op::LoadSlot { dst, slot } => {
                push(
                    RInst::Load {
                        dst: rdef(*dst, true),
                        addr: RAddr::Frame { slot: slot.0 },
                    },
                    true,
                );
            }
            Op::StoreSlot { slot, value } => {
                push(
                    RInst::Store {
                        addr: RAddr::Frame { slot: slot.0 },
                        src: rval(*value),
                    },
                    true,
                );
            }
            Op::LoadPtr { dst, addr } => {
                push(
                    RInst::Load {
                        dst: rdef(*dst, true),
                        addr: RAddr::Indirect { addr: rval(*addr) },
                    },
                    true,
                );
            }
            Op::StorePtr { addr, value } => {
                push(
                    RInst::Store {
                        addr: RAddr::Indirect { addr: rval(*addr) },
                        src: rval(*value),
                    },
                    true,
                );
            }
            Op::AddrGlobal { dst, global } => {
                push(
                    RInst::Lea {
                        dst: rdef(*dst, true),
                        addr: RAddr::Global {
                            global: global.0 as u32,
                            index: None,
                            disp: 0,
                        },
                    },
                    true,
                );
            }
            Op::AddrSlot { dst, slot } => {
                push(
                    RInst::Lea {
                        dst: rdef(*dst, true),
                        addr: RAddr::Frame { slot: slot.0 },
                    },
                    true,
                );
            }
            Op::Jump(l) => push(RInst::Jump { label: l.0 }, true),
            Op::BranchZero { cond, target } => {
                push(
                    RInst::BranchZero {
                        cond: rval(*cond),
                        label: target.0,
                    },
                    true,
                );
            }
            Op::BranchNonZero { cond, target } => {
                push(
                    RInst::BranchNonZero {
                        cond: rval(*cond),
                        label: target.0,
                    },
                    true,
                );
            }
            Op::Call { dst, callee, args } => {
                push(
                    RInst::Call {
                        target: CallTarget::Function(callee.0 as u32),
                        args: args.iter().map(|a| rval(*a)).collect(),
                        ret: dst.map(|d| rdef(d, true)),
                    },
                    true,
                );
            }
            Op::CallSink { args } => {
                push(
                    RInst::Call {
                        target: CallTarget::Sink,
                        args: args.iter().map(|a| rval(*a)).collect(),
                        ret: None,
                    },
                    true,
                );
            }
            Op::Ret { value } => push(
                RInst::Ret {
                    value: value.map(rval),
                },
                true,
            ),
        }
        positions.push(pos);
    }

    VCode {
        name: func.name.clone(),
        decl_line: func.decl_line,
        insts,
        positions,
        params: func.param_temps.iter().map(|t| vreg(*t)).collect(),
        local_slots: func.slots,
        base_address: MachineProgram::default_base_address(index),
    }
}

/// The emission stage: applies the allocator's spill/reload edits
/// mechanically (it never re-derives spill decisions), resolves virtual to
/// physical registers, emits the frame ABI's prologue/epilogue, and lowers
/// debug bindings to [`Location`]s — the point where the frame-layout
/// defect plan corrupts them.
struct Emitter<'a> {
    vcode: &'a VCode<RInst>,
    allocation: &'a Allocation,
    layout: &'a FrameLayout,
    abi: FrameAbi,
    plan: &'a FrameDefectPlan,
    applied: FrameDefectsApplied,
    code: Vec<MInst>,
    inst_scopes: Vec<ScopeId>,
    line_rows: Vec<LineRow>,
    bindings: Vec<(usize, DebugVarId, Location)>,
    label_positions: HashMap<u32, u32>,
    fixups: Vec<(usize, u32)>,
    /// Cursor into [`Allocation::edits`]; edits are consumed strictly in
    /// order as emission reaches their instruction and operand.
    next_edit: usize,
}

impl<'a> Emitter<'a> {
    fn new(
        vcode: &'a VCode<RInst>,
        allocation: &'a Allocation,
        layout: &'a FrameLayout,
        abi: FrameAbi,
        plan: &'a FrameDefectPlan,
    ) -> Emitter<'a> {
        Emitter {
            vcode,
            allocation,
            layout,
            abi,
            plan,
            applied: FrameDefectsApplied::default(),
            code: Vec::new(),
            inst_scopes: Vec::new(),
            line_rows: Vec::new(),
            bindings: Vec::new(),
            label_positions: HashMap::new(),
            fixups: Vec::new(),
            next_edit: 0,
        }
    }

    fn emit(mut self) -> (MFunction, DebugArtifacts, FrameDefectsApplied) {
        let vcode = self.vcode;
        let layout = self.layout;

        // Prologue: save the callee-saved registers this function uses.
        if let FrameAbi::Saved { .. } = self.abi {
            for (i, reg) in layout.saved.iter().enumerate() {
                self.push(
                    MInst::Store {
                        addr: MAddr::Frame {
                            slot: layout.save_slot(i),
                        },
                        src: Operand::Reg(*reg),
                    },
                    vcode.decl_line,
                    ScopeId(0),
                    false,
                );
            }
        }

        for (vi, vinst) in vcode.insts.iter().enumerate() {
            let line = vinst.line;
            let scope = vinst.scope;
            let is_stmt = vinst.is_stmt;
            match &vinst.inst {
                RInst::Label(label) => {
                    self.label_positions.insert(*label, self.code.len() as u32);
                }
                RInst::Bind { var, loc } => {
                    let location = self.bind_location(*var, *loc);
                    // Coalesce bindings landing on the same machine address:
                    // only the last one can ever take effect, and keeping
                    // the earlier one would create an empty location range.
                    self.bindings
                        .retain(|(index, v, _)| !(*index == self.code.len() && v == var));
                    self.bindings.push((self.code.len(), *var, location));
                }
                RInst::Mov { dst, src } => {
                    let reg = self.dest_reg(*dst);
                    let src_op = self.use_operand(vi, *src, line, scope);
                    self.push(
                        MInst::Mov {
                            dst: reg,
                            src: src_op,
                        },
                        line,
                        scope,
                        is_stmt,
                    );
                    self.finish_def(vi, *dst, line, scope);
                }
                RInst::Un { op, dst, src } => {
                    let reg = self.dest_reg(*dst);
                    let src_op = self.use_operand(vi, *src, line, scope);
                    self.push(
                        MInst::Un {
                            op: *op,
                            dst: reg,
                            src: src_op,
                        },
                        line,
                        scope,
                        is_stmt,
                    );
                    self.finish_def(vi, *dst, line, scope);
                }
                RInst::Bin { op, dst, lhs, rhs } => {
                    let reg = self.dest_reg(*dst);
                    let lhs_reg = self.use_in_reg(vi, *lhs, SCRATCH1, line, scope);
                    let rhs_op = self.use_operand(vi, *rhs, line, scope);
                    self.push(
                        MInst::Bin {
                            op: *op,
                            dst: reg,
                            lhs: Operand::Reg(lhs_reg),
                            rhs: rhs_op,
                        },
                        line,
                        scope,
                        is_stmt,
                    );
                    self.finish_def(vi, *dst, line, scope);
                }
                RInst::Trunc { dst, bits, signed } => {
                    let reg = self.dest_reg(*dst);
                    self.push(
                        MInst::Trunc {
                            dst: reg,
                            bits: *bits,
                            signed: *signed,
                        },
                        line,
                        scope,
                        is_stmt,
                    );
                    self.finish_def(vi, *dst, line, scope);
                }
                RInst::Load { dst, addr } => {
                    let reg = self.dest_reg(*dst);
                    let maddr = self.resolve_addr(vi, *addr, line, scope);
                    self.push(
                        MInst::Load {
                            dst: reg,
                            addr: maddr,
                        },
                        line,
                        scope,
                        is_stmt,
                    );
                    self.finish_def(vi, *dst, line, scope);
                }
                RInst::Store { addr, src } => {
                    let maddr = self.resolve_addr(vi, *addr, line, scope);
                    let src_op = self.use_operand(vi, *src, line, scope);
                    self.push(
                        MInst::Store {
                            addr: maddr,
                            src: src_op,
                        },
                        line,
                        scope,
                        is_stmt,
                    );
                }
                RInst::Lea { dst, addr } => {
                    let reg = self.dest_reg(*dst);
                    let maddr = self.resolve_addr(vi, *addr, line, scope);
                    self.push(
                        MInst::Lea {
                            dst: reg,
                            addr: maddr,
                        },
                        line,
                        scope,
                        is_stmt,
                    );
                    self.finish_def(vi, *dst, line, scope);
                }
                RInst::Jump { label } => {
                    self.fixups.push((self.code.len(), *label));
                    self.push(MInst::Jump { target: 0 }, line, scope, is_stmt);
                }
                RInst::BranchZero { cond, label } => {
                    let reg = self.use_in_reg(vi, *cond, SCRATCH1, line, scope);
                    self.fixups.push((self.code.len(), *label));
                    self.push(
                        MInst::BranchZero {
                            cond: reg,
                            target: 0,
                        },
                        line,
                        scope,
                        is_stmt,
                    );
                }
                RInst::BranchNonZero { cond, label } => {
                    let reg = self.use_in_reg(vi, *cond, SCRATCH1, line, scope);
                    self.fixups.push((self.code.len(), *label));
                    self.push(
                        MInst::BranchNonZero {
                            cond: reg,
                            target: 0,
                        },
                        line,
                        scope,
                        is_stmt,
                    );
                }
                RInst::Call { target, args, ret } => {
                    let arg_ops: Vec<Operand> = args.iter().map(|a| self.call_arg(*a)).collect();
                    let ret_reg = ret.map(|d| self.dest_reg(d));
                    self.push(
                        MInst::Call {
                            target: *target,
                            args: arg_ops,
                            ret: ret_reg,
                        },
                        line,
                        scope,
                        is_stmt,
                    );
                    if let Some(d) = ret {
                        self.finish_def(vi, *d, line, scope);
                    }
                }
                RInst::Ret { value } => {
                    let mut v = value.map(|val| self.use_operand(vi, val, line, scope));
                    // The return line's breakpoint address (its `is_stmt`
                    // row) must precede the epilogue: once the restores run,
                    // callee-saved registers hold the *caller's* values, so
                    // a stop after them would read garbage for any variable
                    // still homed in one. The stmt flag therefore rides on
                    // the first epilogue instruction and the rest of the
                    // sequence is attributed to the line as non-stmt rows.
                    let mut stmt = is_stmt;
                    if let FrameAbi::Saved { .. } = self.abi {
                        // The epilogue restores every saved register before
                        // returning; a return value living in one of them
                        // must first move to a scratch "return register" or
                        // the restore would clobber it.
                        if let Some(Operand::Reg(r)) = v {
                            if layout.saved.contains(&r) {
                                self.push(
                                    MInst::Mov {
                                        dst: SCRATCH1,
                                        src: Operand::Reg(r),
                                    },
                                    line,
                                    scope,
                                    std::mem::take(&mut stmt),
                                );
                                v = Some(Operand::Reg(SCRATCH1));
                            }
                        }
                        for (i, reg) in layout.saved.iter().enumerate() {
                            self.push(
                                MInst::Load {
                                    dst: *reg,
                                    addr: MAddr::Frame {
                                        slot: layout.save_slot(i),
                                    },
                                },
                                line,
                                scope,
                                std::mem::take(&mut stmt),
                            );
                        }
                    }
                    self.push(MInst::Ret { value: v }, line, scope, stmt);
                }
            }
        }

        self.apply_fixups();
        debug_assert_eq!(
            self.next_edit,
            self.allocation.edits.len(),
            "emission consumed every allocator edit"
        );
        let frame_base = match self.abi {
            FrameAbi::Banked => None,
            FrameAbi::Saved { .. } => Some(layout.total_slots() as u64),
        };
        let machine = MFunction {
            name: vcode.name.clone(),
            code: self.code,
            frame_slots: layout.total_slots(),
            base_address: vcode.base_address,
        };
        let artifacts = DebugArtifacts {
            base_address: vcode.base_address,
            code_len: machine.code.len(),
            line_rows: self.line_rows,
            inst_scopes: self.inst_scopes,
            bindings: self.bindings,
            frame_base,
        };
        (machine, artifacts, self.applied)
    }

    fn push(&mut self, inst: MInst, line: u32, scope: ScopeId, is_stmt: bool) {
        let address = self.vcode.base_address + self.code.len() as u64;
        self.line_rows.push(LineRow {
            address,
            line,
            is_stmt,
        });
        self.code.push(inst);
        self.inst_scopes.push(scope);
    }

    /// Consume the next allocator edit, which must belong to instruction
    /// `vi` (emission mirrors the allocator's operand walk exactly).
    fn take_edit(&mut self, vi: usize) -> Edit {
        let (at, edit) = self.allocation.edits[self.next_edit];
        self.next_edit += 1;
        debug_assert_eq!(at as usize, vi, "allocator edit stream out of sync");
        edit
    }

    /// Resolve a value operand, applying the pending reload edit when the
    /// vreg is spilled.
    fn use_operand(&mut self, vi: usize, val: RVal, line: u32, scope: ScopeId) -> Operand {
        match val {
            RVal::Imm(c) => Operand::Imm(c),
            RVal::Reg(v) => match self.allocation.home(v) {
                Some(Storage::Reg(r)) => Operand::Reg(r),
                Some(Storage::Spill(_)) => match self.take_edit(vi) {
                    Edit::Reload { spill, to } => {
                        let slot = self.layout.spill_slot(spill);
                        self.push(
                            MInst::Load {
                                dst: to,
                                addr: MAddr::Frame { slot },
                            },
                            line,
                            scope,
                            false,
                        );
                        Operand::Reg(to)
                    }
                    Edit::SpillStore { .. } => unreachable!("expected a reload edit"),
                },
                None => Operand::Imm(0),
            },
        }
    }

    /// Register a value must live in (for address/index registers):
    /// immediates are materialized into `scratch`.
    fn use_in_reg(&mut self, vi: usize, val: RVal, scratch: Reg, line: u32, scope: ScopeId) -> Reg {
        match self.use_operand(vi, val, line, scope) {
            Operand::Reg(r) => r,
            Operand::Imm(v) => {
                self.push(
                    MInst::LoadImm {
                        dst: scratch,
                        value: v,
                    },
                    line,
                    scope,
                    false,
                );
                scratch
            }
            Operand::Slot(slot) => {
                self.push(
                    MInst::Load {
                        dst: scratch,
                        addr: MAddr::Frame { slot },
                    },
                    line,
                    scope,
                    false,
                );
                scratch
            }
        }
    }

    /// Operand for a call argument: spilled vregs are passed as frame-slot
    /// operands (no reload was planned for them).
    fn call_arg(&self, val: RVal) -> Operand {
        match val {
            RVal::Imm(c) => Operand::Imm(c),
            RVal::Reg(v) => match self.allocation.home(v) {
                Some(Storage::Reg(r)) => Operand::Reg(r),
                Some(Storage::Spill(k)) => Operand::Slot(self.layout.spill_slot(k)),
                None => Operand::Imm(0),
            },
        }
    }

    /// The physical register a definition is computed into.
    fn dest_reg(&self, dst: RDef) -> Reg {
        match self.allocation.home(dst.vreg) {
            Some(Storage::Reg(r)) => r,
            Some(Storage::Spill(_)) | None => SCRATCH0,
        }
    }

    /// After the defining instruction: apply the pending spill-store edit,
    /// if the definition is spilled and this instruction carries the store.
    fn finish_def(&mut self, vi: usize, dst: RDef, line: u32, scope: ScopeId) {
        if !dst.store_after {
            return;
        }
        if let Some(Storage::Spill(_)) = self.allocation.home(dst.vreg) {
            match self.take_edit(vi) {
                Edit::SpillStore { spill, from } => {
                    let slot = self.layout.spill_slot(spill);
                    self.push(
                        MInst::Store {
                            addr: MAddr::Frame { slot },
                            src: Operand::Reg(from),
                        },
                        line,
                        scope,
                        false,
                    );
                }
                Edit::Reload { .. } => unreachable!("expected a spill-store edit"),
            }
        }
    }

    /// Resolve an addressing mode, loading index/address values into their
    /// scratch register as needed.
    fn resolve_addr(&mut self, vi: usize, addr: RAddr, line: u32, scope: ScopeId) -> MAddr {
        match addr {
            RAddr::Global {
                global,
                index,
                disp,
            } => match index {
                None => MAddr::Global {
                    global,
                    index: None,
                    disp,
                },
                Some(v) => {
                    let reg = self.use_in_reg(vi, v, SCRATCH1, line, scope);
                    MAddr::Global {
                        global,
                        index: Some(reg),
                        disp,
                    }
                }
            },
            RAddr::Frame { slot } => MAddr::Frame { slot },
            RAddr::Indirect { addr } => {
                let reg = self.use_in_reg(vi, addr, SCRATCH1, line, scope);
                MAddr::Indirect { reg }
            }
        }
    }

    /// Lower a debug binding to a [`Location`] under the frame ABI,
    /// applying the frame-layout defect plan where it can fire.
    fn bind_location(&mut self, var: DebugVarId, loc: DbgLoc) -> Location {
        match self.abi {
            FrameAbi::Banked => match loc {
                DbgLoc::Value(Value::Const(c)) => Location::ConstValue(c),
                DbgLoc::Value(Value::Temp(t)) => match self.allocation.home(vreg(t)) {
                    Some(Storage::Reg(r)) => Location::Register(r),
                    Some(Storage::Spill(k)) => Location::FrameSlot(self.layout.spill_slot(k)),
                    None => Location::Empty,
                },
                DbgLoc::Slot(SlotId(s)) => Location::FrameSlot(s),
                DbgLoc::Undef => Location::Empty,
            },
            FrameAbi::Saved { .. } => match loc {
                DbgLoc::Value(Value::Const(c)) => Location::ConstValue(c),
                DbgLoc::Value(Value::Temp(t)) => match self.allocation.home(vreg(t)) {
                    Some(Storage::Reg(r)) => {
                        if self.plan.callee_clobber.contains(&var)
                            && self.layout.save_slot_of(r).is_some()
                        {
                            // Defect: the frame map is missing the save-slot
                            // rule for this callee-saved register, so the
                            // producer cannot prove where the value lives
                            // across calls and conservatively drops the
                            // location — the consumer sees the variable as
                            // optimized out even though the register holds
                            // it the whole time.
                            self.applied.clobber = true;
                            return Location::Empty;
                        }
                        Location::Register(r)
                    }
                    Some(Storage::Spill(k)) => Location::FrameBase {
                        offset: self.stale_offset(var, self.layout.spill_slot(k)),
                    },
                    None => Location::Empty,
                },
                DbgLoc::Slot(SlotId(s)) => Location::FrameBase {
                    offset: self.stale_offset(var, s),
                },
                DbgLoc::Undef => Location::Empty,
            },
        }
    }

    /// A frame-base-relative offset for `var`, corrupted by the stale
    /// frame-base defect when `var` is a victim: the defective description
    /// applies the *function-entry* frame-base rule — computed before the
    /// prologue allocated the frame — so every fbreg offset is shifted up
    /// by the whole frame. Shifted reads resolve past the frame; they fail
    /// (optimized out) whenever the stack has not grown beyond this frame,
    /// and read stale bytes from dead deeper frames otherwise.
    fn stale_offset(&mut self, var: DebugVarId, slot: u32) -> i32 {
        let mut offset = slot as i32;
        if self.plan.stale_fbreg.contains(&var) {
            offset += self.layout.total_slots() as i32;
            self.applied.stale = true;
        }
        offset
    }

    fn apply_fixups(&mut self) {
        for (inst_index, label) in std::mem::take(&mut self.fixups) {
            let target = self
                .label_positions
                .get(&label)
                .copied()
                .unwrap_or(self.code.len() as u32);
            match &mut self.code[inst_index] {
                MInst::Jump { target: t }
                | MInst::BranchZero { target: t, .. }
                | MInst::BranchNonZero { target: t, .. } => *t = target,
                _ => {}
            }
        }
    }
}

/// Build the DIE tree from the per-function artifacts. Shared by every
/// backend: the emitted DIE structure (subprograms, scopes, variable DIEs
/// and their attribute order) is a pure function of the IR and the
/// backend-neutral [`DebugArtifacts`], so two backends lowering the same IR
/// differ only in the location descriptions inside their location lists
/// (and in the frame-base attribute a real-frame backend adds).
pub(crate) fn emit_debug_info(
    source: &Program,
    ir: &IrProgram,
    artifacts: &[DebugArtifacts],
    globals: &[GlobalSlot],
    source_name: &str,
) -> DebugInfo {
    let mut info = DebugInfo::new(source_name);
    // Global variable DIEs.
    for (gi, global) in source.globals.iter().enumerate() {
        let die = info.add_die(info.root(), DieTag::Variable);
        info.set_attr(die, Attr::Name, AttrValue::Text(global.name.clone()));
        info.set_attr(die, Attr::External, AttrValue::Flag(true));
        let address = holes_machine::isa::global_base_address(globals, gi as u32) as u64;
        info.set_attr(
            die,
            Attr::Location,
            AttrValue::LocList(vec![LocListEntry::new(
                0,
                u64::MAX,
                Location::GlobalAddress(address),
            )]),
        );
    }
    // Phase A: subprogram DIEs for every function.
    let mut subprograms: Vec<DieId> = Vec::with_capacity(ir.functions.len());
    for (fi, func) in ir.functions.iter().enumerate() {
        let artifact = &artifacts[fi];
        let die = info.add_die(info.root(), DieTag::Subprogram);
        info.set_attr(die, Attr::Name, AttrValue::Text(func.name.clone()));
        let (lo, hi) = artifact.pc_range();
        info.set_attr(die, Attr::LowPc, AttrValue::Addr(lo));
        info.set_attr(die, Attr::HighPc, AttrValue::Addr(hi));
        info.set_attr(
            die,
            Attr::DeclLine,
            AttrValue::Unsigned(func.decl_line as u64),
        );
        if let Some(frame_base) = artifact.frame_base {
            info.set_attr(die, Attr::FrameBase, AttrValue::Unsigned(frame_base));
        }
        subprograms.push(die);
    }
    // Phase B: scopes and variables.
    for (fi, func) in ir.functions.iter().enumerate() {
        let artifact = &artifacts[fi];
        for row in &artifact.line_rows {
            info.line_table.push(*row);
        }
        let subprogram = subprograms[fi];
        let base = artifact.base_address;
        let end = base + artifact.code_len as u64;
        // Scope DIEs.
        let mut scope_dies: Vec<DieId> = vec![subprogram];
        for (si, scope) in func.scopes.iter().enumerate().skip(1) {
            let range = scope_range(artifact, ScopeId(si as u32), base);
            let (parent, tag, origin) = match scope {
                ScopeKind::Function => (info.root(), DieTag::LexicalBlock, None),
                ScopeKind::Block { parent } => (
                    scope_dies
                        .get(parent.0 as usize)
                        .copied()
                        .unwrap_or(subprogram),
                    DieTag::LexicalBlock,
                    None,
                ),
                ScopeKind::Inlined { parent, callee, .. } => (
                    scope_dies
                        .get(parent.0 as usize)
                        .copied()
                        .unwrap_or(subprogram),
                    DieTag::InlinedSubroutine,
                    Some(*callee),
                ),
            };
            let die = info.add_die(parent, tag);
            if let Some((lo, hi)) = range {
                info.set_attr(die, Attr::LowPc, AttrValue::Addr(lo));
                info.set_attr(die, Attr::HighPc, AttrValue::Addr(hi));
            }
            if let ScopeKind::Inlined {
                call_line,
                callee_name,
                ..
            } = scope
            {
                info.set_attr(die, Attr::CallLine, AttrValue::Unsigned(*call_line as u64));
                info.set_attr(die, Attr::Name, AttrValue::Text(callee_name.clone()));
            }
            if let Some(origin) = origin {
                info.set_attr(
                    die,
                    Attr::AbstractOrigin,
                    AttrValue::Ref(subprograms[origin.0]),
                );
            }
            scope_dies.push(die);
        }
        // Variable DIEs with their location lists.
        for (vi, var) in func.vars.iter().enumerate() {
            if var.suppress_die {
                continue;
            }
            let var_id = DebugVarId(vi as u32);
            let parent = scope_dies
                .get(var.scope.0 as usize)
                .copied()
                .unwrap_or(subprogram);
            let tag = if var.is_param {
                DieTag::FormalParameter
            } else {
                DieTag::Variable
            };
            let die = info.add_die(parent, tag);
            info.set_attr(die, Attr::Name, AttrValue::Text(var.name.clone()));
            info.set_attr(
                die,
                Attr::DeclLine,
                AttrValue::Unsigned(var.decl_line as u64),
            );
            let events: Vec<(usize, Location)> = artifact
                .bindings
                .iter()
                .filter(|(_, v, _)| *v == var_id)
                .map(|(i, _, loc)| (*i, *loc))
                .collect();
            if events.is_empty() {
                // No binding at all: the DIE stays without location (hollow).
                continue;
            }
            let single_const = events.len() == 1 && matches!(events[0].1, Location::ConstValue(_));
            let inlined_scope = matches!(
                func.scopes.get(var.scope.0 as usize),
                Some(ScopeKind::Inlined { .. })
            );
            if single_const && !inlined_scope {
                if let Location::ConstValue(c) = events[0].1 {
                    info.set_attr(die, Attr::ConstValue, AttrValue::Signed(c));
                }
                continue;
            }
            if single_const && inlined_scope {
                // Inlined constants: the location lives only in the abstract
                // origin (legitimate DWARF; the lldb-like debugger mishandles
                // it, reproducing the paper's lldb bug 50076).
                if let ScopeKind::Inlined { callee, .. } = &func.scopes[var.scope.0 as usize] {
                    let origin_sub = subprograms[callee.0];
                    if let Some(origin_var) = info.find_variable(origin_sub, &var.name, base) {
                        info.set_attr(die, Attr::AbstractOrigin, AttrValue::Ref(origin_var));
                        if let Location::ConstValue(c) = events[0].1 {
                            info.set_attr(origin_var, Attr::ConstValue, AttrValue::Signed(c));
                            info.remove_attr(origin_var, Attr::Location);
                        }
                        continue;
                    }
                }
                if let Location::ConstValue(c) = events[0].1 {
                    info.set_attr(die, Attr::ConstValue, AttrValue::Signed(c));
                }
                continue;
            }
            let mut entries = Vec::with_capacity(events.len());
            for (pos, (start, loc)) in events.iter().enumerate() {
                let range_end = events
                    .get(pos + 1)
                    .map(|(next, _)| base + *next as u64)
                    .unwrap_or(end);
                entries.push(LocListEntry::new(base + *start as u64, range_end, *loc));
            }
            info.set_attr(die, Attr::Location, AttrValue::LocList(entries));
        }
    }
    info
}

fn scope_range(artifact: &DebugArtifacts, scope: ScopeId, base: u64) -> Option<(u64, u64)> {
    let mut lo = None;
    let mut hi = None;
    for (i, s) in artifact.inst_scopes.iter().enumerate() {
        if *s == scope {
            let addr = base + i as u64;
            lo = Some(lo.map_or(addr, |l: u64| l.min(addr)));
            hi = Some(hi.map_or(addr + 1, |h: u64| h.max(addr + 1)));
        }
    }
    Some((lo?, hi?))
}

#[cfg(test)]
mod legacy {
    //! The pre-pipeline monolithic register backend, kept verbatim as the
    //! differential reference: the pipeline must reproduce its machine code
    //! and debug information byte-for-byte.
    #![allow(clippy::all)]

    use super::*;

    /// Where a temp lives after register allocation.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Alloc {
        Reg(Reg),
        Spill(u32),
    }

    /// The original monolithic `codegen` entry point.
    pub(super) fn codegen_legacy(
        source: &Program,
        ir: &IrProgram,
        source_name: &str,
    ) -> (MachineProgram, DebugInfo) {
        let globals = lower_globals(source);
        let entry = source.main().0 as u32;
        let (functions, artifacts): (Vec<MFunction>, Vec<DebugArtifacts>) = ir
            .functions
            .iter()
            .enumerate()
            .map(|(index, func)| FunctionEmitter::new(func, index).emit())
            .unzip();
        let machine = MachineProgram {
            functions,
            globals,
            entry,
        };
        let debug = emit_debug_info(source, ir, &artifacts, &machine.globals, source_name);
        (machine, debug)
    }

    struct FunctionEmitter<'f> {
        func: &'f IrFunction,
        #[allow(dead_code)]
        index: usize,
        alloc: HashMap<Temp, Alloc>,
        spill_slots: u32,
        code: Vec<MInst>,
        inst_scopes: Vec<ScopeId>,
        line_rows: Vec<LineRow>,
        bindings: Vec<(usize, DebugVarId, Location)>,
        label_positions: HashMap<u32, u32>,
        fixups: Vec<(usize, u32)>,
        base_address: u64,
    }

    impl<'f> FunctionEmitter<'f> {
        fn new(func: &'f IrFunction, index: usize) -> FunctionEmitter<'f> {
            FunctionEmitter {
                func,
                index,
                alloc: HashMap::new(),
                spill_slots: 0,
                code: Vec::new(),
                inst_scopes: Vec::new(),
                line_rows: Vec::new(),
                bindings: Vec::new(),
                label_positions: HashMap::new(),
                fixups: Vec::new(),
                base_address: MachineProgram::default_base_address(index),
            }
        }

        fn emit(mut self) -> (MFunction, DebugArtifacts) {
            self.allocate_registers();
            self.emit_code();
            self.apply_fixups();
            let machine = MFunction {
                name: self.func.name.clone(),
                code: self.code,
                frame_slots: self.func.slots + self.spill_slots,
                base_address: self.base_address,
            };
            let artifacts = DebugArtifacts {
                base_address: self.base_address,
                code_len: machine.code.len(),
                line_rows: self.line_rows,
                inst_scopes: self.inst_scopes,
                bindings: self.bindings,
                frame_base: None,
            };
            (machine, artifacts)
        }

        /// Linear-scan register allocation over temp live ranges. Temps that are
        /// referenced by debug bindings are kept alive until the end of the
        /// function so that variable locations stay valid — mirroring how the
        /// unoptimized baseline keeps every variable observable.
        fn allocate_registers(&mut self) {
            let mut first_def: HashMap<Temp, usize> = HashMap::new();
            let mut last_use: HashMap<Temp, usize> = HashMap::new();
            let end = self.func.insts.len();
            for (i, param) in self.func.param_temps.iter().enumerate() {
                first_def.insert(*param, 0);
                last_use.insert(*param, end);
                let _ = i;
            }
            let extend = |map: &mut HashMap<Temp, usize>, t: Temp, i: usize| {
                let entry = map.entry(t).or_insert(i);
                *entry = (*entry).max(i);
            };
            for (i, inst) in self.func.insts.iter().enumerate() {
                if let Some(d) = inst.op.def() {
                    first_def.entry(d).or_insert(i);
                    extend(&mut last_use, d, i);
                }
                for u in inst.op.uses() {
                    if let Value::Temp(t) = u {
                        first_def.entry(t).or_insert(i);
                        extend(&mut last_use, t, i);
                    }
                }
                if let Op::DbgValue {
                    loc: DbgLoc::Value(Value::Temp(t)),
                    ..
                } = inst.op
                {
                    first_def.entry(t).or_insert(i);
                    extend(&mut last_use, t, end);
                }
            }
            // Loop back edges: a temp live anywhere inside a loop must stay live
            // until the backward branch, otherwise a temp defined later in the
            // body could take its register and clobber it on the next iteration.
            let mut back_edges: Vec<(usize, usize)> = Vec::new();
            let label_at = |label: crate::ir::BlockLabel| {
                self.func
                    .insts
                    .iter()
                    .position(|i| matches!(i.op, Op::Label(l) if l == label))
            };
            for (i, inst) in self.func.insts.iter().enumerate() {
                let target = match inst.op {
                    Op::Jump(l)
                    | Op::BranchZero { target: l, .. }
                    | Op::BranchNonZero { target: l, .. } => label_at(l),
                    _ => None,
                };
                if let Some(t) = target {
                    if t < i {
                        back_edges.push((t, i));
                    }
                }
            }
            let mut changed = true;
            while changed {
                changed = false;
                for &(header, branch) in &back_edges {
                    for (temp, start) in first_def.iter() {
                        let stop = last_use.get(temp).copied().unwrap_or(*start);
                        if *start <= branch && stop >= header && stop < branch {
                            last_use.insert(*temp, branch);
                            changed = true;
                        }
                    }
                }
            }
            let mut ranges: Vec<(Temp, usize, usize)> = first_def
                .iter()
                .map(|(t, start)| (*t, *start, *last_use.get(t).unwrap_or(start)))
                .collect();
            ranges.sort_by_key(|(t, start, _)| (*start, t.0));

            let mut free: Vec<Reg> = (0..ALLOCATABLE as u8).rev().collect();
            // Pre-colour parameters into the argument registers; they are pinned
            // (never spilled) because the calling convention delivers arguments
            // there.
            let pinned: Vec<Temp> = self.func.param_temps.clone();
            let mut active: Vec<(usize, Temp, Reg)> = Vec::new();
            for (i, param) in self.func.param_temps.iter().enumerate() {
                let reg = i as Reg;
                free.retain(|r| *r != reg);
                self.alloc.insert(*param, Alloc::Reg(reg));
                active.push((end, *param, reg));
            }
            for (temp, start, stop) in ranges {
                if self.alloc.contains_key(&temp) {
                    continue;
                }
                // Expire old intervals.
                let mut still_active = Vec::new();
                for (a_end, a_temp, a_reg) in active.drain(..) {
                    if a_end < start {
                        free.push(a_reg);
                    } else {
                        still_active.push((a_end, a_temp, a_reg));
                    }
                }
                active = still_active;
                if let Some(reg) = free.pop() {
                    self.alloc.insert(temp, Alloc::Reg(reg));
                    active.push((stop, temp, reg));
                } else {
                    // Spill: prefer to spill the spillable active interval that
                    // ends last (never a pinned parameter).
                    active.sort_by_key(|(e, _, _)| *e);
                    let victim_index = active.iter().rposition(|(_, t, _)| !pinned.contains(t));
                    let spill_self = match victim_index {
                        Some(vi) => active[vi].0 < stop,
                        None => true,
                    };
                    if spill_self {
                        let slot = self.func.slots + self.spill_slots;
                        self.spill_slots += 1;
                        self.alloc.insert(temp, Alloc::Spill(slot));
                    } else {
                        let (_, victim, reg) = active.remove(victim_index.expect("victim exists"));
                        let slot = self.func.slots + self.spill_slots;
                        self.spill_slots += 1;
                        self.alloc.insert(victim, Alloc::Spill(slot));
                        self.alloc.insert(temp, Alloc::Reg(reg));
                        active.push((stop, temp, reg));
                    }
                }
            }
        }

        fn push(&mut self, inst: MInst, line: u32, scope: ScopeId, is_stmt: bool) {
            let address = self.base_address + self.code.len() as u64;
            self.line_rows.push(LineRow {
                address,
                line,
                is_stmt,
            });
            self.code.push(inst);
            self.inst_scopes.push(scope);
        }

        /// Materialize a value as an operand, loading spilled temps into a
        /// scratch register first.
        fn operand(&mut self, value: Value, scratch: Reg, line: u32, scope: ScopeId) -> Operand {
            match value {
                Value::Const(c) => Operand::Imm(c),
                Value::Temp(t) => match self.alloc.get(&t) {
                    Some(Alloc::Reg(r)) => Operand::Reg(*r),
                    Some(Alloc::Spill(slot)) => {
                        self.push(
                            MInst::Load {
                                dst: scratch,
                                addr: MAddr::Frame { slot: *slot },
                            },
                            line,
                            scope,
                            false,
                        );
                        Operand::Reg(scratch)
                    }
                    None => Operand::Imm(0),
                },
            }
        }

        /// Register a value must live in (for address/index registers).
        fn value_in_reg(&mut self, value: Value, scratch: Reg, line: u32, scope: ScopeId) -> Reg {
            match self.operand(value, scratch, line, scope) {
                Operand::Reg(r) => r,
                Operand::Imm(v) => {
                    self.push(
                        MInst::LoadImm {
                            dst: scratch,
                            value: v,
                        },
                        line,
                        scope,
                        false,
                    );
                    scratch
                }
                Operand::Slot(slot) => {
                    self.push(
                        MInst::Load {
                            dst: scratch,
                            addr: MAddr::Frame { slot },
                        },
                        line,
                        scope,
                        false,
                    );
                    scratch
                }
            }
        }

        /// The register to compute a destination into, plus whether it must be
        /// stored to a spill slot afterwards.
        fn dest(&mut self, temp: Temp) -> (Reg, Option<u32>) {
            match self.alloc.get(&temp) {
                Some(Alloc::Reg(r)) => (*r, None),
                Some(Alloc::Spill(slot)) => (SCRATCH0, Some(*slot)),
                None => (SCRATCH0, None),
            }
        }

        fn finish_dest(&mut self, spill: Option<u32>, reg: Reg, line: u32, scope: ScopeId) {
            if let Some(slot) = spill {
                self.push(
                    MInst::Store {
                        addr: MAddr::Frame { slot },
                        src: Operand::Reg(reg),
                    },
                    line,
                    scope,
                    false,
                );
            }
        }

        fn emit_code(&mut self) {
            for inst in &self.func.insts {
                let line = inst.line;
                let scope = inst.scope;
                let start = self.code.len();
                match &inst.op {
                    Op::Label(l) => {
                        self.label_positions.insert(l.0, self.code.len() as u32);
                    }
                    Op::DbgValue { var, loc } => {
                        let location = self.lower_dbg_loc(*loc);
                        // Coalesce bindings landing on the same machine address:
                        // only the last one can ever take effect, and keeping the
                        // earlier one would create an empty location range.
                        self.bindings
                            .retain(|(index, v, _)| !(*index == self.code.len() && v == var));
                        self.bindings.push((self.code.len(), *var, location));
                    }
                    Op::Nop => {}
                    Op::Copy { dst, src } => {
                        let (reg, spill) = self.dest(*dst);
                        let src_op = self.operand(*src, SCRATCH1, line, scope);
                        self.push(
                            MInst::Mov {
                                dst: reg,
                                src: src_op,
                            },
                            line,
                            scope,
                            true,
                        );
                        self.finish_dest(spill, reg, line, scope);
                    }
                    Op::Un { dst, op, src } => {
                        let (reg, spill) = self.dest(*dst);
                        let src_op = self.operand(*src, SCRATCH1, line, scope);
                        self.push(
                            MInst::Un {
                                op: *op,
                                dst: reg,
                                src: src_op,
                            },
                            line,
                            scope,
                            true,
                        );
                        self.finish_dest(spill, reg, line, scope);
                    }
                    Op::Bin { dst, op, lhs, rhs } => {
                        let (reg, spill) = self.dest(*dst);
                        let lhs_reg = self.value_in_reg(*lhs, SCRATCH1, line, scope);
                        let rhs_op = self.operand(*rhs, SCRATCH0, line, scope);
                        self.push(
                            MInst::Bin {
                                op: *op,
                                dst: reg,
                                lhs: Operand::Reg(lhs_reg),
                                rhs: rhs_op,
                            },
                            line,
                            scope,
                            true,
                        );
                        self.finish_dest(spill, reg, line, scope);
                    }
                    Op::Trunc {
                        dst,
                        src,
                        bits,
                        signed,
                    } => {
                        let (reg, spill) = self.dest(*dst);
                        let src_op = self.operand(*src, SCRATCH1, line, scope);
                        self.push(
                            MInst::Mov {
                                dst: reg,
                                src: src_op,
                            },
                            line,
                            scope,
                            true,
                        );
                        self.push(
                            MInst::Trunc {
                                dst: reg,
                                bits: *bits,
                                signed: *signed,
                            },
                            line,
                            scope,
                            false,
                        );
                        self.finish_dest(spill, reg, line, scope);
                    }
                    Op::LoadGlobal {
                        dst, global, index, ..
                    } => {
                        let (reg, spill) = self.dest(*dst);
                        let addr = self.global_addr(*global, *index, line, scope);
                        self.push(MInst::Load { dst: reg, addr }, line, scope, true);
                        self.finish_dest(spill, reg, line, scope);
                    }
                    Op::StoreGlobal {
                        global,
                        index,
                        value,
                        ..
                    } => {
                        let addr = self.global_addr(*global, *index, line, scope);
                        let src = self.operand(*value, SCRATCH0, line, scope);
                        self.push(MInst::Store { addr, src }, line, scope, true);
                    }
                    Op::LoadSlot { dst, slot } => {
                        let (reg, spill) = self.dest(*dst);
                        self.push(
                            MInst::Load {
                                dst: reg,
                                addr: MAddr::Frame { slot: slot.0 },
                            },
                            line,
                            scope,
                            true,
                        );
                        self.finish_dest(spill, reg, line, scope);
                    }
                    Op::StoreSlot { slot, value } => {
                        let src = self.operand(*value, SCRATCH0, line, scope);
                        self.push(
                            MInst::Store {
                                addr: MAddr::Frame { slot: slot.0 },
                                src,
                            },
                            line,
                            scope,
                            true,
                        );
                    }
                    Op::LoadPtr { dst, addr } => {
                        let (reg, spill) = self.dest(*dst);
                        let addr_reg = self.value_in_reg(*addr, SCRATCH1, line, scope);
                        self.push(
                            MInst::Load {
                                dst: reg,
                                addr: MAddr::Indirect { reg: addr_reg },
                            },
                            line,
                            scope,
                            true,
                        );
                        self.finish_dest(spill, reg, line, scope);
                    }
                    Op::StorePtr { addr, value } => {
                        let addr_reg = self.value_in_reg(*addr, SCRATCH1, line, scope);
                        let src = self.operand(*value, SCRATCH0, line, scope);
                        self.push(
                            MInst::Store {
                                addr: MAddr::Indirect { reg: addr_reg },
                                src,
                            },
                            line,
                            scope,
                            true,
                        );
                    }
                    Op::AddrGlobal { dst, global } => {
                        let (reg, spill) = self.dest(*dst);
                        self.push(
                            MInst::Lea {
                                dst: reg,
                                addr: MAddr::Global {
                                    global: global.0 as u32,
                                    index: None,
                                    disp: 0,
                                },
                            },
                            line,
                            scope,
                            true,
                        );
                        self.finish_dest(spill, reg, line, scope);
                    }
                    Op::AddrSlot { dst, slot } => {
                        let (reg, spill) = self.dest(*dst);
                        self.push(
                            MInst::Lea {
                                dst: reg,
                                addr: MAddr::Frame { slot: slot.0 },
                            },
                            line,
                            scope,
                            true,
                        );
                        self.finish_dest(spill, reg, line, scope);
                    }
                    Op::Jump(l) => {
                        self.fixups.push((self.code.len(), l.0));
                        self.push(MInst::Jump { target: 0 }, line, scope, true);
                    }
                    Op::BranchZero { cond, target } => {
                        let reg = self.value_in_reg(*cond, SCRATCH1, line, scope);
                        self.fixups.push((self.code.len(), target.0));
                        self.push(
                            MInst::BranchZero {
                                cond: reg,
                                target: 0,
                            },
                            line,
                            scope,
                            true,
                        );
                    }
                    Op::BranchNonZero { cond, target } => {
                        let reg = self.value_in_reg(*cond, SCRATCH1, line, scope);
                        self.fixups.push((self.code.len(), target.0));
                        self.push(
                            MInst::BranchNonZero {
                                cond: reg,
                                target: 0,
                            },
                            line,
                            scope,
                            true,
                        );
                    }
                    Op::Call { dst, callee, args } => {
                        let arg_ops: Vec<Operand> =
                            args.iter().map(|a| self.call_operand(*a)).collect();
                        let ret = dst.map(|d| self.dest(d));
                        self.push(
                            MInst::Call {
                                target: CallTarget::Function(callee.0 as u32),
                                args: arg_ops,
                                ret: ret.map(|(r, _)| r),
                            },
                            line,
                            scope,
                            true,
                        );
                        if let Some((reg, spill)) = ret {
                            self.finish_dest(spill, reg, line, scope);
                        }
                    }
                    Op::CallSink { args } => {
                        let arg_ops: Vec<Operand> =
                            args.iter().map(|a| self.call_operand(*a)).collect();
                        self.push(
                            MInst::Call {
                                target: CallTarget::Sink,
                                args: arg_ops,
                                ret: None,
                            },
                            line,
                            scope,
                            true,
                        );
                    }
                    Op::Ret { value } => {
                        let v = value.map(|val| self.operand(val, SCRATCH1, line, scope));
                        self.push(MInst::Ret { value: v }, line, scope, true);
                    }
                }
                // Make sure the first machine instruction of the IR instruction
                // carries the statement flag; helpers may already have emitted
                // spill loads flagged as non-statements, which is fine.
                let _ = start;
            }
        }

        /// Operand for a call argument: spilled temps are passed as frame-slot
        /// operands so that several spilled arguments do not fight over the
        /// scratch registers.
        fn call_operand(&mut self, value: Value) -> Operand {
            match value {
                Value::Const(c) => Operand::Imm(c),
                Value::Temp(t) => match self.alloc.get(&t) {
                    Some(Alloc::Reg(r)) => Operand::Reg(*r),
                    Some(Alloc::Spill(slot)) => Operand::Slot(*slot),
                    None => Operand::Imm(0),
                },
            }
        }

        fn global_addr(
            &mut self,
            global: holes_minic::ast::GlobalId,
            index: Option<Value>,
            line: u32,
            scope: ScopeId,
        ) -> MAddr {
            match index {
                None => MAddr::Global {
                    global: global.0 as u32,
                    index: None,
                    disp: 0,
                },
                Some(Value::Const(c)) => MAddr::Global {
                    global: global.0 as u32,
                    index: None,
                    disp: c.max(0) as u32,
                },
                Some(v) => {
                    let reg = self.value_in_reg(v, SCRATCH1, line, scope);
                    MAddr::Global {
                        global: global.0 as u32,
                        index: Some(reg),
                        disp: 0,
                    }
                }
            }
        }

        fn lower_dbg_loc(&self, loc: DbgLoc) -> Location {
            match loc {
                DbgLoc::Value(Value::Const(c)) => Location::ConstValue(c),
                DbgLoc::Value(Value::Temp(t)) => match self.alloc.get(&t) {
                    Some(Alloc::Reg(r)) => Location::Register(*r),
                    Some(Alloc::Spill(slot)) => Location::FrameSlot(*slot),
                    None => Location::Empty,
                },
                DbgLoc::Slot(SlotId(s)) => Location::FrameSlot(s),
                DbgLoc::Undef => Location::Empty,
            }
        }

        fn apply_fixups(&mut self) {
            for (inst_index, label) in std::mem::take(&mut self.fixups) {
                let target = self
                    .label_positions
                    .get(&label)
                    .copied()
                    .unwrap_or(self.code.len() as u32);
                match &mut self.code[inst_index] {
                    MInst::Jump { target: t }
                    | MInst::BranchZero { target: t, .. }
                    | MInst::BranchNonZero { target: t, .. } => *t = target,
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use holes_machine::Machine;
    use holes_minic::ast::{BinOp, Expr, LValue, Stmt, Ty, VarRef};
    use holes_minic::build::ProgramBuilder;
    use holes_minic::interp::Interpreter;

    fn build_and_run(program: &Program) -> (holes_machine::RunOutcome, DebugInfo) {
        let ir = lower_program(program);
        let (machine, debug) = codegen(program, &ir, "test.c");
        let outcome = Machine::new(&machine).run_to_completion().expect("runs");
        (outcome, debug)
    }

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let arr = b.global_array("a", Ty::I32, false, vec![3], vec![5, 6, 7]);
        let main = b.function("main", Ty::I32);
        let x = b.local(main, "x", Ty::I32);
        let i = b.local(main, "i", Ty::I32);
        b.push(main, Stmt::decl(x, Some(Expr::lit(4))));
        b.push(
            main,
            Stmt::for_loop(
                Some(Stmt::assign(LValue::local(i), Expr::lit(0))),
                Some(Expr::binary(BinOp::Lt, Expr::local(i), Expr::lit(3))),
                Some(Stmt::assign(
                    LValue::local(i),
                    Expr::binary(BinOp::Add, Expr::local(i), Expr::lit(1)),
                )),
                vec![Stmt::assign(
                    LValue::global(g),
                    Expr::binary(
                        BinOp::Add,
                        Expr::global(g),
                        Expr::index(VarRef::Global(arr), vec![Expr::local(i)]),
                    ),
                )],
            ),
        );
        b.push(
            main,
            Stmt::call_opaque(vec![Expr::local(x), Expr::local(i)]),
        );
        b.push(main, Stmt::ret(Some(Expr::global(g))));
        let mut p = b.finish();
        p.assign_lines();
        p
    }

    #[test]
    fn unoptimized_codegen_matches_interpreter() {
        let p = sample_program();
        let reference = Interpreter::new(&p).run().expect("interpreter runs");
        let (outcome, _) = build_and_run(&p);
        assert!(outcome.matches(&reference), "{outcome:?} vs {reference:?}");
        assert_eq!(outcome.return_value, 18);
    }

    #[test]
    fn line_table_covers_every_statement_line() {
        let mut p = sample_program();
        let map = p.assign_lines();
        let ir = lower_program(&p);
        let (_, debug) = codegen(&p, &ir, "test.c");
        let main = p.main();
        let steppable = debug.line_table.steppable_lines();
        for line in map.lines_of(main) {
            assert!(
                steppable.contains(line),
                "line {line} missing from line table"
            );
        }
    }

    #[test]
    fn variables_have_dies_with_locations() {
        let p = sample_program();
        let (_, debug) = build_and_run(&p);
        let sub = debug
            .iter()
            .find(|(_, d)| d.tag == DieTag::Subprogram && d.name() == Some("main"))
            .map(|(id, _)| id)
            .expect("main subprogram exists");
        let (lo, _) = debug.die(sub).pc_range().unwrap();
        for name in ["x", "i"] {
            let var = debug.find_variable(sub, name, lo).expect("variable die");
            let die = debug.die(var);
            assert!(
                die.attr(Attr::ConstValue).is_some() || die.attr(Attr::Location).is_some(),
                "{name} has neither const value nor location"
            );
        }
    }

    #[test]
    fn globals_have_external_dies() {
        let p = sample_program();
        let (_, debug) = build_and_run(&p);
        let globals: Vec<_> = debug
            .iter()
            .filter(|(_, d)| d.tag == DieTag::Variable && d.attr(Attr::External).is_some())
            .collect();
        assert_eq!(globals.len(), 2);
    }

    #[test]
    fn functions_with_many_locals_spill_but_stay_correct() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I64, false, vec![0]);
        let main = b.function("main", Ty::I32);
        let mut sum = Expr::lit(0);
        for i in 0..20 {
            let v = b.local(main, &format!("v{i}"), Ty::I64);
            b.push(main, Stmt::decl(v, Some(Expr::lit(i as i64))));
            sum = Expr::binary(BinOp::Add, sum, Expr::local(v));
        }
        b.push(main, Stmt::assign(LValue::global(g), sum));
        b.push(main, Stmt::ret(Some(Expr::global(g))));
        let mut p = b.finish();
        p.assign_lines();
        let reference = Interpreter::new(&p).run().unwrap();
        let (outcome, _) = build_and_run(&p);
        assert!(outcome.matches(&reference));
        assert_eq!(outcome.return_value, (0..20).sum::<i64>());
    }

    #[test]
    fn pointer_programs_compile_correctly() {
        let mut b = ProgramBuilder::new();
        let g = b.global("b", Ty::I32, false, vec![5]);
        let out = b.global("out", Ty::I32, false, vec![0]);
        let main = b.function("main", Ty::I32);
        let x = b.local(main, "x", Ty::I32);
        let ptr = b.local(main, "p", Ty::Ptr(&Ty::I32));
        b.push(main, Stmt::decl(x, Some(Expr::lit(9))));
        b.push(main, Stmt::decl(ptr, Some(Expr::addr_of(VarRef::Local(x)))));
        b.push(
            main,
            Stmt::assign(LValue::Deref(VarRef::Local(ptr)), Expr::lit(11)),
        );
        b.push(
            main,
            Stmt::assign(LValue::local(ptr), Expr::addr_of(VarRef::Global(g))),
        );
        b.push(
            main,
            Stmt::assign(
                LValue::global(out),
                Expr::binary(BinOp::Add, Expr::deref(Expr::local(ptr)), Expr::local(x)),
            ),
        );
        b.push(main, Stmt::ret(Some(Expr::global(out))));
        let mut p = b.finish();
        p.assign_lines();
        let reference = Interpreter::new(&p).run().unwrap();
        let (outcome, _) = build_and_run(&p);
        assert!(outcome.matches(&reference), "{outcome:?} vs {reference:?}");
        assert_eq!(outcome.return_value, 16);
    }

    #[test]
    fn internal_calls_compile_correctly() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let callee = b.function("twice", Ty::I32);
        let p0 = b.param(callee, "p0", Ty::I32);
        b.push(
            callee,
            Stmt::ret(Some(Expr::binary(
                BinOp::Mul,
                Expr::local(p0),
                Expr::lit(2),
            ))),
        );
        let main = b.function("main", Ty::I32);
        b.push(
            main,
            Stmt::assign(LValue::global(g), Expr::call(callee, vec![Expr::lit(21)])),
        );
        b.push(main, Stmt::ret(Some(Expr::global(g))));
        let mut p = b.finish();
        p.assign_lines();
        let reference = Interpreter::new(&p).run().unwrap();
        let (outcome, _) = build_and_run(&p);
        assert!(outcome.matches(&reference));
        assert_eq!(outcome.return_value, 42);
    }

    #[test]
    fn pipeline_codegen_matches_the_legacy_monolithic_backend() {
        use crate::config::{CompilerConfig, OptLevel, Personality};
        use crate::passes::run_pipeline;
        use holes_progen::ProgramGenerator;
        for seed in 0..16u64 {
            let p = ProgramGenerator::from_seed(seed).generate().program;
            for personality in [Personality::Ccg, Personality::Lcc] {
                for level in OptLevel::ALL {
                    let config = CompilerConfig::new(personality, level);
                    let mut ir = lower_program(&p);
                    run_pipeline(&mut ir, &p, &config);
                    let (machine_new, debug_new) = codegen(&p, &ir, "testcase.c");
                    let (machine_old, debug_old) = legacy::codegen_legacy(&p, &ir, "testcase.c");
                    assert_eq!(
                        machine_new, machine_old,
                        "machine code diverged from the legacy backend \
                         (seed {seed}, {personality:?} {level:?})"
                    );
                    assert_eq!(
                        debug_new, debug_old,
                        "debug info diverged from the legacy backend \
                         (seed {seed}, {personality:?} {level:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn frame_backend_preserves_semantics_and_saves_callee_saved_registers() {
        use crate::config::{CompilerConfig, OptLevel, Personality};
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I64, false, vec![0]);
        let main = b.function("main", Ty::I32);
        let mut sum = Expr::lit(0);
        for i in 0..20 {
            let v = b.local(main, &format!("v{i}"), Ty::I64);
            b.push(main, Stmt::decl(v, Some(Expr::lit(i as i64))));
            sum = Expr::binary(BinOp::Add, sum, Expr::local(v));
        }
        b.push(main, Stmt::assign(LValue::global(g), sum));
        b.push(main, Stmt::ret(Some(Expr::global(g))));
        let mut p = b.finish();
        p.assign_lines();
        let reference = Interpreter::new(&p).run().unwrap();
        let ir = lower_program(&p);
        let config = CompilerConfig::new(Personality::Ccg, OptLevel::O0)
            .without_defects()
            .with_backend(holes_machine::BackendKind::Frame);
        let (machine, debug, applied) = codegen_frame(&p, &ir, "test.c", &config);
        assert!(applied.is_empty(), "defects are disabled");
        let outcome = Machine::new(&machine)
            .run_to_completion()
            .expect("frame-ABI code runs");
        assert!(outcome.matches(&reference), "{outcome:?} vs {reference:?}");
        // The function uses callee-saved registers, so the prologue must
        // save them and the frame must include the save area.
        let entry = &machine.functions[machine.entry as usize];
        assert!(
            matches!(
                entry.code[0],
                MInst::Store {
                    addr: MAddr::Frame { .. },
                    ..
                }
            ),
            "prologue saves callee-saved registers: {:?}",
            entry.code[0]
        );
        // Subprogram DIEs advertise the frame base.
        let sub = debug
            .iter()
            .find(|(_, d)| d.tag == DieTag::Subprogram && d.name() == Some("main"))
            .map(|(id, _)| id)
            .expect("main subprogram exists");
        assert!(
            debug.die(sub).attr(Attr::FrameBase).is_some(),
            "frame-ABI subprograms carry DW_AT_frame_base"
        );
    }

    #[test]
    fn frame_defects_fire_and_alter_only_locations() {
        use crate::config::{CompilerConfig, OptLevel, Personality};
        use crate::passes::run_pipeline;
        use holes_progen::ProgramGenerator;
        let config = CompilerConfig::new(Personality::Ccg, OptLevel::O2)
            .with_backend(holes_machine::BackendKind::Frame);
        let clean = config.clone().without_defects();
        let mut fired = false;
        for seed in 0..40u64 {
            let p = ProgramGenerator::from_seed(seed).generate().program;
            let mut ir = lower_program(&p);
            run_pipeline(&mut ir, &p, &config);
            let (machine, debug, applied) = codegen_frame(&p, &ir, "testcase.c", &config);
            let (machine_clean, debug_clean, applied_clean) =
                codegen_frame(&p, &ir, "testcase.c", &clean);
            assert!(applied_clean.is_empty(), "disabled defects never fire");
            assert_eq!(
                machine, machine_clean,
                "frame defects must never change machine code (seed {seed})"
            );
            if !applied.is_empty() {
                fired = true;
                assert_ne!(
                    debug, debug_clean,
                    "a fired frame defect must corrupt debug info (seed {seed})"
                );
            }
        }
        assert!(fired, "no frame defect fired over the seed range");
    }
}
