//! Code generation: register allocation, machine-code emission, and debug
//! information emission.
//!
//! This is the compiler's always-on back end (the analogue of instruction
//! selection and register allocation). Besides producing runnable
//! [`MachineProgram`] code it is responsible for turning the IR's `DbgValue`
//! bindings into DWARF-style variable DIEs with `DW_AT_location` location
//! lists or `DW_AT_const_value` attributes, and for emitting the line table
//! — the raw material of every experiment in the paper.

use std::collections::HashMap;

use holes_debuginfo::{Attr, AttrValue, DebugInfo, DieId, DieTag, LineRow, LocListEntry, Location};
use holes_machine::{
    CallTarget, GlobalSlot, MAddr, MFunction, MInst, MachineProgram, Operand, Reg, NUM_REGS,
};
use holes_minic::ast::Program;

use crate::ir::{
    DbgLoc, DebugVarId, IrFunction, IrProgram, Op, ScopeId, ScopeKind, SlotId, Temp, Value,
};

/// Registers reserved as scratch for spills (the last three).
const SCRATCH0: Reg = (NUM_REGS - 3) as Reg;
const SCRATCH1: Reg = (NUM_REGS - 2) as Reg;
/// Number of allocatable registers.
const ALLOCATABLE: usize = NUM_REGS - 3;

/// Where a temp lives after register allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Alloc {
    Reg(Reg),
    Spill(u32),
}

/// The backend-neutral per-function lowering artifacts every backend hands
/// to the shared debug-information emitter ([`emit_debug_info`]): where the
/// function's code lives, its line-table rows, the scope of every emitted
/// instruction, and the variable binding timeline. Keeping this shape
/// backend-independent is what makes the DIE *structure* identical across
/// backends — only the [`Location`] payloads differ.
pub(crate) struct DebugArtifacts {
    /// Base code address of the function.
    pub base_address: u64,
    /// Number of emitted instructions.
    pub code_len: usize,
    /// Line-table rows for this function.
    pub line_rows: Vec<LineRow>,
    /// Scope of every emitted instruction.
    pub inst_scopes: Vec<ScopeId>,
    /// Variable binding timeline: `(instruction index, var, location)`.
    pub bindings: Vec<(usize, DebugVarId, Location)>,
}

impl DebugArtifacts {
    /// The `[low, high)` code address range of the function.
    fn pc_range(&self) -> (u64, u64) {
        (self.base_address, self.base_address + self.code_len as u64)
    }
}

/// Lay out the source globals as VM data-segment slots (shared by both
/// backends, which use the same data-address scheme).
pub(crate) fn lower_globals(source: &Program) -> Vec<GlobalSlot> {
    source
        .globals
        .iter()
        .map(|g| GlobalSlot {
            name: g.name.clone(),
            elements: g.element_count(),
            init: g.init.clone(),
            bits: g.ty.bits(),
            signed: g.ty.signed(),
            volatile: g.is_volatile,
        })
        .collect()
}

/// Generate register-VM machine code and debug information for a lowered
/// (and possibly optimized) program.
pub fn codegen(source: &Program, ir: &IrProgram, source_name: &str) -> (MachineProgram, DebugInfo) {
    let globals = lower_globals(source);
    let entry = source.main().0 as u32;

    let (functions, artifacts): (Vec<MFunction>, Vec<DebugArtifacts>) = ir
        .functions
        .iter()
        .enumerate()
        .map(|(index, func)| FunctionEmitter::new(func, index).emit())
        .unzip();

    let machine = MachineProgram {
        functions,
        globals,
        entry,
    };

    let debug = emit_debug_info(source, ir, &artifacts, &machine.globals, source_name);
    (machine, debug)
}

struct FunctionEmitter<'f> {
    func: &'f IrFunction,
    #[allow(dead_code)]
    index: usize,
    alloc: HashMap<Temp, Alloc>,
    spill_slots: u32,
    code: Vec<MInst>,
    inst_scopes: Vec<ScopeId>,
    line_rows: Vec<LineRow>,
    bindings: Vec<(usize, DebugVarId, Location)>,
    label_positions: HashMap<u32, u32>,
    fixups: Vec<(usize, u32)>,
    base_address: u64,
}

impl<'f> FunctionEmitter<'f> {
    fn new(func: &'f IrFunction, index: usize) -> FunctionEmitter<'f> {
        FunctionEmitter {
            func,
            index,
            alloc: HashMap::new(),
            spill_slots: 0,
            code: Vec::new(),
            inst_scopes: Vec::new(),
            line_rows: Vec::new(),
            bindings: Vec::new(),
            label_positions: HashMap::new(),
            fixups: Vec::new(),
            base_address: MachineProgram::default_base_address(index),
        }
    }

    fn emit(mut self) -> (MFunction, DebugArtifacts) {
        self.allocate_registers();
        self.emit_code();
        self.apply_fixups();
        let machine = MFunction {
            name: self.func.name.clone(),
            code: self.code,
            frame_slots: self.func.slots + self.spill_slots,
            base_address: self.base_address,
        };
        let artifacts = DebugArtifacts {
            base_address: self.base_address,
            code_len: machine.code.len(),
            line_rows: self.line_rows,
            inst_scopes: self.inst_scopes,
            bindings: self.bindings,
        };
        (machine, artifacts)
    }

    /// Linear-scan register allocation over temp live ranges. Temps that are
    /// referenced by debug bindings are kept alive until the end of the
    /// function so that variable locations stay valid — mirroring how the
    /// unoptimized baseline keeps every variable observable.
    fn allocate_registers(&mut self) {
        let mut first_def: HashMap<Temp, usize> = HashMap::new();
        let mut last_use: HashMap<Temp, usize> = HashMap::new();
        let end = self.func.insts.len();
        for (i, param) in self.func.param_temps.iter().enumerate() {
            first_def.insert(*param, 0);
            last_use.insert(*param, end);
            let _ = i;
        }
        let extend = |map: &mut HashMap<Temp, usize>, t: Temp, i: usize| {
            let entry = map.entry(t).or_insert(i);
            *entry = (*entry).max(i);
        };
        for (i, inst) in self.func.insts.iter().enumerate() {
            if let Some(d) = inst.op.def() {
                first_def.entry(d).or_insert(i);
                extend(&mut last_use, d, i);
            }
            for u in inst.op.uses() {
                if let Value::Temp(t) = u {
                    first_def.entry(t).or_insert(i);
                    extend(&mut last_use, t, i);
                }
            }
            if let Op::DbgValue {
                loc: DbgLoc::Value(Value::Temp(t)),
                ..
            } = inst.op
            {
                first_def.entry(t).or_insert(i);
                extend(&mut last_use, t, end);
            }
        }
        // Loop back edges: a temp live anywhere inside a loop must stay live
        // until the backward branch, otherwise a temp defined later in the
        // body could take its register and clobber it on the next iteration.
        let mut back_edges: Vec<(usize, usize)> = Vec::new();
        let label_at = |label: crate::ir::BlockLabel| {
            self.func
                .insts
                .iter()
                .position(|i| matches!(i.op, Op::Label(l) if l == label))
        };
        for (i, inst) in self.func.insts.iter().enumerate() {
            let target = match inst.op {
                Op::Jump(l)
                | Op::BranchZero { target: l, .. }
                | Op::BranchNonZero { target: l, .. } => label_at(l),
                _ => None,
            };
            if let Some(t) = target {
                if t < i {
                    back_edges.push((t, i));
                }
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for &(header, branch) in &back_edges {
                for (temp, start) in first_def.iter() {
                    let stop = last_use.get(temp).copied().unwrap_or(*start);
                    if *start <= branch && stop >= header && stop < branch {
                        last_use.insert(*temp, branch);
                        changed = true;
                    }
                }
            }
        }
        let mut ranges: Vec<(Temp, usize, usize)> = first_def
            .iter()
            .map(|(t, start)| (*t, *start, *last_use.get(t).unwrap_or(start)))
            .collect();
        ranges.sort_by_key(|(t, start, _)| (*start, t.0));

        let mut free: Vec<Reg> = (0..ALLOCATABLE as u8).rev().collect();
        // Pre-colour parameters into the argument registers; they are pinned
        // (never spilled) because the calling convention delivers arguments
        // there.
        let pinned: Vec<Temp> = self.func.param_temps.clone();
        let mut active: Vec<(usize, Temp, Reg)> = Vec::new();
        for (i, param) in self.func.param_temps.iter().enumerate() {
            let reg = i as Reg;
            free.retain(|r| *r != reg);
            self.alloc.insert(*param, Alloc::Reg(reg));
            active.push((end, *param, reg));
        }
        for (temp, start, stop) in ranges {
            if self.alloc.contains_key(&temp) {
                continue;
            }
            // Expire old intervals.
            let mut still_active = Vec::new();
            for (a_end, a_temp, a_reg) in active.drain(..) {
                if a_end < start {
                    free.push(a_reg);
                } else {
                    still_active.push((a_end, a_temp, a_reg));
                }
            }
            active = still_active;
            if let Some(reg) = free.pop() {
                self.alloc.insert(temp, Alloc::Reg(reg));
                active.push((stop, temp, reg));
            } else {
                // Spill: prefer to spill the spillable active interval that
                // ends last (never a pinned parameter).
                active.sort_by_key(|(e, _, _)| *e);
                let victim_index = active.iter().rposition(|(_, t, _)| !pinned.contains(t));
                let spill_self = match victim_index {
                    Some(vi) => active[vi].0 < stop,
                    None => true,
                };
                if spill_self {
                    let slot = self.func.slots + self.spill_slots;
                    self.spill_slots += 1;
                    self.alloc.insert(temp, Alloc::Spill(slot));
                } else {
                    let (_, victim, reg) = active.remove(victim_index.expect("victim exists"));
                    let slot = self.func.slots + self.spill_slots;
                    self.spill_slots += 1;
                    self.alloc.insert(victim, Alloc::Spill(slot));
                    self.alloc.insert(temp, Alloc::Reg(reg));
                    active.push((stop, temp, reg));
                }
            }
        }
    }

    fn push(&mut self, inst: MInst, line: u32, scope: ScopeId, is_stmt: bool) {
        let address = self.base_address + self.code.len() as u64;
        self.line_rows.push(LineRow {
            address,
            line,
            is_stmt,
        });
        self.code.push(inst);
        self.inst_scopes.push(scope);
    }

    /// Materialize a value as an operand, loading spilled temps into a
    /// scratch register first.
    fn operand(&mut self, value: Value, scratch: Reg, line: u32, scope: ScopeId) -> Operand {
        match value {
            Value::Const(c) => Operand::Imm(c),
            Value::Temp(t) => match self.alloc.get(&t) {
                Some(Alloc::Reg(r)) => Operand::Reg(*r),
                Some(Alloc::Spill(slot)) => {
                    self.push(
                        MInst::Load {
                            dst: scratch,
                            addr: MAddr::Frame { slot: *slot },
                        },
                        line,
                        scope,
                        false,
                    );
                    Operand::Reg(scratch)
                }
                None => Operand::Imm(0),
            },
        }
    }

    /// Register a value must live in (for address/index registers).
    fn value_in_reg(&mut self, value: Value, scratch: Reg, line: u32, scope: ScopeId) -> Reg {
        match self.operand(value, scratch, line, scope) {
            Operand::Reg(r) => r,
            Operand::Imm(v) => {
                self.push(
                    MInst::LoadImm {
                        dst: scratch,
                        value: v,
                    },
                    line,
                    scope,
                    false,
                );
                scratch
            }
            Operand::Slot(slot) => {
                self.push(
                    MInst::Load {
                        dst: scratch,
                        addr: MAddr::Frame { slot },
                    },
                    line,
                    scope,
                    false,
                );
                scratch
            }
        }
    }

    /// The register to compute a destination into, plus whether it must be
    /// stored to a spill slot afterwards.
    fn dest(&mut self, temp: Temp) -> (Reg, Option<u32>) {
        match self.alloc.get(&temp) {
            Some(Alloc::Reg(r)) => (*r, None),
            Some(Alloc::Spill(slot)) => (SCRATCH0, Some(*slot)),
            None => (SCRATCH0, None),
        }
    }

    fn finish_dest(&mut self, spill: Option<u32>, reg: Reg, line: u32, scope: ScopeId) {
        if let Some(slot) = spill {
            self.push(
                MInst::Store {
                    addr: MAddr::Frame { slot },
                    src: Operand::Reg(reg),
                },
                line,
                scope,
                false,
            );
        }
    }

    fn emit_code(&mut self) {
        for inst in &self.func.insts {
            let line = inst.line;
            let scope = inst.scope;
            let start = self.code.len();
            match &inst.op {
                Op::Label(l) => {
                    self.label_positions.insert(l.0, self.code.len() as u32);
                }
                Op::DbgValue { var, loc } => {
                    let location = self.lower_dbg_loc(*loc);
                    // Coalesce bindings landing on the same machine address:
                    // only the last one can ever take effect, and keeping the
                    // earlier one would create an empty location range.
                    self.bindings
                        .retain(|(index, v, _)| !(*index == self.code.len() && v == var));
                    self.bindings.push((self.code.len(), *var, location));
                }
                Op::Nop => {}
                Op::Copy { dst, src } => {
                    let (reg, spill) = self.dest(*dst);
                    let src_op = self.operand(*src, SCRATCH1, line, scope);
                    self.push(
                        MInst::Mov {
                            dst: reg,
                            src: src_op,
                        },
                        line,
                        scope,
                        true,
                    );
                    self.finish_dest(spill, reg, line, scope);
                }
                Op::Un { dst, op, src } => {
                    let (reg, spill) = self.dest(*dst);
                    let src_op = self.operand(*src, SCRATCH1, line, scope);
                    self.push(
                        MInst::Un {
                            op: *op,
                            dst: reg,
                            src: src_op,
                        },
                        line,
                        scope,
                        true,
                    );
                    self.finish_dest(spill, reg, line, scope);
                }
                Op::Bin { dst, op, lhs, rhs } => {
                    let (reg, spill) = self.dest(*dst);
                    let lhs_reg = self.value_in_reg(*lhs, SCRATCH1, line, scope);
                    let rhs_op = self.operand(*rhs, SCRATCH0, line, scope);
                    self.push(
                        MInst::Bin {
                            op: *op,
                            dst: reg,
                            lhs: Operand::Reg(lhs_reg),
                            rhs: rhs_op,
                        },
                        line,
                        scope,
                        true,
                    );
                    self.finish_dest(spill, reg, line, scope);
                }
                Op::Trunc {
                    dst,
                    src,
                    bits,
                    signed,
                } => {
                    let (reg, spill) = self.dest(*dst);
                    let src_op = self.operand(*src, SCRATCH1, line, scope);
                    self.push(
                        MInst::Mov {
                            dst: reg,
                            src: src_op,
                        },
                        line,
                        scope,
                        true,
                    );
                    self.push(
                        MInst::Trunc {
                            dst: reg,
                            bits: *bits,
                            signed: *signed,
                        },
                        line,
                        scope,
                        false,
                    );
                    self.finish_dest(spill, reg, line, scope);
                }
                Op::LoadGlobal {
                    dst, global, index, ..
                } => {
                    let (reg, spill) = self.dest(*dst);
                    let addr = self.global_addr(*global, *index, line, scope);
                    self.push(MInst::Load { dst: reg, addr }, line, scope, true);
                    self.finish_dest(spill, reg, line, scope);
                }
                Op::StoreGlobal {
                    global,
                    index,
                    value,
                    ..
                } => {
                    let addr = self.global_addr(*global, *index, line, scope);
                    let src = self.operand(*value, SCRATCH0, line, scope);
                    self.push(MInst::Store { addr, src }, line, scope, true);
                }
                Op::LoadSlot { dst, slot } => {
                    let (reg, spill) = self.dest(*dst);
                    self.push(
                        MInst::Load {
                            dst: reg,
                            addr: MAddr::Frame { slot: slot.0 },
                        },
                        line,
                        scope,
                        true,
                    );
                    self.finish_dest(spill, reg, line, scope);
                }
                Op::StoreSlot { slot, value } => {
                    let src = self.operand(*value, SCRATCH0, line, scope);
                    self.push(
                        MInst::Store {
                            addr: MAddr::Frame { slot: slot.0 },
                            src,
                        },
                        line,
                        scope,
                        true,
                    );
                }
                Op::LoadPtr { dst, addr } => {
                    let (reg, spill) = self.dest(*dst);
                    let addr_reg = self.value_in_reg(*addr, SCRATCH1, line, scope);
                    self.push(
                        MInst::Load {
                            dst: reg,
                            addr: MAddr::Indirect { reg: addr_reg },
                        },
                        line,
                        scope,
                        true,
                    );
                    self.finish_dest(spill, reg, line, scope);
                }
                Op::StorePtr { addr, value } => {
                    let addr_reg = self.value_in_reg(*addr, SCRATCH1, line, scope);
                    let src = self.operand(*value, SCRATCH0, line, scope);
                    self.push(
                        MInst::Store {
                            addr: MAddr::Indirect { reg: addr_reg },
                            src,
                        },
                        line,
                        scope,
                        true,
                    );
                }
                Op::AddrGlobal { dst, global } => {
                    let (reg, spill) = self.dest(*dst);
                    self.push(
                        MInst::Lea {
                            dst: reg,
                            addr: MAddr::Global {
                                global: global.0 as u32,
                                index: None,
                                disp: 0,
                            },
                        },
                        line,
                        scope,
                        true,
                    );
                    self.finish_dest(spill, reg, line, scope);
                }
                Op::AddrSlot { dst, slot } => {
                    let (reg, spill) = self.dest(*dst);
                    self.push(
                        MInst::Lea {
                            dst: reg,
                            addr: MAddr::Frame { slot: slot.0 },
                        },
                        line,
                        scope,
                        true,
                    );
                    self.finish_dest(spill, reg, line, scope);
                }
                Op::Jump(l) => {
                    self.fixups.push((self.code.len(), l.0));
                    self.push(MInst::Jump { target: 0 }, line, scope, true);
                }
                Op::BranchZero { cond, target } => {
                    let reg = self.value_in_reg(*cond, SCRATCH1, line, scope);
                    self.fixups.push((self.code.len(), target.0));
                    self.push(
                        MInst::BranchZero {
                            cond: reg,
                            target: 0,
                        },
                        line,
                        scope,
                        true,
                    );
                }
                Op::BranchNonZero { cond, target } => {
                    let reg = self.value_in_reg(*cond, SCRATCH1, line, scope);
                    self.fixups.push((self.code.len(), target.0));
                    self.push(
                        MInst::BranchNonZero {
                            cond: reg,
                            target: 0,
                        },
                        line,
                        scope,
                        true,
                    );
                }
                Op::Call { dst, callee, args } => {
                    let arg_ops: Vec<Operand> =
                        args.iter().map(|a| self.call_operand(*a)).collect();
                    let ret = dst.map(|d| self.dest(d));
                    self.push(
                        MInst::Call {
                            target: CallTarget::Function(callee.0 as u32),
                            args: arg_ops,
                            ret: ret.map(|(r, _)| r),
                        },
                        line,
                        scope,
                        true,
                    );
                    if let Some((reg, spill)) = ret {
                        self.finish_dest(spill, reg, line, scope);
                    }
                }
                Op::CallSink { args } => {
                    let arg_ops: Vec<Operand> =
                        args.iter().map(|a| self.call_operand(*a)).collect();
                    self.push(
                        MInst::Call {
                            target: CallTarget::Sink,
                            args: arg_ops,
                            ret: None,
                        },
                        line,
                        scope,
                        true,
                    );
                }
                Op::Ret { value } => {
                    let v = value.map(|val| self.operand(val, SCRATCH1, line, scope));
                    self.push(MInst::Ret { value: v }, line, scope, true);
                }
            }
            // Make sure the first machine instruction of the IR instruction
            // carries the statement flag; helpers may already have emitted
            // spill loads flagged as non-statements, which is fine.
            let _ = start;
        }
    }

    /// Operand for a call argument: spilled temps are passed as frame-slot
    /// operands so that several spilled arguments do not fight over the
    /// scratch registers.
    fn call_operand(&mut self, value: Value) -> Operand {
        match value {
            Value::Const(c) => Operand::Imm(c),
            Value::Temp(t) => match self.alloc.get(&t) {
                Some(Alloc::Reg(r)) => Operand::Reg(*r),
                Some(Alloc::Spill(slot)) => Operand::Slot(*slot),
                None => Operand::Imm(0),
            },
        }
    }

    fn global_addr(
        &mut self,
        global: holes_minic::ast::GlobalId,
        index: Option<Value>,
        line: u32,
        scope: ScopeId,
    ) -> MAddr {
        match index {
            None => MAddr::Global {
                global: global.0 as u32,
                index: None,
                disp: 0,
            },
            Some(Value::Const(c)) => MAddr::Global {
                global: global.0 as u32,
                index: None,
                disp: c.max(0) as u32,
            },
            Some(v) => {
                let reg = self.value_in_reg(v, SCRATCH1, line, scope);
                MAddr::Global {
                    global: global.0 as u32,
                    index: Some(reg),
                    disp: 0,
                }
            }
        }
    }

    fn lower_dbg_loc(&self, loc: DbgLoc) -> Location {
        match loc {
            DbgLoc::Value(Value::Const(c)) => Location::ConstValue(c),
            DbgLoc::Value(Value::Temp(t)) => match self.alloc.get(&t) {
                Some(Alloc::Reg(r)) => Location::Register(*r),
                Some(Alloc::Spill(slot)) => Location::FrameSlot(*slot),
                None => Location::Empty,
            },
            DbgLoc::Slot(SlotId(s)) => Location::FrameSlot(s),
            DbgLoc::Undef => Location::Empty,
        }
    }

    fn apply_fixups(&mut self) {
        for (inst_index, label) in std::mem::take(&mut self.fixups) {
            let target = self
                .label_positions
                .get(&label)
                .copied()
                .unwrap_or(self.code.len() as u32);
            match &mut self.code[inst_index] {
                MInst::Jump { target: t }
                | MInst::BranchZero { target: t, .. }
                | MInst::BranchNonZero { target: t, .. } => *t = target,
                _ => {}
            }
        }
    }
}

/// Build the DIE tree from the per-function artifacts. Shared by every
/// backend: the emitted DIE structure (subprograms, scopes, variable DIEs
/// and their attribute order) is a pure function of the IR and the
/// backend-neutral [`DebugArtifacts`], so two backends lowering the same IR
/// differ only in the location descriptions inside their location lists.
pub(crate) fn emit_debug_info(
    source: &Program,
    ir: &IrProgram,
    artifacts: &[DebugArtifacts],
    globals: &[GlobalSlot],
    source_name: &str,
) -> DebugInfo {
    let mut info = DebugInfo::new(source_name);
    // Global variable DIEs.
    for (gi, global) in source.globals.iter().enumerate() {
        let die = info.add_die(info.root(), DieTag::Variable);
        info.set_attr(die, Attr::Name, AttrValue::Text(global.name.clone()));
        info.set_attr(die, Attr::External, AttrValue::Flag(true));
        let address = holes_machine::isa::global_base_address(globals, gi as u32) as u64;
        info.set_attr(
            die,
            Attr::Location,
            AttrValue::LocList(vec![LocListEntry::new(
                0,
                u64::MAX,
                Location::GlobalAddress(address),
            )]),
        );
    }
    // Phase A: subprogram DIEs for every function.
    let mut subprograms: Vec<DieId> = Vec::with_capacity(ir.functions.len());
    for (fi, func) in ir.functions.iter().enumerate() {
        let artifact = &artifacts[fi];
        let die = info.add_die(info.root(), DieTag::Subprogram);
        info.set_attr(die, Attr::Name, AttrValue::Text(func.name.clone()));
        let (lo, hi) = artifact.pc_range();
        info.set_attr(die, Attr::LowPc, AttrValue::Addr(lo));
        info.set_attr(die, Attr::HighPc, AttrValue::Addr(hi));
        info.set_attr(
            die,
            Attr::DeclLine,
            AttrValue::Unsigned(func.decl_line as u64),
        );
        subprograms.push(die);
    }
    // Phase B: scopes and variables.
    for (fi, func) in ir.functions.iter().enumerate() {
        let artifact = &artifacts[fi];
        for row in &artifact.line_rows {
            info.line_table.push(*row);
        }
        let subprogram = subprograms[fi];
        let base = artifact.base_address;
        let end = base + artifact.code_len as u64;
        // Scope DIEs.
        let mut scope_dies: Vec<DieId> = vec![subprogram];
        for (si, scope) in func.scopes.iter().enumerate().skip(1) {
            let range = scope_range(artifact, ScopeId(si as u32), base);
            let (parent, tag, origin) = match scope {
                ScopeKind::Function => (info.root(), DieTag::LexicalBlock, None),
                ScopeKind::Block { parent } => (
                    scope_dies
                        .get(parent.0 as usize)
                        .copied()
                        .unwrap_or(subprogram),
                    DieTag::LexicalBlock,
                    None,
                ),
                ScopeKind::Inlined { parent, callee, .. } => (
                    scope_dies
                        .get(parent.0 as usize)
                        .copied()
                        .unwrap_or(subprogram),
                    DieTag::InlinedSubroutine,
                    Some(*callee),
                ),
            };
            let die = info.add_die(parent, tag);
            if let Some((lo, hi)) = range {
                info.set_attr(die, Attr::LowPc, AttrValue::Addr(lo));
                info.set_attr(die, Attr::HighPc, AttrValue::Addr(hi));
            }
            if let ScopeKind::Inlined {
                call_line,
                callee_name,
                ..
            } = scope
            {
                info.set_attr(die, Attr::CallLine, AttrValue::Unsigned(*call_line as u64));
                info.set_attr(die, Attr::Name, AttrValue::Text(callee_name.clone()));
            }
            if let Some(origin) = origin {
                info.set_attr(
                    die,
                    Attr::AbstractOrigin,
                    AttrValue::Ref(subprograms[origin.0]),
                );
            }
            scope_dies.push(die);
        }
        // Variable DIEs with their location lists.
        for (vi, var) in func.vars.iter().enumerate() {
            if var.suppress_die {
                continue;
            }
            let var_id = DebugVarId(vi as u32);
            let parent = scope_dies
                .get(var.scope.0 as usize)
                .copied()
                .unwrap_or(subprogram);
            let tag = if var.is_param {
                DieTag::FormalParameter
            } else {
                DieTag::Variable
            };
            let die = info.add_die(parent, tag);
            info.set_attr(die, Attr::Name, AttrValue::Text(var.name.clone()));
            info.set_attr(
                die,
                Attr::DeclLine,
                AttrValue::Unsigned(var.decl_line as u64),
            );
            let events: Vec<(usize, Location)> = artifact
                .bindings
                .iter()
                .filter(|(_, v, _)| *v == var_id)
                .map(|(i, _, loc)| (*i, *loc))
                .collect();
            if events.is_empty() {
                // No binding at all: the DIE stays without location (hollow).
                continue;
            }
            let single_const = events.len() == 1 && matches!(events[0].1, Location::ConstValue(_));
            let inlined_scope = matches!(
                func.scopes.get(var.scope.0 as usize),
                Some(ScopeKind::Inlined { .. })
            );
            if single_const && !inlined_scope {
                if let Location::ConstValue(c) = events[0].1 {
                    info.set_attr(die, Attr::ConstValue, AttrValue::Signed(c));
                }
                continue;
            }
            if single_const && inlined_scope {
                // Inlined constants: the location lives only in the abstract
                // origin (legitimate DWARF; the lldb-like debugger mishandles
                // it, reproducing the paper's lldb bug 50076).
                if let ScopeKind::Inlined { callee, .. } = &func.scopes[var.scope.0 as usize] {
                    let origin_sub = subprograms[callee.0];
                    if let Some(origin_var) = info.find_variable(origin_sub, &var.name, base) {
                        info.set_attr(die, Attr::AbstractOrigin, AttrValue::Ref(origin_var));
                        if let Location::ConstValue(c) = events[0].1 {
                            info.set_attr(origin_var, Attr::ConstValue, AttrValue::Signed(c));
                            info.remove_attr(origin_var, Attr::Location);
                        }
                        continue;
                    }
                }
                if let Location::ConstValue(c) = events[0].1 {
                    info.set_attr(die, Attr::ConstValue, AttrValue::Signed(c));
                }
                continue;
            }
            let mut entries = Vec::with_capacity(events.len());
            for (pos, (start, loc)) in events.iter().enumerate() {
                let range_end = events
                    .get(pos + 1)
                    .map(|(next, _)| base + *next as u64)
                    .unwrap_or(end);
                entries.push(LocListEntry::new(base + *start as u64, range_end, *loc));
            }
            info.set_attr(die, Attr::Location, AttrValue::LocList(entries));
        }
    }
    info
}

fn scope_range(artifact: &DebugArtifacts, scope: ScopeId, base: u64) -> Option<(u64, u64)> {
    let mut lo = None;
    let mut hi = None;
    for (i, s) in artifact.inst_scopes.iter().enumerate() {
        if *s == scope {
            let addr = base + i as u64;
            lo = Some(lo.map_or(addr, |l: u64| l.min(addr)));
            hi = Some(hi.map_or(addr + 1, |h: u64| h.max(addr + 1)));
        }
    }
    Some((lo?, hi?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use holes_machine::Machine;
    use holes_minic::ast::{BinOp, Expr, LValue, Stmt, Ty, VarRef};
    use holes_minic::build::ProgramBuilder;
    use holes_minic::interp::Interpreter;

    fn build_and_run(program: &Program) -> (holes_machine::RunOutcome, DebugInfo) {
        let ir = lower_program(program);
        let (machine, debug) = codegen(program, &ir, "test.c");
        let outcome = Machine::new(&machine).run_to_completion().expect("runs");
        (outcome, debug)
    }

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let arr = b.global_array("a", Ty::I32, false, vec![3], vec![5, 6, 7]);
        let main = b.function("main", Ty::I32);
        let x = b.local(main, "x", Ty::I32);
        let i = b.local(main, "i", Ty::I32);
        b.push(main, Stmt::decl(x, Some(Expr::lit(4))));
        b.push(
            main,
            Stmt::for_loop(
                Some(Stmt::assign(LValue::local(i), Expr::lit(0))),
                Some(Expr::binary(BinOp::Lt, Expr::local(i), Expr::lit(3))),
                Some(Stmt::assign(
                    LValue::local(i),
                    Expr::binary(BinOp::Add, Expr::local(i), Expr::lit(1)),
                )),
                vec![Stmt::assign(
                    LValue::global(g),
                    Expr::binary(
                        BinOp::Add,
                        Expr::global(g),
                        Expr::index(VarRef::Global(arr), vec![Expr::local(i)]),
                    ),
                )],
            ),
        );
        b.push(
            main,
            Stmt::call_opaque(vec![Expr::local(x), Expr::local(i)]),
        );
        b.push(main, Stmt::ret(Some(Expr::global(g))));
        let mut p = b.finish();
        p.assign_lines();
        p
    }

    #[test]
    fn unoptimized_codegen_matches_interpreter() {
        let p = sample_program();
        let reference = Interpreter::new(&p).run().expect("interpreter runs");
        let (outcome, _) = build_and_run(&p);
        assert!(outcome.matches(&reference), "{outcome:?} vs {reference:?}");
        assert_eq!(outcome.return_value, 18);
    }

    #[test]
    fn line_table_covers_every_statement_line() {
        let mut p = sample_program();
        let map = p.assign_lines();
        let ir = lower_program(&p);
        let (_, debug) = codegen(&p, &ir, "test.c");
        let main = p.main();
        let steppable = debug.line_table.steppable_lines();
        for line in map.lines_of(main) {
            assert!(
                steppable.contains(line),
                "line {line} missing from line table"
            );
        }
    }

    #[test]
    fn variables_have_dies_with_locations() {
        let p = sample_program();
        let (_, debug) = build_and_run(&p);
        let sub = debug
            .iter()
            .find(|(_, d)| d.tag == DieTag::Subprogram && d.name() == Some("main"))
            .map(|(id, _)| id)
            .expect("main subprogram exists");
        let (lo, _) = debug.die(sub).pc_range().unwrap();
        for name in ["x", "i"] {
            let var = debug.find_variable(sub, name, lo).expect("variable die");
            let die = debug.die(var);
            assert!(
                die.attr(Attr::ConstValue).is_some() || die.attr(Attr::Location).is_some(),
                "{name} has neither const value nor location"
            );
        }
    }

    #[test]
    fn globals_have_external_dies() {
        let p = sample_program();
        let (_, debug) = build_and_run(&p);
        let globals: Vec<_> = debug
            .iter()
            .filter(|(_, d)| d.tag == DieTag::Variable && d.attr(Attr::External).is_some())
            .collect();
        assert_eq!(globals.len(), 2);
    }

    #[test]
    fn functions_with_many_locals_spill_but_stay_correct() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I64, false, vec![0]);
        let main = b.function("main", Ty::I32);
        let mut sum = Expr::lit(0);
        for i in 0..20 {
            let v = b.local(main, &format!("v{i}"), Ty::I64);
            b.push(main, Stmt::decl(v, Some(Expr::lit(i as i64))));
            sum = Expr::binary(BinOp::Add, sum, Expr::local(v));
        }
        b.push(main, Stmt::assign(LValue::global(g), sum));
        b.push(main, Stmt::ret(Some(Expr::global(g))));
        let mut p = b.finish();
        p.assign_lines();
        let reference = Interpreter::new(&p).run().unwrap();
        let (outcome, _) = build_and_run(&p);
        assert!(outcome.matches(&reference));
        assert_eq!(outcome.return_value, (0..20).sum::<i64>());
    }

    #[test]
    fn pointer_programs_compile_correctly() {
        let mut b = ProgramBuilder::new();
        let g = b.global("b", Ty::I32, false, vec![5]);
        let out = b.global("out", Ty::I32, false, vec![0]);
        let main = b.function("main", Ty::I32);
        let x = b.local(main, "x", Ty::I32);
        let ptr = b.local(main, "p", Ty::Ptr(&Ty::I32));
        b.push(main, Stmt::decl(x, Some(Expr::lit(9))));
        b.push(main, Stmt::decl(ptr, Some(Expr::addr_of(VarRef::Local(x)))));
        b.push(
            main,
            Stmt::assign(LValue::Deref(VarRef::Local(ptr)), Expr::lit(11)),
        );
        b.push(
            main,
            Stmt::assign(LValue::local(ptr), Expr::addr_of(VarRef::Global(g))),
        );
        b.push(
            main,
            Stmt::assign(
                LValue::global(out),
                Expr::binary(BinOp::Add, Expr::deref(Expr::local(ptr)), Expr::local(x)),
            ),
        );
        b.push(main, Stmt::ret(Some(Expr::global(out))));
        let mut p = b.finish();
        p.assign_lines();
        let reference = Interpreter::new(&p).run().unwrap();
        let (outcome, _) = build_and_run(&p);
        assert!(outcome.matches(&reference), "{outcome:?} vs {reference:?}");
        assert_eq!(outcome.return_value, 16);
    }

    #[test]
    fn internal_calls_compile_correctly() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let callee = b.function("twice", Ty::I32);
        let p0 = b.param(callee, "p0", Ty::I32);
        b.push(
            callee,
            Stmt::ret(Some(Expr::binary(
                BinOp::Mul,
                Expr::local(p0),
                Expr::lit(2),
            ))),
        );
        let main = b.function("main", Ty::I32);
        b.push(
            main,
            Stmt::assign(LValue::global(g), Expr::call(callee, vec![Expr::lit(21)])),
        );
        b.push(main, Stmt::ret(Some(Expr::global(g))));
        let mut p = b.finish();
        p.assign_lines();
        let reference = Interpreter::new(&p).run().unwrap();
        let (outcome, _) = build_and_run(&p);
        assert!(outcome.matches(&reference));
        assert_eq!(outcome.return_value, 42);
    }
}
