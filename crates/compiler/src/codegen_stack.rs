//! Code generation for the stack VM backend.
//!
//! The stack backend lowers the *same* optimized IR as the register backend
//! ([`crate::codegen`]) but onto an operand-stack ISA with a small register
//! file: the first few parameters and temps get one of the stack VM's
//! general registers, and **everything else spills to a frame slot**. That
//! register pressure is the point — spilled values can only be described to
//! the debugger with the location classes the register ISA never needs:
//!
//! * spill slots → [`Location::FrameBase`] (stack-relative, the model of
//!   `DW_OP_fbreg`),
//! * address-taken locals → [`Location::Composite`] anchored to the frame
//!   pointer ([`FP_REG`]), the model of `DW_OP_breg<N> + DW_OP_deref`.
//!
//! Debug-information *structure* (DIEs, scopes, line-table policy) is
//! emitted by the shared emitter in [`crate::codegen`], so the two
//! backends produce structurally identical DWARF that differs only in
//! location payloads — which is what makes cross-backend differential
//! testing of debugger traces meaningful.
//!
//! The backend also hosts the spill-loss defect class
//! ([`crate::defects::stack_catalogue`]): when active, bindings that would
//! be described as `FrameBase` are emitted as empty locations instead —
//! the "variable went missing once spilled" holes the register backend
//! cannot express.

use std::collections::HashMap;

use holes_debuginfo::{DebugInfo, LineRow, Location};
use holes_machine::stack::{SFunction, SInst, StackProgram, FP_REG};
use holes_machine::CallTarget;
use holes_minic::ast::Program;

use crate::codegen::{emit_debug_info, lower_globals, DebugArtifacts};
use crate::config::CompilerConfig;
use crate::defects::spill_loss_victims;
use crate::ir::{DbgLoc, DebugVarId, IrFunction, IrProgram, Op, ScopeId, SlotId, Temp, Value};

/// Registers available to the allocator (everything but the frame pointer).
const ALLOCATABLE: u8 = FP_REG;

/// Where a temp lives in the stack backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SAlloc {
    /// One of the small register file's general registers.
    Reg(u8),
    /// A frame slot (the spill path most temps take).
    Slot(u32),
}

/// Generate stack-VM code and debug information for a lowered (and possibly
/// optimized) program. Returns the defect identifiers of spill-loss defects
/// that actually dropped at least one binding (for the pipeline report).
pub fn codegen_stack(
    source: &Program,
    ir: &IrProgram,
    source_name: &str,
    config: &CompilerConfig,
) -> (StackProgram, DebugInfo, Vec<&'static str>) {
    let globals = lower_globals(source);
    let entry = source.main().0 as u32;

    let mut dropped_any = false;
    let (functions, artifacts): (Vec<SFunction>, Vec<DebugArtifacts>) = ir
        .functions
        .iter()
        .enumerate()
        .map(|(index, func)| {
            let emitter = StackEmitter::new(func, index, config);
            let (function, artifact, dropped) = emitter.emit();
            dropped_any |= dropped;
            (function, artifact)
        })
        .unzip();

    let program = StackProgram {
        functions,
        globals,
        entry,
    };
    let debug = emit_debug_info(source, ir, &artifacts, &program.globals, source_name);
    let applied = if dropped_any {
        crate::defects::stack_catalogue(config.personality)
            .iter()
            .filter(|d| d.active_in(config))
            .map(|d| d.id)
            .collect()
    } else {
        Vec::new()
    };
    (program, debug, applied)
}

struct StackEmitter<'f> {
    func: &'f IrFunction,
    alloc: HashMap<Temp, SAlloc>,
    /// Next free general register (registers are assigned permanently —
    /// the file is small enough that reuse would only complicate the
    /// location story).
    next_reg: u8,
    /// Next free spill slot.
    next_spill: u32,
    /// Variables whose spilled bindings lose their location (the active
    /// spill-loss defect's selection; empty when defects are disabled).
    victims: Vec<DebugVarId>,
    dropped: bool,
    code: Vec<SInst>,
    inst_scopes: Vec<ScopeId>,
    line_rows: Vec<LineRow>,
    bindings: Vec<(usize, DebugVarId, Location)>,
    label_positions: HashMap<u32, u32>,
    fixups: Vec<(usize, u32)>,
    base_address: u64,
    /// Whether the next emitted instruction starts an IR instruction (and
    /// so carries the line table's `is_stmt` flag).
    stmt_pending: bool,
}

impl<'f> StackEmitter<'f> {
    fn new(func: &'f IrFunction, index: usize, config: &CompilerConfig) -> StackEmitter<'f> {
        StackEmitter {
            func,
            alloc: HashMap::new(),
            next_reg: (func.param_temps.len() as u8).min(ALLOCATABLE),
            next_spill: func.slots + func.param_temps.len() as u32,
            victims: spill_loss_victims(config, func),
            dropped: false,
            code: Vec::new(),
            inst_scopes: Vec::new(),
            line_rows: Vec::new(),
            bindings: Vec::new(),
            label_positions: HashMap::new(),
            fixups: Vec::new(),
            base_address: StackProgram::default_base_address(index),
            stmt_pending: false,
        }
    }

    fn emit(mut self) -> (SFunction, DebugArtifacts, bool) {
        self.allocate();
        self.emit_code();
        self.apply_fixups();
        let function = SFunction {
            name: self.func.name.clone(),
            code: self.code,
            frame_slots: self.next_spill,
            param_base: self.func.slots,
            base_address: self.base_address,
        };
        let artifacts = DebugArtifacts {
            base_address: self.base_address,
            code_len: function.code.len(),
            line_rows: self.line_rows,
            inst_scopes: self.inst_scopes,
            bindings: self.bindings,
            frame_base: None,
        };
        (function, artifacts, self.dropped)
    }

    /// Assign every temp a permanent home: parameters claim the general
    /// registers first (in calling-convention order; excess parameters use
    /// their machine-deposited parameter slots), then the remaining
    /// registers go to the first-seen temps, and everything after that
    /// spills. First-seen order over the instruction stream keeps the
    /// assignment deterministic.
    fn allocate(&mut self) {
        for (i, param) in self.func.param_temps.iter().enumerate() {
            let home = if i < ALLOCATABLE as usize {
                SAlloc::Reg(i as u8)
            } else {
                SAlloc::Slot(self.func.slots + i as u32)
            };
            self.alloc.insert(*param, home);
        }
        let insts: Vec<Temp> = {
            let mut seen = Vec::new();
            for inst in &self.func.insts {
                for use_ in inst.op.uses() {
                    if let Value::Temp(t) = use_ {
                        seen.push(t);
                    }
                }
                if let Some(d) = inst.op.def() {
                    seen.push(d);
                }
                if let Op::DbgValue {
                    loc: DbgLoc::Value(Value::Temp(t)),
                    ..
                } = inst.op
                {
                    seen.push(t);
                }
            }
            seen
        };
        for temp in insts {
            self.ensure_home(temp);
        }
    }

    fn ensure_home(&mut self, temp: Temp) {
        if self.alloc.contains_key(&temp) {
            return;
        }
        let home = if self.next_reg < ALLOCATABLE {
            let reg = self.next_reg;
            self.next_reg += 1;
            SAlloc::Reg(reg)
        } else {
            let slot = self.next_spill;
            self.next_spill += 1;
            SAlloc::Slot(slot)
        };
        self.alloc.insert(temp, home);
    }

    fn push_inst(&mut self, inst: SInst, line: u32, scope: ScopeId) {
        let address = self.base_address + self.code.len() as u64;
        self.line_rows.push(LineRow {
            address,
            line,
            is_stmt: self.stmt_pending,
        });
        self.stmt_pending = false;
        self.code.push(inst);
        self.inst_scopes.push(scope);
    }

    /// Push a value onto the operand stack.
    fn push_value(&mut self, value: Value, line: u32, scope: ScopeId) {
        let inst = match value {
            Value::Const(c) => SInst::PushImm(c),
            Value::Temp(t) => match self.alloc.get(&t) {
                Some(SAlloc::Reg(r)) => SInst::PushReg(*r),
                Some(SAlloc::Slot(s)) => SInst::PushSlot(*s),
                None => SInst::PushImm(0),
            },
        };
        self.push_inst(inst, line, scope);
    }

    /// Pop the operand-stack top into a temp's home.
    fn pop_temp(&mut self, temp: Temp, line: u32, scope: ScopeId) {
        let inst = match self.alloc.get(&temp) {
            Some(SAlloc::Reg(r)) => SInst::PopReg(*r),
            Some(SAlloc::Slot(s)) => SInst::PopSlot(*s),
            None => SInst::Drop,
        };
        self.push_inst(inst, line, scope);
    }

    fn lower_dbg_loc(&mut self, var: DebugVarId, loc: DbgLoc) -> Location {
        match loc {
            DbgLoc::Value(Value::Const(c)) => Location::ConstValue(c),
            DbgLoc::Value(Value::Temp(t)) => match self.alloc.get(&t) {
                Some(SAlloc::Reg(r)) => Location::Register(*r),
                Some(SAlloc::Slot(slot)) => {
                    if self.victims.contains(&var) {
                        // The spill-loss defect: the reload tracker forgot
                        // where the value went.
                        self.dropped = true;
                        Location::Empty
                    } else {
                        Location::FrameBase {
                            offset: *slot as i32,
                        }
                    }
                }
                None => Location::Empty,
            },
            DbgLoc::Slot(SlotId(s)) => Location::Composite {
                reg: FP_REG,
                offset: i64::from(s) * 8,
                deref: true,
            },
            DbgLoc::Undef => Location::Empty,
        }
    }

    fn emit_code(&mut self) {
        for inst in &self.func.insts {
            let line = inst.line;
            let scope = inst.scope;
            self.stmt_pending = true;
            match &inst.op {
                Op::Label(l) => {
                    self.label_positions.insert(l.0, self.code.len() as u32);
                }
                Op::DbgValue { var, loc } => {
                    let location = self.lower_dbg_loc(*var, *loc);
                    // Coalesce bindings landing on the same machine address
                    // (same policy as the register backend: only the last
                    // can take effect).
                    self.bindings
                        .retain(|(index, v, _)| !(*index == self.code.len() && v == var));
                    self.bindings.push((self.code.len(), *var, location));
                }
                Op::Nop => {}
                Op::Copy { dst, src } => {
                    self.push_value(*src, line, scope);
                    self.pop_temp(*dst, line, scope);
                }
                Op::Un { dst, op, src } => {
                    self.push_value(*src, line, scope);
                    self.push_inst(SInst::Un(*op), line, scope);
                    self.pop_temp(*dst, line, scope);
                }
                Op::Bin { dst, op, lhs, rhs } => {
                    self.push_value(*lhs, line, scope);
                    self.push_value(*rhs, line, scope);
                    self.push_inst(SInst::Bin(*op), line, scope);
                    self.pop_temp(*dst, line, scope);
                }
                Op::Trunc {
                    dst,
                    src,
                    bits,
                    signed,
                } => {
                    self.push_value(*src, line, scope);
                    self.push_inst(
                        SInst::Trunc {
                            bits: *bits,
                            signed: *signed,
                        },
                        line,
                        scope,
                    );
                    self.pop_temp(*dst, line, scope);
                }
                Op::LoadGlobal {
                    dst, global, index, ..
                } => {
                    let indexed = self.push_index(*index, line, scope);
                    self.push_inst(
                        SInst::LoadGlobal {
                            global: global.0 as u32,
                            indexed,
                        },
                        line,
                        scope,
                    );
                    self.pop_temp(*dst, line, scope);
                }
                Op::StoreGlobal {
                    global,
                    index,
                    value,
                    ..
                } => {
                    let indexed = self.push_index(*index, line, scope);
                    self.push_value(*value, line, scope);
                    self.push_inst(
                        SInst::StoreGlobal {
                            global: global.0 as u32,
                            indexed,
                        },
                        line,
                        scope,
                    );
                }
                Op::LoadSlot { dst, slot } => {
                    self.push_inst(SInst::PushSlot(slot.0), line, scope);
                    self.pop_temp(*dst, line, scope);
                }
                Op::StoreSlot { slot, value } => {
                    self.push_value(*value, line, scope);
                    self.push_inst(SInst::PopSlot(slot.0), line, scope);
                }
                Op::LoadPtr { dst, addr } => {
                    self.push_value(*addr, line, scope);
                    self.push_inst(SInst::LoadInd, line, scope);
                    self.pop_temp(*dst, line, scope);
                }
                Op::StorePtr { addr, value } => {
                    self.push_value(*addr, line, scope);
                    self.push_value(*value, line, scope);
                    self.push_inst(SInst::StoreInd, line, scope);
                }
                Op::AddrGlobal { dst, global } => {
                    self.push_inst(
                        SInst::PushGlobalAddr {
                            global: global.0 as u32,
                        },
                        line,
                        scope,
                    );
                    self.pop_temp(*dst, line, scope);
                }
                Op::AddrSlot { dst, slot } => {
                    self.push_inst(SInst::PushSlotAddr(slot.0), line, scope);
                    self.pop_temp(*dst, line, scope);
                }
                Op::Jump(l) => {
                    self.fixups.push((self.code.len(), l.0));
                    self.push_inst(SInst::Jump { target: 0 }, line, scope);
                }
                Op::BranchZero { cond, target } => {
                    self.push_value(*cond, line, scope);
                    self.fixups.push((self.code.len(), target.0));
                    self.push_inst(SInst::BranchZero { target: 0 }, line, scope);
                }
                Op::BranchNonZero { cond, target } => {
                    self.push_value(*cond, line, scope);
                    self.fixups.push((self.code.len(), target.0));
                    self.push_inst(SInst::BranchNonZero { target: 0 }, line, scope);
                }
                Op::Call { dst, callee, args } => {
                    for arg in args {
                        self.push_value(*arg, line, scope);
                    }
                    self.push_inst(
                        SInst::Call {
                            target: CallTarget::Function(callee.0 as u32),
                            argc: args.len() as u32,
                            has_ret: dst.is_some(),
                        },
                        line,
                        scope,
                    );
                    if let Some(dst) = dst {
                        self.pop_temp(*dst, line, scope);
                    }
                }
                Op::CallSink { args } => {
                    for arg in args {
                        self.push_value(*arg, line, scope);
                    }
                    self.push_inst(
                        SInst::Call {
                            target: CallTarget::Sink,
                            argc: args.len() as u32,
                            has_ret: false,
                        },
                        line,
                        scope,
                    );
                }
                Op::Ret { value } => {
                    if let Some(v) = value {
                        self.push_value(*v, line, scope);
                    }
                    self.push_inst(
                        SInst::Ret {
                            has_value: value.is_some(),
                        },
                        line,
                        scope,
                    );
                }
            }
        }
    }

    /// Push an optional global element index; returns whether the access is
    /// indexed (constant indices are pushed as immediates, keeping the ISA
    /// to one load/store shape).
    fn push_index(&mut self, index: Option<Value>, line: u32, scope: ScopeId) -> bool {
        match index {
            None => false,
            Some(value) => {
                self.push_value(value, line, scope);
                true
            }
        }
    }

    fn apply_fixups(&mut self) {
        for (inst_index, label) in std::mem::take(&mut self.fixups) {
            let target = self
                .label_positions
                .get(&label)
                .copied()
                .unwrap_or(self.code.len() as u32);
            match &mut self.code[inst_index] {
                SInst::Jump { target: t }
                | SInst::BranchZero { target: t }
                | SInst::BranchNonZero { target: t } => *t = target,
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BackendKind, OptLevel, Personality};
    use crate::lower::lower_program;
    use holes_machine::StackMachine;
    use holes_minic::interp::Interpreter;
    use holes_progen::ProgramGenerator;

    fn stack_config() -> CompilerConfig {
        CompilerConfig::new(Personality::Ccg, OptLevel::O0).with_backend(BackendKind::Stack)
    }

    #[test]
    fn unoptimized_stack_codegen_matches_the_interpreter() {
        for seed in 0..10u64 {
            let generated = ProgramGenerator::from_seed(seed).generate();
            let reference = Interpreter::new(&generated.program).run().expect("runs");
            let ir = lower_program(&generated.program);
            let (program, _, applied) =
                codegen_stack(&generated.program, &ir, "t.c", &stack_config());
            assert!(applied.is_empty(), "O0 must not apply spill defects");
            let outcome = StackMachine::new(&program)
                .run_to_completion()
                .unwrap_or_else(|e| panic!("seed {seed}: stack execution failed: {e}"));
            assert!(
                outcome.matches(&reference),
                "seed {seed}: diverges\n{outcome:?}\n{reference:?}"
            );
        }
    }

    #[test]
    fn spilled_bindings_use_frame_base_locations() {
        // A program with more live locals than the stack VM has registers
        // must describe at least one variable frame-base-relative.
        let generated = ProgramGenerator::from_seed(3).generate();
        let ir = lower_program(&generated.program);
        let config = stack_config().without_defects();
        let (_, debug, _) = codegen_stack(&generated.program, &ir, "t.c", &config);
        let mut frame_base = 0usize;
        let mut composite = 0usize;
        for (_, die) in debug.iter() {
            if let Some(holes_debuginfo::AttrValue::LocList(entries)) =
                die.attr(holes_debuginfo::Attr::Location)
            {
                for entry in entries {
                    match entry.location {
                        Location::FrameBase { .. } => frame_base += 1,
                        Location::Composite { .. } => composite += 1,
                        _ => {}
                    }
                }
            }
        }
        assert!(
            frame_base > 0,
            "no frame-base locations emitted — the register file is too large"
        );
        let _ = composite; // slot-homed locals are program-dependent
    }
}
