//! Compiler configurations: personalities, optimization levels, versions and
//! pass schedules.
//!
//! The paper evaluates two compilation systems (gcc and clang), several
//! optimization levels (`-O0`, `-O1`, `-O2`, `-O3`, `-Og`, `-Os`, `-Oz`) and
//! several releases of each compiler. Our substitutes are two *personalities*
//! with distinct pass pipelines — [`Personality::Ccg`] (gcc-like) and
//! [`Personality::Lcc`] (clang-like) — a matching set of levels, and a list
//! of version profiles per personality. Versions differ in which injected
//! defects are present (see [`crate::defects`]) and, mildly, in which passes
//! are scheduled, reproducing the regression trends of Figure 1 and Table 4.

use std::collections::BTreeSet;

pub use holes_machine::BackendKind;

/// The two compiler personalities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Personality {
    /// The gcc-like personality (`ccg`), debugged with the gdb-like debugger.
    Ccg,
    /// The clang-like personality (`lcc`), debugged with the lldb-like
    /// debugger.
    Lcc,
}

impl Personality {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Personality::Ccg => "ccg",
            Personality::Lcc => "lcc",
        }
    }

    /// Version names, oldest first. The last two entries are the paper's
    /// "trunk" and the patched / partially-fixed variant used by the
    /// regression study (§5.4).
    pub fn version_names(self) -> &'static [&'static str] {
        match self {
            Personality::Ccg => &["4.8", "6.5", "8.4", "10.3", "trunk", "patched"],
            Personality::Lcc => &["5.0", "7.0", "9.0", "11.1", "trunk", "trunk-star"],
        }
    }

    /// Index of the trunk version.
    pub fn trunk(self) -> usize {
        4
    }

    /// The optimization levels this personality supports, mirroring the
    /// paper's setup (`-O1` is an alias of `-Og` for clang and is therefore
    /// not listed for the lcc personality).
    pub fn levels(self) -> &'static [OptLevel] {
        match self {
            Personality::Ccg => &[
                OptLevel::Og,
                OptLevel::O1,
                OptLevel::O2,
                OptLevel::O3,
                OptLevel::Os,
                OptLevel::Oz,
            ],
            Personality::Lcc => &[
                OptLevel::Og,
                OptLevel::O2,
                OptLevel::O3,
                OptLevel::Os,
                OptLevel::Oz,
            ],
        }
    }
}

impl std::fmt::Display for Personality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Failed parse of a [`Personality`], [`OptLevel`], or version name from a
/// command-line flag or a report file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError {
    what: &'static str,
    input: String,
}

impl ParseConfigError {
    fn new(what: &'static str, input: &str) -> ParseConfigError {
        ParseConfigError {
            what,
            input: input.to_owned(),
        }
    }
}

impl std::fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown {}: `{}`", self.what, self.input)
    }
}

impl std::error::Error for ParseConfigError {}

impl std::str::FromStr for Personality {
    type Err = ParseConfigError;

    /// Parse a personality name as spelled in reports and CLI flags
    /// (`ccg` or `lcc`, case-insensitive).
    fn from_str(s: &str) -> Result<Personality, ParseConfigError> {
        match s.to_ascii_lowercase().as_str() {
            "ccg" => Ok(Personality::Ccg),
            "lcc" => Ok(Personality::Lcc),
            _ => Err(ParseConfigError::new("personality", s)),
        }
    }
}

impl Personality {
    /// The index of a version by its [`Personality::version_names`] name
    /// (`"trunk"`, `"8.4"`, ...), if that version exists for this
    /// personality.
    pub fn version_index(self, name: &str) -> Option<usize> {
        self.version_names().iter().position(|&v| v == name)
    }
}

/// Optimization levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OptLevel {
    /// No optimization; the debug-information baseline.
    O0,
    /// The debugger-friendly level.
    Og,
    /// Light optimization.
    O1,
    /// Standard optimization.
    O2,
    /// Aggressive optimization.
    O3,
    /// Optimize for size.
    Os,
    /// Optimize for size aggressively.
    Oz,
}

impl OptLevel {
    /// All levels including `O0`.
    pub const ALL: [OptLevel; 7] = [
        OptLevel::O0,
        OptLevel::Og,
        OptLevel::O1,
        OptLevel::O2,
        OptLevel::O3,
        OptLevel::Os,
        OptLevel::Oz,
    ];

    /// The flag spelling (`-O2`, `-Og`, ...).
    pub fn flag(self) -> &'static str {
        match self {
            OptLevel::O0 => "-O0",
            OptLevel::Og => "-Og",
            OptLevel::O1 => "-O1",
            OptLevel::O2 => "-O2",
            OptLevel::O3 => "-O3",
            OptLevel::Os => "-Os",
            OptLevel::Oz => "-Oz",
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.flag())
    }
}

impl std::str::FromStr for OptLevel {
    type Err = ParseConfigError;

    /// Parse an optimization level from its flag spelling, with or without
    /// the `-O` prefix (`-O2`, `O2`, and `2` all parse to [`OptLevel::O2`];
    /// the letter suffixes are case-sensitive, as on real compilers).
    fn from_str(s: &str) -> Result<OptLevel, ParseConfigError> {
        let suffix = s
            .strip_prefix("-O")
            .or_else(|| s.strip_prefix('O'))
            .unwrap_or(s);
        OptLevel::ALL
            .iter()
            .copied()
            .find(|level| &level.flag()[2..] == suffix)
            .ok_or_else(|| ParseConfigError::new("optimization level", s))
    }
}

/// A stable identity hash for a [`CompilerConfig`].
///
/// Equal configurations always produce equal fingerprints: the 64-bit
/// FNV-1a runs over a canonical, length-prefixed encoding of every field
/// that can influence compilation output — personality, version, level,
/// disabled passes, pass budget, and defect disabling. Like any 64-bit
/// digest it is not injective (distinct configurations collide with
/// probability ~2⁻⁶⁴), so exact-identity maps — such as the in-memory
/// artifact cache of `holes_pipeline` — key on the full `CompilerConfig`
/// instead; the fingerprint is for logging and for on-disk cache keys,
/// where it is stable across processes and platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl std::str::FromStr for Fingerprint {
    type Err = ParseConfigError;

    /// Parse a 16-digit hex spelling (case-insensitive; `Display` always
    /// emits lowercase) — the round-trip the on-disk artifact store uses to
    /// validate the fingerprint recorded in each artifact envelope.
    fn from_str(s: &str) -> Result<Fingerprint, ParseConfigError> {
        if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(ParseConfigError::new("fingerprint", s));
        }
        u64::from_str_radix(s, 16)
            .map(Fingerprint)
            .map_err(|_| ParseConfigError::new("fingerprint", s))
    }
}

/// A complete compiler configuration: what the paper would call
/// "compiler X version Y at level Z", plus the triage knobs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompilerConfig {
    /// The personality (pipeline family).
    pub personality: Personality,
    /// Index into [`Personality::version_names`].
    pub version: usize,
    /// Optimization level.
    pub level: OptLevel,
    /// Passes disabled by `-fno-<pass>`-style flags (the gcc-style triage
    /// mechanism of §4.3).
    pub disabled_passes: BTreeSet<String>,
    /// Stop the pipeline after this many passes (the clang
    /// `-opt-bisect-limit`-style triage mechanism of §4.3).
    pub pass_budget: Option<usize>,
    /// Disable every injected defect (used by tests to obtain the
    /// hypothetical defect-free compiler).
    pub disable_defects: bool,
    /// The machine model code is generated for ([`BackendKind::Reg`] by
    /// default). Optimization passes are backend-independent; only the
    /// code-generation lowering, the emitted location descriptions, and the
    /// backend-gated defects differ.
    pub backend: BackendKind,
}

impl CompilerConfig {
    /// Configuration for a personality's trunk version at a level.
    pub fn new(personality: Personality, level: OptLevel) -> CompilerConfig {
        CompilerConfig {
            personality,
            version: personality.trunk(),
            level,
            disabled_passes: BTreeSet::new(),
            pass_budget: None,
            disable_defects: false,
            backend: BackendKind::Reg,
        }
    }

    /// Same configuration with a different version index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range for the personality.
    pub fn with_version(mut self, version: usize) -> CompilerConfig {
        assert!(version < self.personality.version_names().len());
        self.version = version;
        self
    }

    /// Same configuration with a pass disabled.
    pub fn with_disabled_pass(mut self, pass: &str) -> CompilerConfig {
        self.disabled_passes.insert(pass.to_owned());
        self
    }

    /// Same configuration with a pass budget (bisection).
    pub fn with_pass_budget(mut self, budget: usize) -> CompilerConfig {
        self.pass_budget = Some(budget);
        self
    }

    /// Same configuration with all injected defects disabled.
    pub fn without_defects(mut self) -> CompilerConfig {
        self.disable_defects = true;
        self
    }

    /// Same configuration targeting a different backend.
    pub fn with_backend(mut self, backend: BackendKind) -> CompilerConfig {
        self.backend = backend;
        self
    }

    /// The version name.
    pub fn version_name(&self) -> &'static str {
        self.personality.version_names()[self.version]
    }

    /// The ordered pass schedule for this configuration, before applying
    /// `disabled_passes` and `pass_budget` (the pipeline runner applies
    /// those).
    pub fn pass_schedule(&self) -> Vec<&'static str> {
        let mut schedule = base_schedule(self.personality, self.level);
        // Version-specific tweaks.
        match self.personality {
            Personality::Lcc => {
                // Recent lcc releases enable loop removal even at -Og/-Os,
                // mirroring the paper's observation on the latest clang.
                if self.version >= 3
                    && matches!(self.level, OptLevel::Og | OptLevel::Os)
                    && !schedule.contains(&"loop-unroll")
                {
                    if let Some(pos) = schedule.iter().position(|p| *p == "lsr") {
                        schedule.insert(pos, "loop-unroll");
                    }
                }
            }
            Personality::Ccg => {
                // Early ccg releases lacked the early value-range pass.
                if self.version < 2 {
                    schedule.retain(|p| *p != "evrp");
                }
            }
        }
        schedule
    }

    /// The boolean `-fno-<pass>` style flags available for triage at this
    /// configuration: one per scheduled pass.
    pub fn triage_flags(&self) -> Vec<&'static str> {
        self.pass_schedule()
    }

    /// The configuration's stable identity (see [`Fingerprint`]).
    pub fn fingerprint(&self) -> Fingerprint {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut hash = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &byte in bytes {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        eat(&[match self.personality {
            Personality::Ccg => 1,
            Personality::Lcc => 2,
        }]);
        eat(&(self.version as u64).to_le_bytes());
        eat(&[self.level as u8 + 1]);
        match self.pass_budget {
            None => eat(&[0]),
            Some(budget) => {
                eat(&[1]);
                eat(&(budget as u64).to_le_bytes());
            }
        }
        eat(&[u8::from(self.disable_defects)]);
        // BTreeSet iterates in sorted order, so the encoding is canonical;
        // the length prefixes keep pass-name concatenations unambiguous.
        eat(&(self.disabled_passes.len() as u64).to_le_bytes());
        for pass in &self.disabled_passes {
            eat(&(pass.len() as u64).to_le_bytes());
            eat(pass.as_bytes());
        }
        // The backend is encoded only when it is not the default register
        // VM: the default's encoding must stay byte-identical to the
        // pre-backend era, or every existing on-disk artifact store would
        // silently go cold (the pinned-fingerprint test guards this).
        if self.backend != BackendKind::Reg {
            eat(b"backend");
            eat(self.backend.name().as_bytes());
        }
        Fingerprint(hash)
    }

    /// A short human-readable description.
    pub fn describe(&self) -> String {
        let mut text = format!(
            "{} {} {}",
            self.personality.name(),
            self.version_name(),
            self.level.flag()
        );
        if self.backend != BackendKind::Reg {
            text.push_str(&format!(" [{}]", self.backend));
        }
        text
    }
}

fn base_schedule(personality: Personality, level: OptLevel) -> Vec<&'static str> {
    use OptLevel::*;
    match personality {
        Personality::Lcc => match level {
            O0 => vec![],
            Og | O1 => vec![
                "simplifycfg",
                "sroa",
                "instcombine",
                "loop-rotate",
                "lsr",
                "gvn",
                "dce",
                "simplifycfg-late",
            ],
            O2 | O3 => vec![
                "simplifycfg",
                "sroa",
                "instcombine",
                "ipsccp",
                "inline",
                "loop-rotate",
                "indvars",
                "loop-unroll",
                "lsr",
                "gvn",
                "dce",
                "dse",
                "simplifycfg-late",
                "machine-scheduler",
            ],
            Os => vec![
                "simplifycfg",
                "sroa",
                "instcombine",
                "ipsccp",
                "inline",
                "loop-rotate",
                "lsr",
                "gvn",
                "dce",
                "dse",
                "simplifycfg-late",
                "machine-scheduler",
            ],
            Oz => vec![
                "simplifycfg",
                "sroa",
                "instcombine",
                "ipsccp",
                "loop-rotate",
                "lsr",
                "gvn",
                "dce",
                "dse",
                "simplifycfg-late",
                "machine-scheduler",
            ],
        },
        Personality::Ccg => match level {
            O0 => vec![],
            Og => vec![
                "tree-ccp",
                "tree-fre",
                "tree-dce",
                "cprop-registers",
                "cfg-cleanup",
            ],
            O1 => vec![
                "tree-ccp",
                "tree-fre",
                "ipa-pure-const",
                "inline",
                "tree-dce",
                "ivopts",
                "cprop-registers",
                "cfg-cleanup",
            ],
            O2 => vec![
                "tree-ccp",
                "evrp",
                "tree-fre",
                "ipa-pure-const",
                "inline",
                "ipa-sra",
                "tree-dce",
                "tree-dse",
                "ivopts",
                "tree-vrp",
                "cprop-registers",
                "cfg-cleanup",
                "schedule-insns2",
                "toplevel-reorder",
            ],
            O3 => vec![
                "tree-ccp",
                "evrp",
                "tree-fre",
                "ipa-pure-const",
                "inline",
                "ipa-sra",
                "tree-dce",
                "tree-dse",
                "cunroll",
                "ivopts",
                "tree-vrp",
                "cprop-registers",
                "cfg-cleanup",
                "schedule-insns2",
                "toplevel-reorder",
            ],
            Os => vec![
                "tree-ccp",
                "evrp",
                "tree-fre",
                "ipa-pure-const",
                "inline",
                "ipa-sra",
                "tree-dce",
                "tree-dse",
                "cunroll",
                "ivopts",
                "tree-vrp",
                "cprop-registers",
                "cfg-cleanup",
                "schedule-insns2",
                "toplevel-reorder",
            ],
            Oz => vec![
                "tree-ccp",
                "evrp",
                "tree-fre",
                "ipa-pure-const",
                "ipa-sra",
                "tree-dce",
                "tree-dse",
                "cunroll",
                "ivopts",
                "tree-vrp",
                "cprop-registers",
                "cfg-cleanup",
                "schedule-insns2",
                "toplevel-reorder",
            ],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn o0_has_no_passes() {
        for p in [Personality::Ccg, Personality::Lcc] {
            let cfg = CompilerConfig::new(p, OptLevel::O0);
            assert!(cfg.pass_schedule().is_empty());
        }
    }

    #[test]
    fn og_has_fewer_passes_than_o2() {
        for p in [Personality::Ccg, Personality::Lcc] {
            let og = CompilerConfig::new(p, OptLevel::Og).pass_schedule().len();
            let o2 = CompilerConfig::new(p, OptLevel::O2).pass_schedule().len();
            assert!(og < o2, "{p}: Og should schedule fewer passes than O2");
        }
    }

    #[test]
    fn lcc_recent_versions_unroll_at_og() {
        let old = CompilerConfig::new(Personality::Lcc, OptLevel::Og).with_version(0);
        let new = CompilerConfig::new(Personality::Lcc, OptLevel::Og);
        assert!(!old.pass_schedule().contains(&"loop-unroll"));
        assert!(new.pass_schedule().contains(&"loop-unroll"));
    }

    #[test]
    fn version_names_have_six_entries() {
        for p in [Personality::Ccg, Personality::Lcc] {
            assert_eq!(p.version_names().len(), 6);
            assert_eq!(p.version_names()[p.trunk()], "trunk");
        }
    }

    #[test]
    fn config_builders_compose() {
        let cfg = CompilerConfig::new(Personality::Ccg, OptLevel::O2)
            .with_version(2)
            .with_disabled_pass("tree-ccp")
            .with_pass_budget(3)
            .without_defects();
        assert_eq!(cfg.version_name(), "8.4");
        assert!(cfg.disabled_passes.contains("tree-ccp"));
        assert_eq!(cfg.pass_budget, Some(3));
        assert!(cfg.disable_defects);
        assert!(cfg.describe().contains("-O2"));
    }

    #[test]
    fn fingerprints_separate_every_identity_field() {
        let base = CompilerConfig::new(Personality::Ccg, OptLevel::O2);
        let same = CompilerConfig::new(Personality::Ccg, OptLevel::O2);
        assert_eq!(base.fingerprint(), same.fingerprint());
        let variants = [
            CompilerConfig::new(Personality::Lcc, OptLevel::O2),
            CompilerConfig::new(Personality::Ccg, OptLevel::O3),
            base.clone().with_version(0),
            base.clone().with_disabled_pass("inline"),
            base.clone().with_pass_budget(3),
            base.clone().with_pass_budget(0),
            base.clone().without_defects(),
            base.clone().with_backend(BackendKind::Stack),
            CompilerConfig::new(Personality::Lcc, OptLevel::O2).with_backend(BackendKind::Stack),
        ];
        let mut fingerprints: Vec<Fingerprint> =
            variants.iter().map(CompilerConfig::fingerprint).collect();
        fingerprints.push(base.fingerprint());
        fingerprints.sort_unstable();
        let distinct = fingerprints.len();
        fingerprints.dedup();
        assert_eq!(fingerprints.len(), distinct, "fingerprint collision");
    }

    #[test]
    fn fingerprint_is_stable_across_processes() {
        // Pinned value: guards the canonical encoding (an on-disk cache would
        // silently go cold if this ever changed under a refactor).
        let config = CompilerConfig::new(Personality::Ccg, OptLevel::O2)
            .with_disabled_pass("inline")
            .with_pass_budget(3);
        assert_eq!(config.fingerprint(), Fingerprint(0x272d_91e6_aa38_707a));
        // Re-inserting an already-disabled pass is identity.
        let expected = config.clone().fingerprint();
        assert_eq!(
            config.clone().with_disabled_pass("inline").fingerprint(),
            expected
        );
        // Selecting the default backend explicitly is identity too: only a
        // non-default backend extends the canonical encoding, so every
        // pre-backend on-disk artifact key stays warm.
        assert_eq!(
            config.with_backend(BackendKind::Reg).fingerprint(),
            expected
        );
    }

    #[test]
    fn backend_is_part_of_the_identity_and_description() {
        let reg = CompilerConfig::new(Personality::Ccg, OptLevel::O2);
        let stack = reg.clone().with_backend(BackendKind::Stack);
        assert_ne!(reg.fingerprint(), stack.fingerprint());
        assert_ne!(reg, stack);
        assert!(!reg.describe().contains("stack"));
        assert!(stack.describe().contains("[stack]"));
    }

    #[test]
    fn fingerprints_round_trip_through_their_hex_spelling() {
        for config in [
            CompilerConfig::new(Personality::Ccg, OptLevel::O0),
            CompilerConfig::new(Personality::Lcc, OptLevel::Oz)
                .with_disabled_pass("gvn")
                .with_pass_budget(2),
        ] {
            let fingerprint = config.fingerprint();
            let spelled = fingerprint.to_string();
            assert_eq!(spelled.len(), 16);
            assert_eq!(spelled.parse::<Fingerprint>(), Ok(fingerprint));
        }
        // Leading zeros survive the round trip.
        assert_eq!(
            "00000000000000ff".parse::<Fingerprint>(),
            Ok(Fingerprint(0xff))
        );
        for bad in ["", "ff", "00000000000000zz", "0123456789abcdef0"] {
            assert!(bad.parse::<Fingerprint>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn personalities_and_levels_round_trip_through_their_spellings() {
        for personality in [Personality::Ccg, Personality::Lcc] {
            assert_eq!(personality.name().parse(), Ok(personality));
            for (index, name) in personality.version_names().iter().enumerate() {
                assert_eq!(personality.version_index(name), Some(index));
            }
            assert_eq!(personality.version_index("no-such-version"), None);
        }
        for level in OptLevel::ALL {
            assert_eq!(level.flag().parse(), Ok(level));
            assert_eq!(level.flag()[1..].parse(), Ok(level), "without dash");
            assert_eq!(level.flag()[2..].parse(), Ok(level), "suffix only");
        }
        assert!("gcc".parse::<Personality>().is_err());
        assert!("-O9".parse::<OptLevel>().is_err());
        assert!(
            "og".parse::<OptLevel>().is_err(),
            "suffix is case-sensitive"
        );
        let err = "-O9".parse::<OptLevel>().unwrap_err();
        assert!(err.to_string().contains("-O9"));
    }

    #[test]
    fn lcc_levels_skip_o1() {
        assert!(!Personality::Lcc.levels().contains(&OptLevel::O1));
        assert!(Personality::Ccg.levels().contains(&OptLevel::O1));
    }
}
