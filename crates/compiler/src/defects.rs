//! The injected defect catalogue.
//!
//! The paper reports 38 issues in real compilers and debuggers (Table 3).
//! We cannot ship gcc and clang, so the reproduction injects *documented,
//! deterministic* debug-information defects into the corresponding passes of
//! the two compiler personalities. Each [`Defect`] records the paper bug it
//! mirrors, the pass it lives in, the optimization levels it affects, the
//! expected DIE-level manifestation and the conjecture(s) that expose it.
//! The defect does **not** change generated code — only how debug bindings
//! are maintained — exactly like the completeness bugs the paper studies.
//!
//! Version profiles control which defects are present: older versions carry
//! additional (since fixed) defects, the "patched" ccg profile removes the
//! analogue of gcc bug 105158, and the "trunk-star" lcc profile removes most
//! of the loop-strength-reduction defect — reproducing the regression study
//! of §5.4 / Table 4.

use holes_debuginfo::DieCategory;

use crate::config::{CompilerConfig, OptLevel, Personality};
use crate::ir::{DbgLoc, DebugVarId, Inst, IrFunction, Op, ScopeKind, Value};

/// How a defect corrupts debug information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefectAction {
    /// Drop every debug binding of the selected variables *and* suppress
    /// their DIEs (the *Missing DIE* manifestation).
    DropDie,
    /// Drop every debug binding of the selected variables but keep the DIE
    /// (the *Hollow DIE* manifestation).
    DropDbg,
    /// Replace the bindings of the selected variables with "undefined"
    /// (optimized-out ranges; *Hollow*/*Incomplete* manifestations).
    UndefDbg,
    /// Move the bindings of the selected variables later in the instruction
    /// stream by the given distance, so their location ranges start too late
    /// (the *Incomplete DIE* manifestation behind most Conjecture 3 bugs).
    DelayDbg(usize),
    /// Insert an "undefined" binding for the selected variables right before
    /// every call to the opaque sink, so the range does not cover the call
    /// (the *Incomplete DIE* manifestation of e.g. gcc bug 105179).
    TruncateBeforeSink,
    /// Re-home the selected variables into a bogus lexical block that only
    /// covers the function prologue, so the debugger cannot find them at the
    /// relevant program points despite complete location data (the
    /// *Incorrect DIE* manifestation).
    MisScope,
    /// Lose the location of the selected variables whenever register
    /// allocation spills them: the stack backend's code generator emits an
    /// empty location instead of the stack-relative (`FrameBase`)
    /// description the spill slot would need. This is a **code-generation**
    /// defect, applied during lowering rather than on the IR
    /// ([`apply_defect`] is a no-op for it), and it only exists on the
    /// stack backend — the register backend's ISA never homes the affected
    /// bindings in frame-base-relative locations, so this violation class
    /// is inexpressible there. Models the "variable went missing once it
    /// was spilled" holes of the paper's §2 taxonomy.
    DropSpillLoc,
    /// Describe the selected frame-resident variables with
    /// frame-base-relative (`DW_OP_fbreg`) offsets computed against the
    /// *function-entry* frame-base rule — the rule that held before the
    /// prologue allocated the frame — so every offset is shifted up by the
    /// whole frame and resolves past its end. Where the stack has never
    /// grown beyond the stopped frame the read fails and the debugger
    /// reports the variable optimized out; where a deeper call has been
    /// and gone it reads stale bytes from the dead frame. A
    /// **code-generation** defect of the frame-ABI backend only
    /// ([`apply_defect`] is a no-op): neither the banked register backend
    /// (no frame base at all) nor the stack backend (no prologue-advanced
    /// frame rule) can express it. Models `DW_CFA`-advance bugs where the
    /// consumer applies a CFA rule that lags the prologue.
    StaleFrameBase,
    /// Drop the location of the selected variables that live in a
    /// callee-saved register: the frame map is missing that register's
    /// save-slot rule, so the producer cannot prove where the value lives
    /// across calls and conservatively emits no location at all. The
    /// debugger reports the variable optimized out even though the
    /// register holds it the whole time — modelling a frame map whose
    /// callee-saved rule set is incomplete. Frame-ABI backend only, for
    /// the same reason as [`DefectAction::StaleFrameBase`].
    ClobberCalleeSaved,
}

/// Which variables a defect applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarSelector {
    /// Variable class.
    pub class: VarClass,
    /// Keep only variables whose index is congruent to `offset` modulo
    /// `modulus` (frequency control; `modulus == 1` selects every variable of
    /// the class).
    pub modulus: u32,
    /// See `modulus`.
    pub offset: u32,
}

impl VarSelector {
    /// Select every variable of a class.
    pub const fn all(class: VarClass) -> VarSelector {
        VarSelector {
            class,
            modulus: 1,
            offset: 0,
        }
    }

    /// Select a deterministic fraction of the variables of a class.
    pub const fn nth(class: VarClass, offset: u32, modulus: u32) -> VarSelector {
        VarSelector {
            class,
            modulus,
            offset,
        }
    }
}

/// Variable classes a defect can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarClass {
    /// Any local variable.
    Any,
    /// Variables whose current binding is a compile-time constant.
    ConstValued,
    /// Canonical loop induction variables.
    InductionVar,
    /// Address-taken variables (slot-homed).
    SlotVar,
    /// Variables declared in an unnamed lexical block.
    BlockScoped,
}

/// One injected defect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Defect {
    /// Identifier, `<personality>-<paper bug id>` for defects that mirror a
    /// reported bug, `<personality>-legacy-*` for historical defects that
    /// model the paper's older-release behaviour.
    pub id: &'static str,
    /// The paper bug report this defect mirrors (empty for legacy defects).
    pub paper_ref: &'static str,
    /// Personality the defect belongs to.
    pub personality: Personality,
    /// Pass (by schedule name) whose debug-info maintenance is broken.
    /// `"isel"` denotes the always-on code-generation stage.
    pub pass: &'static str,
    /// Levels at which the defect manifests.
    pub levels: &'static [OptLevel],
    /// Expected DIE-level manifestation (Table 3's "DWARF analysis" column).
    pub category: DieCategory,
    /// Conjectures (1–3) that typically expose the defect.
    pub conjectures: &'static [u8],
    /// What the defect does.
    pub action: DefectAction,
    /// Which variables it hits.
    pub selector: VarSelector,
    /// First version index (per personality) in which the defect exists.
    pub introduced: usize,
    /// Version index from which the defect is fixed, if any.
    pub fixed: Option<usize>,
}

impl Defect {
    /// Whether the defect is present in the given configuration (version and
    /// level match, and defects are not globally disabled).
    pub fn active_in(&self, config: &CompilerConfig) -> bool {
        !config.disable_defects
            && self.personality == config.personality
            && config.version >= self.introduced
            && self.fixed.is_none_or(|f| config.version < f)
            && self.levels.contains(&config.level)
    }
}

use DefectAction as A;
use DieCategory as Cat;
use OptLevel::*;
use Personality::{Ccg, Lcc};
use VarClass as C;

const ALL_CCG_LEVELS: &[OptLevel] = &[Og, O1, O2, O3, Os, Oz];
const ALL_LCC_LEVELS: &[OptLevel] = &[Og, O2, O3, Os, Oz];

/// The full defect catalogue for a personality.
pub fn catalogue(personality: Personality) -> Vec<Defect> {
    match personality {
        Personality::Ccg => ccg_catalogue(),
        Personality::Lcc => lcc_catalogue(),
    }
}

fn ccg_catalogue() -> Vec<Defect> {
    vec![
        Defect {
            id: "ccg-105158",
            paper_ref: "gcc bug 105158 (cleanup_tree_cfg loses bindings)",
            personality: Ccg,
            pass: "cfg-cleanup",
            levels: &[O1, O2, O3, Os, Oz],
            category: Cat::HollowDie,
            conjectures: &[1],
            action: A::DropDbg,
            selector: VarSelector::nth(C::Any, 0, 2),
            introduced: 0,
            fixed: Some(5),
        },
        Defect {
            id: "ccg-105179",
            paper_ref: "gcc bug 105179 (-fcprop-registers range misses call)",
            personality: Ccg,
            pass: "cprop-registers",
            levels: &[Og],
            category: Cat::IncompleteDie,
            conjectures: &[1],
            action: A::TruncateBeforeSink,
            selector: VarSelector::nth(C::Any, 0, 3),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "ccg-105007",
            paper_ref: "gcc bug 105007 (EVRP drops propagated constant)",
            personality: Ccg,
            pass: "evrp",
            levels: &[O2, O3],
            category: Cat::HollowDie,
            conjectures: &[1],
            action: A::DropDbg,
            selector: VarSelector::nth(C::ConstValued, 1, 3),
            introduced: 2,
            fixed: None,
        },
        Defect {
            id: "ccg-105108",
            paper_ref: "gcc bug 105108 (CCP omits DW_AT_const_value)",
            personality: Ccg,
            pass: "tree-ccp",
            levels: &[Og, O1],
            category: Cat::HollowDie,
            conjectures: &[2],
            action: A::UndefDbg,
            selector: VarSelector::nth(C::ConstValued, 0, 4),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "ccg-105161",
            paper_ref: "gcc bug 105161 (constant folding loses value)",
            personality: Ccg,
            pass: "tree-ccp",
            levels: &[Og, O1, O2, O3],
            category: Cat::HollowDie,
            conjectures: &[2],
            action: A::UndefDbg,
            selector: VarSelector::nth(C::ConstValued, 1, 4),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "ccg-105145",
            paper_ref: "gcc bug 105145 (address-taken locals in registers)",
            personality: Ccg,
            pass: "ipa-sra",
            levels: &[O1, O2, O3],
            category: Cat::HollowDie,
            conjectures: &[2],
            action: A::DropDbg,
            selector: VarSelector::all(C::SlotVar),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "ccg-105248",
            paper_ref: "gcc bug 105248 (DSE drops bindings, code unchanged)",
            personality: Ccg,
            pass: "tree-dse",
            levels: &[O1, O2, O3],
            category: Cat::HollowDie,
            conjectures: &[1],
            action: A::DropDbg,
            selector: VarSelector::nth(C::ConstValued, 2, 5),
            introduced: 1,
            fixed: None,
        },
        Defect {
            id: "ccg-105176",
            paper_ref: "gcc bug 105176 (DCE drops bindings at -Os/-Oz)",
            personality: Ccg,
            pass: "tree-dce",
            levels: &[Os, Oz],
            category: Cat::IncompleteDie,
            conjectures: &[1],
            action: A::UndefDbg,
            selector: VarSelector::nth(C::Any, 1, 4),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "ccg-105261",
            paper_ref: "gcc bug 105261 (SRA drops constant-valued variables)",
            personality: Ccg,
            pass: "ipa-sra",
            levels: &[O2, O3, Os, Oz],
            category: Cat::HollowDie,
            conjectures: &[1],
            action: A::DropDbg,
            selector: VarSelector::nth(C::ConstValued, 3, 5),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "ccg-105249",
            paper_ref: "gcc bug 105249 (scheduler attributes code to wrong scope)",
            personality: Ccg,
            pass: "schedule-insns2",
            levels: &[Os],
            category: Cat::Covered,
            conjectures: &[2],
            action: A::MisScope,
            selector: VarSelector::all(C::InductionVar),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "ccg-105036",
            paper_ref: "gcc bug 105036 (scheduling + inlining + unrolling)",
            personality: Ccg,
            pass: "schedule-insns2",
            levels: &[O3],
            category: Cat::Covered,
            conjectures: &[2],
            action: A::MisScope,
            selector: VarSelector::nth(C::InductionVar, 0, 2),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "ccg-104938",
            paper_ref: "gcc bug 104938 (CCP shrinks location range at -Og)",
            personality: Ccg,
            pass: "tree-ccp",
            levels: &[Og],
            category: Cat::IncompleteDie,
            conjectures: &[3],
            action: A::DelayDbg(6),
            selector: VarSelector::nth(C::Any, 0, 3),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "ccg-105124",
            paper_ref: "gcc bug 105124 (range misses live lines at -Og)",
            personality: Ccg,
            pass: "tree-ccp",
            levels: &[Og],
            category: Cat::IncompleteDie,
            conjectures: &[3],
            action: A::DelayDbg(4),
            selector: VarSelector::nth(C::ConstValued, 1, 3),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "ccg-105194",
            paper_ref: "gcc bug 105194 (cfg cleanup after DCE, fixed with 105158)",
            personality: Ccg,
            pass: "cfg-cleanup",
            levels: &[Og, O1, O2, O3],
            category: Cat::IncompleteDie,
            conjectures: &[3],
            action: A::DelayDbg(5),
            selector: VarSelector::nth(C::Any, 2, 4),
            introduced: 0,
            fixed: Some(5),
        },
        Defect {
            id: "ccg-105159",
            paper_ref: "gcc bug 105159 (-fipa-reference-addressable at -Og)",
            personality: Ccg,
            pass: "toplevel-reorder",
            levels: &[Og],
            category: Cat::HollowDie,
            conjectures: &[3],
            action: A::DropDbg,
            selector: VarSelector::nth(C::Any, 3, 6),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "ccg-104549",
            paper_ref: "gcc bug 104549 (inlining emits wrong location range)",
            personality: Ccg,
            pass: "inline",
            levels: &[O2, O3],
            category: Cat::Covered,
            conjectures: &[1],
            action: A::MisScope,
            selector: VarSelector::nth(C::ConstValued, 0, 3),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "ccg-104891",
            paper_ref: "gcc bug 104891 (unnamed scopes lose constants)",
            personality: Ccg,
            pass: "tree-vrp",
            levels: &[O2, O3],
            category: Cat::IncompleteDie,
            conjectures: &[2],
            action: A::UndefDbg,
            selector: VarSelector::all(C::BlockScoped),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "ccg-105389",
            paper_ref: "gcc bug 105389 (one value range missing at -Og)",
            personality: Ccg,
            pass: "cprop-registers",
            levels: &[Og],
            category: Cat::IncompleteDie,
            conjectures: &[3],
            action: A::DelayDbg(3),
            selector: VarSelector::nth(C::Any, 1, 5),
            introduced: 0,
            fixed: None,
        },
        // Historical defects: fixed before trunk; they reproduce the
        // much larger violation counts of old releases (Table 4, Figure 1).
        Defect {
            id: "ccg-legacy-ivopts",
            paper_ref: "",
            personality: Ccg,
            pass: "ivopts",
            levels: ALL_CCG_LEVELS,
            category: Cat::HollowDie,
            conjectures: &[2],
            action: A::UndefDbg,
            selector: VarSelector::all(C::InductionVar),
            introduced: 0,
            fixed: Some(3),
        },
        Defect {
            id: "ccg-legacy-dce",
            paper_ref: "",
            personality: Ccg,
            pass: "tree-dce",
            levels: ALL_CCG_LEVELS,
            category: Cat::HollowDie,
            conjectures: &[1, 3],
            action: A::DropDbg,
            selector: VarSelector::nth(C::Any, 0, 4),
            introduced: 0,
            fixed: Some(2),
        },
        Defect {
            id: "ccg-legacy-cleanup",
            paper_ref: "",
            personality: Ccg,
            pass: "cfg-cleanup",
            levels: ALL_CCG_LEVELS,
            category: Cat::IncompleteDie,
            conjectures: &[3],
            action: A::DelayDbg(7),
            selector: VarSelector::nth(C::Any, 1, 2),
            introduced: 0,
            fixed: Some(2),
        },
        Defect {
            id: "ccg-legacy-ccp",
            paper_ref: "",
            personality: Ccg,
            pass: "tree-ccp",
            levels: ALL_CCG_LEVELS,
            category: Cat::HollowDie,
            conjectures: &[2, 3],
            action: A::UndefDbg,
            selector: VarSelector::nth(C::ConstValued, 2, 3),
            introduced: 0,
            fixed: Some(2),
        },
    ]
}

fn lcc_catalogue() -> Vec<Defect> {
    vec![
        Defect {
            id: "lcc-53855a",
            paper_ref: "clang bug 53855a (LSR fails to salvage induction variables)",
            personality: Lcc,
            pass: "lsr",
            levels: &[Og, O2, O3, Oz],
            category: Cat::HollowDie,
            conjectures: &[2],
            action: A::UndefDbg,
            selector: VarSelector::all(C::InductionVar),
            introduced: 0,
            fixed: Some(5),
        },
        Defect {
            id: "lcc-53855b",
            paper_ref: "clang bug 53855b (LSR, not covered by the trunk* fix)",
            personality: Lcc,
            pass: "lsr",
            levels: &[Os],
            category: Cat::HollowDie,
            conjectures: &[2],
            action: A::UndefDbg,
            selector: VarSelector::all(C::InductionVar),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "lcc-55101",
            paper_ref: "clang bug 55101 (LSR + instruction selection)",
            personality: Lcc,
            pass: "lsr",
            levels: &[O2],
            category: Cat::HollowDie,
            conjectures: &[1],
            action: A::UndefDbg,
            selector: VarSelector::nth(C::Any, 1, 3),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "lcc-49546",
            paper_ref: "clang bug 49546 (SimplifyCFG drops lone debug statements)",
            personality: Lcc,
            pass: "simplifycfg",
            levels: &[Og],
            category: Cat::MissingDie,
            conjectures: &[1],
            action: A::DropDie,
            selector: VarSelector::nth(C::InductionVar, 0, 2),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "lcc-49769",
            paper_ref: "clang bug 49769 (CFG simplification after inlining)",
            personality: Lcc,
            pass: "simplifycfg",
            levels: &[Og],
            category: Cat::HollowDie,
            conjectures: &[1],
            action: A::DropDbg,
            selector: VarSelector::nth(C::ConstValued, 0, 3),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "lcc-55115",
            paper_ref: "clang bug 55115 (debug statements cannot be re-homed)",
            personality: Lcc,
            pass: "simplifycfg-late",
            levels: &[Og, O2, O3],
            category: Cat::MissingDie,
            conjectures: &[1],
            action: A::DropDie,
            selector: VarSelector::nth(C::Any, 2, 5),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "lcc-49580",
            paper_ref: "clang bug 49580 (loop rotation loses exit-block metadata)",
            personality: Lcc,
            pass: "loop-rotate",
            levels: &[Og],
            category: Cat::MissingDie,
            conjectures: &[1],
            action: A::DropDie,
            selector: VarSelector::nth(C::InductionVar, 1, 2),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "lcc-49973",
            paper_ref: "clang bug 49973 (induction-variable simplification)",
            personality: Lcc,
            pass: "indvars",
            levels: &[O3],
            category: Cat::HollowDie,
            conjectures: &[1],
            action: A::DropDbg,
            selector: VarSelector::nth(C::ConstValued, 1, 3),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "lcc-49975",
            paper_ref: "clang bug 49975 (InstructionCombining peephole)",
            personality: Lcc,
            pass: "instcombine",
            levels: &[O3],
            category: Cat::HollowDie,
            conjectures: &[1],
            action: A::DropDie,
            selector: VarSelector::nth(C::Any, 0, 5),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "lcc-51780",
            paper_ref: "clang bug 51780 (instruction selection, global loads)",
            personality: Lcc,
            pass: "isel",
            levels: &[O2],
            category: Cat::MissingDie,
            conjectures: &[1],
            action: A::DropDie,
            selector: VarSelector::nth(C::Any, 1, 5),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "lcc-55123",
            paper_ref: "clang bug 55123 (instcombine + inlining interaction)",
            personality: Lcc,
            pass: "instcombine",
            levels: &[Og, O2, O3],
            category: Cat::HollowDie,
            conjectures: &[1],
            action: A::DropDbg,
            selector: VarSelector::nth(C::ConstValued, 2, 4),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "lcc-54611",
            paper_ref: "clang bug 54611 (scheduling leaves incomplete ranges)",
            personality: Lcc,
            pass: "machine-scheduler",
            levels: &[O2],
            category: Cat::IncompleteDie,
            conjectures: &[2],
            action: A::DelayDbg(4),
            selector: VarSelector::nth(C::Any, 0, 4),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "lcc-54757",
            paper_ref: "clang bug 54757 (loop removal drops expression parts)",
            personality: Lcc,
            pass: "loop-unroll",
            levels: &[Og, O2, O3],
            category: Cat::HollowDie,
            conjectures: &[2],
            action: A::UndefDbg,
            selector: VarSelector::nth(C::InductionVar, 1, 2),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "lcc-54763",
            paper_ref: "clang bug 54763 (phi-node placement limitation)",
            personality: Lcc,
            pass: "instcombine",
            levels: &[O2, O3],
            category: Cat::IncompleteDie,
            conjectures: &[2],
            action: A::UndefDbg,
            selector: VarSelector::nth(C::ConstValued, 3, 4),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "lcc-50286",
            paper_ref: "clang bug 50286 (instruction scheduling at -Og)",
            personality: Lcc,
            pass: "machine-scheduler",
            levels: &[Og],
            category: Cat::IncompleteDie,
            conjectures: &[3],
            action: A::DelayDbg(5),
            selector: VarSelector::nth(C::Any, 1, 4),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: "lcc-54796",
            paper_ref: "clang bug 54796 (SROA drops then partially restores)",
            personality: Lcc,
            pass: "sroa",
            levels: &[Os],
            category: Cat::IncompleteDie,
            conjectures: &[3],
            action: A::DelayDbg(6),
            selector: VarSelector::all(C::SlotVar),
            introduced: 0,
            fixed: None,
        },
        // Historical defects fixed before trunk.
        Defect {
            id: "lcc-legacy-lsr",
            paper_ref: "",
            personality: Lcc,
            pass: "lsr",
            levels: ALL_LCC_LEVELS,
            category: Cat::HollowDie,
            conjectures: &[2],
            action: A::DropDbg,
            selector: VarSelector::nth(C::Any, 0, 2),
            introduced: 0,
            fixed: Some(2),
        },
        Defect {
            id: "lcc-legacy-sroa",
            paper_ref: "",
            personality: Lcc,
            pass: "sroa",
            levels: ALL_LCC_LEVELS,
            category: Cat::HollowDie,
            conjectures: &[2, 3],
            action: A::UndefDbg,
            selector: VarSelector::nth(C::Any, 0, 3),
            introduced: 0,
            fixed: Some(3),
        },
        Defect {
            id: "lcc-legacy-scheduler",
            paper_ref: "",
            personality: Lcc,
            pass: "machine-scheduler",
            levels: ALL_LCC_LEVELS,
            category: Cat::IncompleteDie,
            conjectures: &[3],
            action: A::DelayDbg(8),
            selector: VarSelector::nth(C::Any, 1, 3),
            introduced: 0,
            fixed: Some(1),
        },
    ]
}

/// The stack-backend defect catalogue: defects that live in the stack VM's
/// code-generation stage (`"isel"`) and corrupt only the location
/// descriptions that backend alone can emit. Kept separate from
/// [`catalogue`] because these defects have no IR-level effect — the stack
/// code generator consults them via [`spill_loss_victims`].
pub fn stack_catalogue(personality: Personality) -> Vec<Defect> {
    let (id, paper_ref) = match personality {
        Personality::Ccg => (
            "ccg-stack-spill",
            "spill-slot location loss in the stack backend's reload tracking",
        ),
        Personality::Lcc => (
            "lcc-stack-spill",
            "stack-relative DBG_VALUE dropped when the register file overflows",
        ),
    };
    vec![Defect {
        id,
        paper_ref,
        personality,
        pass: "isel",
        levels: match personality {
            Personality::Ccg => ALL_CCG_LEVELS,
            Personality::Lcc => ALL_LCC_LEVELS,
        },
        category: Cat::IncompleteDie,
        conjectures: &[1, 2, 3],
        // Every spilled binding is affected: frequency control comes from
        // register pressure itself (values that stay in the small register
        // file keep their locations), not from a variable-id stride.
        action: A::DropSpillLoc,
        selector: VarSelector::all(C::Any),
        introduced: 0,
        fixed: None,
    }]
}

/// The frame-layout defect catalogue: defects that live in the frame-ABI
/// backend's emission stage (`"isel"`) and corrupt the frame-base-relative
/// location descriptions only that backend emits. Like [`stack_catalogue`],
/// these have no IR-level effect — the frame backend consults them via
/// [`frame_defect_plan`]. Both classes corrupt descriptions only a real
/// frame layout can express — fbreg offsets resolved against a
/// prologue-advanced frame rule, and callee-saved save-slot rules — so
/// the availability holes they open (fbreg reads past the frame, dropped
/// callee-saved locations) occur at sites no other backend's defect can
/// reach.
pub fn frame_catalogue(personality: Personality) -> Vec<Defect> {
    let levels = match personality {
        Personality::Ccg => ALL_CCG_LEVELS,
        Personality::Lcc => ALL_LCC_LEVELS,
    };
    let (stale_id, stale_ref, clobber_id, clobber_ref) = match personality {
        Personality::Ccg => (
            "ccg-frame-fbreg-stale",
            "fbreg offsets computed before the prologue's CFA advance",
            "ccg-frame-callee-clobber",
            "callee-saved register's save-slot rule missing from the frame map",
        ),
        Personality::Lcc => (
            "lcc-frame-fbreg-stale",
            "fbreg offsets resolved against the function-entry frame rule",
            "lcc-frame-callee-clobber",
            "callee-saved location dropped when the save-slot rule is absent",
        ),
    };
    vec![
        Defect {
            id: stale_id,
            paper_ref: stale_ref,
            personality,
            pass: "isel",
            levels,
            category: Cat::Covered,
            conjectures: &[1, 2, 3],
            action: A::StaleFrameBase,
            // Every frame-resident binding is affected: frequency control
            // comes from how often values live in frame slots rather than
            // registers, as with the stack-spill defect.
            selector: VarSelector::all(C::Any),
            introduced: 0,
            fixed: None,
        },
        Defect {
            id: clobber_id,
            paper_ref: clobber_ref,
            personality,
            pass: "isel",
            levels,
            category: Cat::IncompleteDie,
            conjectures: &[1, 2, 3],
            action: A::ClobberCalleeSaved,
            selector: VarSelector::all(C::Any),
            introduced: 0,
            fixed: None,
        },
    ]
}

/// Which variables of a function the frame-ABI backend's emission stage
/// must corrupt, per frame defect action (see [`frame_catalogue`]). Empty
/// on every other backend and with defects disabled.
#[derive(Debug, Clone, Default)]
pub struct FrameDefectPlan {
    /// Variables whose frame-resident bindings get function-entry (stale)
    /// frame-base offsets.
    pub stale_fbreg: Vec<DebugVarId>,
    /// Variables whose callee-saved-register bindings lose their location
    /// (the register's save-slot rule is missing from the frame map).
    pub callee_clobber: Vec<DebugVarId>,
}

/// Build the [`FrameDefectPlan`] of one function under `config`.
pub fn frame_defect_plan(config: &CompilerConfig, func: &IrFunction) -> FrameDefectPlan {
    let mut plan = FrameDefectPlan::default();
    if config.backend != holes_machine::BackendKind::Frame {
        return plan;
    }
    for defect in frame_catalogue(config.personality) {
        if !defect.active_in(config) {
            continue;
        }
        let victims = match defect.action {
            DefectAction::StaleFrameBase => &mut plan.stale_fbreg,
            DefectAction::ClobberCalleeSaved => &mut plan.callee_clobber,
            _ => continue,
        };
        for var in (0..func.vars.len() as u32).map(DebugVarId) {
            if selects(func, defect.selector, var) && !victims.contains(&var) {
                victims.push(var);
            }
        }
    }
    plan.stale_fbreg.sort_unstable();
    plan.callee_clobber.sort_unstable();
    plan
}

/// The variables of `func` whose spilled bindings lose their location under
/// `config`'s active stack-backend defects (empty on the register backend,
/// with defects disabled, or when no stack defect matches the version and
/// level).
pub fn spill_loss_victims(config: &CompilerConfig, func: &IrFunction) -> Vec<DebugVarId> {
    let mut victims: Vec<DebugVarId> = Vec::new();
    if config.backend != holes_machine::BackendKind::Stack {
        return victims;
    }
    for defect in stack_catalogue(config.personality) {
        if defect.action != DefectAction::DropSpillLoc || !defect.active_in(config) {
            continue;
        }
        for var in (0..func.vars.len() as u32).map(DebugVarId) {
            if selects(func, defect.selector, var) && !victims.contains(&var) {
                victims.push(var);
            }
        }
    }
    victims.sort_unstable();
    victims
}

/// Defects of `config` that live in `pass` and are active.
pub fn active_defects(config: &CompilerConfig, pass: &str) -> Vec<Defect> {
    catalogue(config.personality)
        .into_iter()
        .filter(|d| d.pass == pass && d.active_in(config))
        .collect()
}

/// Apply a defect to a function's debug bindings (the pipeline runner calls
/// this right after the corresponding pass has executed).
pub fn apply_defect(func: &mut IrFunction, defect: &Defect) {
    let selected: Vec<DebugVarId> = (0..func.vars.len() as u32)
        .map(DebugVarId)
        .filter(|v| selects(func, defect.selector, *v))
        .collect();
    if selected.is_empty() {
        return;
    }
    match defect.action {
        DefectAction::DropDie => {
            for &v in &selected {
                func.vars[v.0 as usize].suppress_die = true;
            }
            drop_bindings(func, &selected);
        }
        DefectAction::DropDbg => drop_bindings(func, &selected),
        DefectAction::UndefDbg => {
            for inst in &mut func.insts {
                if let Op::DbgValue { var, loc } = &mut inst.op {
                    if selected.contains(var) {
                        *loc = DbgLoc::Undef;
                    }
                }
            }
        }
        DefectAction::DelayDbg(distance) => delay_bindings(func, &selected, distance),
        DefectAction::TruncateBeforeSink => truncate_before_sink(func, &selected),
        DefectAction::MisScope => mis_scope(func, &selected),
        // Applied by the stack backend's code generator (see
        // `spill_loss_victims`); there is nothing to corrupt at the IR level.
        DefectAction::DropSpillLoc => {}
        // Applied by the frame-ABI backend's emission stage (see
        // `frame_defect_plan`); there is nothing to corrupt at the IR level.
        DefectAction::StaleFrameBase | DefectAction::ClobberCalleeSaved => {}
    }
}

fn selects(func: &IrFunction, selector: VarSelector, var: DebugVarId) -> bool {
    if var.0 % selector.modulus != selector.offset % selector.modulus {
        return false;
    }
    let info = &func.vars[var.0 as usize];
    match selector.class {
        VarClass::Any => true,
        VarClass::ConstValued => func.insts.iter().any(|i| {
            matches!(
                i.op,
                Op::DbgValue { var: v, loc: DbgLoc::Value(Value::Const(_)) } if v == var
            )
        }),
        VarClass::InductionVar => func.loops.iter().any(|l| l.iv_var == Some(var)),
        VarClass::SlotVar => func
            .insts
            .iter()
            .any(|i| matches!(i.op, Op::DbgValue { var: v, loc: DbgLoc::Slot(_) } if v == var)),
        VarClass::BlockScoped => {
            matches!(
                func.scopes.get(info.scope.0 as usize),
                Some(ScopeKind::Block { .. })
            )
        }
    }
}

fn drop_bindings(func: &mut IrFunction, selected: &[DebugVarId]) {
    for inst in &mut func.insts {
        if let Op::DbgValue { var, .. } = inst.op {
            if selected.contains(&var) {
                inst.op = Op::Nop;
            }
        }
    }
    func.remove_nops();
}

fn delay_bindings(func: &mut IrFunction, selected: &[DebugVarId], distance: usize) {
    let mut index = 0;
    while index < func.insts.len() {
        let is_selected = matches!(
            func.insts[index].op,
            Op::DbgValue { var, .. } if selected.contains(&var)
        );
        if is_selected {
            let target = (index + distance).min(func.insts.len() - 1);
            let inst = func.insts.remove(index);
            func.insts.insert(target, inst);
            index = target + 1;
        } else {
            index += 1;
        }
    }
}

fn truncate_before_sink(func: &mut IrFunction, selected: &[DebugVarId]) {
    let mut index = 0;
    while index < func.insts.len() {
        if matches!(func.insts[index].op, Op::CallSink { .. }) {
            let line = func.insts[index].line;
            let scope = func.insts[index].scope;
            for &var in selected {
                func.insts.insert(
                    index,
                    Inst::in_scope(
                        Op::DbgValue {
                            var,
                            loc: DbgLoc::Undef,
                        },
                        line,
                        scope,
                    ),
                );
                index += 1;
            }
        }
        index += 1;
    }
}

fn mis_scope(func: &mut IrFunction, selected: &[DebugVarId]) {
    // Create a bogus lexical block covering only the prologue and re-home the
    // selected variables there.
    let bogus = func.add_scope(ScopeKind::Block {
        parent: crate::ir::ScopeId(0),
    });
    if let Some(first) = func.insts.first_mut() {
        first.scope = bogus;
    }
    for &var in selected {
        func.vars[var.0 as usize].scope = bogus;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompilerConfig;
    use crate::ir::{DebugVar, ScopeId};
    use holes_minic::ast::FunctionId;

    fn test_function() -> IrFunction {
        let mut f = IrFunction {
            name: "main".into(),
            source: FunctionId(0),
            vars: Vec::new(),
            scopes: vec![ScopeKind::Function],
            slots: 0,
            next_temp: 0,
            insts: Vec::new(),
            loops: Vec::new(),
            param_temps: Vec::new(),
            decl_line: 1,
            pure_const: None,
        };
        for i in 0..4 {
            f.add_var(DebugVar {
                name: format!("v{i}"),
                scope: ScopeId(0),
                is_param: false,
                decl_line: 1,
                suppress_die: false,
            });
        }
        for i in 0..4u32 {
            f.insts.push(Inst::new(
                Op::DbgValue {
                    var: DebugVarId(i),
                    loc: DbgLoc::Value(Value::Const(i as i64)),
                },
                2 + i,
            ));
        }
        f.insts.push(Inst::new(Op::CallSink { args: vec![] }, 9));
        f.insts.push(Inst::new(Op::Ret { value: None }, 10));
        f
    }

    #[test]
    fn catalogue_is_nonempty_and_consistent() {
        for p in [Personality::Ccg, Personality::Lcc] {
            let defects = catalogue(p);
            assert!(defects.len() >= 15, "{p} catalogue too small");
            for d in &defects {
                assert_eq!(d.personality, p);
                assert!(!d.levels.is_empty(), "{} has no levels", d.id);
                assert!(!d.conjectures.is_empty(), "{} has no conjectures", d.id);
                if let Some(fixed) = d.fixed {
                    assert!(fixed > d.introduced, "{} fixed before introduced", d.id);
                }
            }
        }
    }

    #[test]
    fn defect_ids_are_unique() {
        for p in [Personality::Ccg, Personality::Lcc] {
            let defects = catalogue(p);
            let mut ids: Vec<&str> = defects.iter().map(|d| d.id).collect();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            assert_eq!(before, ids.len());
        }
    }

    #[test]
    fn patched_version_removes_105158() {
        let trunk = CompilerConfig::new(Personality::Ccg, OptLevel::O2);
        let patched = trunk.clone().with_version(5);
        let in_trunk = active_defects(&trunk, "cfg-cleanup");
        let in_patched = active_defects(&patched, "cfg-cleanup");
        assert!(in_trunk.iter().any(|d| d.id == "ccg-105158"));
        assert!(!in_patched.iter().any(|d| d.id == "ccg-105158"));
    }

    #[test]
    fn trunk_star_removes_lsr_defect_but_keeps_53855b() {
        let trunk = CompilerConfig::new(Personality::Lcc, OptLevel::Os);
        let star = trunk.clone().with_version(5);
        assert!(
            active_defects(&trunk, "lsr")
                .iter()
                .any(|d| d.id == "lcc-53855a")
                || active_defects(&CompilerConfig::new(Personality::Lcc, OptLevel::O2), "lsr")
                    .iter()
                    .any(|d| d.id == "lcc-53855a")
        );
        assert!(active_defects(&star, "lsr")
            .iter()
            .any(|d| d.id == "lcc-53855b"));
        let star_o2 = CompilerConfig::new(Personality::Lcc, OptLevel::O2).with_version(5);
        assert!(!active_defects(&star_o2, "lsr")
            .iter()
            .any(|d| d.id == "lcc-53855a"));
    }

    #[test]
    fn disable_defects_deactivates_everything() {
        let cfg = CompilerConfig::new(Personality::Ccg, OptLevel::O2).without_defects();
        for pass in ["tree-ccp", "cfg-cleanup", "ipa-sra", "schedule-insns2"] {
            assert!(active_defects(&cfg, pass).is_empty());
        }
    }

    #[test]
    fn old_versions_have_more_defects_than_trunk() {
        for p in [Personality::Ccg, Personality::Lcc] {
            let count = |version: usize| {
                let mut total = 0;
                for level in p.levels() {
                    let cfg = CompilerConfig::new(p, *level).with_version(version);
                    total += catalogue(p).iter().filter(|d| d.active_in(&cfg)).count();
                }
                total
            };
            assert!(
                count(0) > count(p.trunk()),
                "{p}: old release should have more defects"
            );
            assert!(
                count(p.trunk()) > count(5),
                "{p}: patched release should have fewer defects"
            );
        }
    }

    #[test]
    fn drop_dbg_removes_bindings() {
        let mut f = test_function();
        let defect = Defect {
            id: "test",
            paper_ref: "",
            personality: Personality::Ccg,
            pass: "tree-ccp",
            levels: ALL_CCG_LEVELS,
            category: Cat::HollowDie,
            conjectures: &[1],
            action: A::DropDbg,
            selector: VarSelector::nth(C::Any, 0, 2),
            introduced: 0,
            fixed: None,
        };
        apply_defect(&mut f, &defect);
        let remaining: Vec<u32> = f
            .insts
            .iter()
            .filter_map(|i| match i.op {
                Op::DbgValue { var, .. } => Some(var.0),
                _ => None,
            })
            .collect();
        assert_eq!(remaining, vec![1, 3]);
    }

    #[test]
    fn undef_dbg_marks_bindings_undefined() {
        let mut f = test_function();
        let defect = Defect {
            id: "test",
            paper_ref: "",
            personality: Personality::Ccg,
            pass: "tree-ccp",
            levels: ALL_CCG_LEVELS,
            category: Cat::HollowDie,
            conjectures: &[2],
            action: A::UndefDbg,
            selector: VarSelector::all(C::ConstValued),
            introduced: 0,
            fixed: None,
        };
        apply_defect(&mut f, &defect);
        assert!(f.insts.iter().all(|i| !matches!(
            i.op,
            Op::DbgValue {
                loc: DbgLoc::Value(_),
                ..
            }
        )));
    }

    #[test]
    fn truncate_before_sink_inserts_undef_bindings() {
        let mut f = test_function();
        let defect = Defect {
            id: "test",
            paper_ref: "",
            personality: Personality::Ccg,
            pass: "cprop-registers",
            levels: ALL_CCG_LEVELS,
            category: Cat::IncompleteDie,
            conjectures: &[1],
            action: A::TruncateBeforeSink,
            selector: VarSelector::all(C::Any),
            introduced: 0,
            fixed: None,
        };
        let before = f.insts.len();
        apply_defect(&mut f, &defect);
        assert_eq!(f.insts.len(), before + 4);
        let sink_pos = f
            .insts
            .iter()
            .position(|i| matches!(i.op, Op::CallSink { .. }))
            .unwrap();
        assert!(matches!(
            f.insts[sink_pos - 1].op,
            Op::DbgValue {
                loc: DbgLoc::Undef,
                ..
            }
        ));
    }

    #[test]
    fn delay_dbg_moves_bindings_later() {
        let mut f = test_function();
        let defect = Defect {
            id: "test",
            paper_ref: "",
            personality: Personality::Ccg,
            pass: "tree-ccp",
            levels: ALL_CCG_LEVELS,
            category: Cat::IncompleteDie,
            conjectures: &[3],
            action: A::DelayDbg(3),
            selector: VarSelector::nth(C::Any, 0, 4),
            introduced: 0,
            fixed: None,
        };
        apply_defect(&mut f, &defect);
        let pos_v0 = f
            .insts
            .iter()
            .position(|i| {
                matches!(
                    i.op,
                    Op::DbgValue {
                        var: DebugVarId(0),
                        ..
                    }
                )
            })
            .unwrap();
        assert_eq!(pos_v0, 3);
    }

    #[test]
    fn drop_die_suppresses_the_die() {
        let mut f = test_function();
        let defect = Defect {
            id: "test",
            paper_ref: "",
            personality: Personality::Lcc,
            pass: "simplifycfg",
            levels: ALL_LCC_LEVELS,
            category: Cat::MissingDie,
            conjectures: &[1],
            action: A::DropDie,
            selector: VarSelector::nth(C::Any, 1, 4),
            introduced: 0,
            fixed: None,
        };
        apply_defect(&mut f, &defect);
        assert!(f.vars[1].suppress_die);
        assert!(!f.vars[0].suppress_die);
    }
}
