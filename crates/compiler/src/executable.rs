//! The compiled artifact: machine code plus debug information.

use holes_debuginfo::DebugInfo;
use holes_machine::{BackendKind, MachineCode, MachineError, RunOutcome};

use crate::config::CompilerConfig;
use crate::passes::PipelineReport;

/// A compiled executable: runnable machine code for one backend, its
/// DWARF-style debug information, and a record of how it was produced.
///
/// Equality is full structural equality over code, debug information,
/// configuration, and pipeline report — what the snapshot-derivation tests
/// mean by "byte-identical to a from-scratch compile".
#[derive(Debug, Clone, PartialEq)]
pub struct Executable {
    /// The machine program (register-VM or stack-VM code; see
    /// [`MachineCode`]).
    pub machine: MachineCode,
    /// Debug information (DIE tree and line table).
    pub debug: DebugInfo,
    /// The configuration that produced the executable.
    pub config: CompilerConfig,
    /// What the pipeline did (passes run, defects applied).
    pub report: PipelineReport,
}

impl Executable {
    /// Run the executable to completion and return the observable outcome.
    ///
    /// # Errors
    ///
    /// Returns the machine error if execution faults or exceeds its budget.
    pub fn run(&self) -> Result<RunOutcome, MachineError> {
        self.machine.run_to_completion()
    }

    /// The backend this executable targets.
    pub fn backend(&self) -> BackendKind {
        self.machine.backend()
    }

    /// Total number of machine instructions.
    pub fn code_size(&self) -> usize {
        self.machine.instruction_count()
    }

    /// The source lines a debugger can step on in this executable.
    pub fn steppable_lines(&self) -> Vec<u32> {
        self.debug.line_table.steppable_lines()
    }
}
