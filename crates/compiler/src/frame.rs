//! Frame layout: how a function's stack frame is organised after register
//! allocation.
//!
//! The emission stage builds one [`FrameLayout`] per function from the
//! allocator's output and the backend's [`FrameAbi`]. The layout answers
//! every "which slot?" question emission and debug information have:
//!
//! ```text
//!   slot 0 .. locals                  — source-level locals (IR slots)
//!   locals .. locals+spills           — register-allocator spill slots
//!   locals+spills .. total            — callee-saved register save area
//! ```
//!
//! Under [`FrameAbi::Banked`] (the default register backend) the save area
//! is empty and no prologue/epilogue exists: the VM banks a fresh register
//! file per call, so nothing needs saving, and spill slots are described to
//! the debugger as plain frame slots. Under [`FrameAbi::Saved`] (the
//! `frame` backend) the callee-saved registers a function actually uses are
//! stored to the save area in the prologue and restored before every
//! return, and spilled variables are described frame-base-relative
//! (`DW_OP_fbreg`-style) — the layout that makes the `DW_CFA`-style defect
//! class expressible.

use crate::regalloc::Allocation;
use crate::vcode::Storage;

/// The frame convention a backend emits under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameAbi {
    /// Register files are banked per call frame: no callee-saved set, no
    /// prologue/epilogue. The default register backend's convention.
    Banked,
    /// Registers `callee_saved_first..allocatable` are callee-saved: a
    /// function that assigns any of them must save them to the frame's
    /// save area in its prologue and restore them before returning.
    Saved {
        /// First callee-saved register number.
        callee_saved_first: u8,
        /// Exclusive upper bound of the allocatable register file.
        allocatable: u8,
    },
}

/// The concrete frame layout of one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameLayout {
    /// Slots occupied by source-level locals (IR slots), laid out first.
    pub locals: u32,
    /// Number of spill slots following the locals.
    pub spill_count: u32,
    /// Callee-saved registers this function assigns, in ascending register
    /// order; each gets one save slot after the spill area. Empty under
    /// [`FrameAbi::Banked`].
    pub saved: Vec<u8>,
}

impl FrameLayout {
    /// Lay out the frame of a function with `locals` local slots whose
    /// register allocation is `allocation`, under `abi`.
    pub fn new(abi: FrameAbi, locals: u32, allocation: &Allocation) -> FrameLayout {
        let saved = match abi {
            FrameAbi::Banked => Vec::new(),
            FrameAbi::Saved {
                callee_saved_first,
                allocatable,
            } => {
                let mut used: Vec<u8> = allocation
                    .homes
                    .values()
                    .filter_map(|home| match home {
                        Storage::Reg(r) if (callee_saved_first..allocatable).contains(r) => {
                            Some(*r)
                        }
                        _ => None,
                    })
                    .collect();
                used.sort_unstable();
                used.dedup();
                used
            }
        };
        FrameLayout {
            locals,
            spill_count: allocation.spill_count,
            saved,
        }
    }

    /// The frame slot of spill ordinal `ordinal`.
    pub fn spill_slot(&self, ordinal: u32) -> u32 {
        self.locals + ordinal
    }

    /// The frame slot saving the `index`-th callee-saved register of
    /// [`FrameLayout::saved`].
    pub fn save_slot(&self, index: usize) -> u32 {
        self.locals + self.spill_count + index as u32
    }

    /// The save slot of callee-saved register `reg`, if this function
    /// saves it.
    pub fn save_slot_of(&self, reg: u8) -> Option<u32> {
        self.saved
            .iter()
            .position(|r| *r == reg)
            .map(|index| self.save_slot(index))
    }

    /// Total frame slots (locals + spills + save area) — the machine
    /// function's `frame_slots`.
    pub fn total_slots(&self) -> u32 {
        self.locals + self.spill_count + self.saved.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcode::VReg;

    #[test]
    fn banked_frames_have_no_save_area() {
        let mut allocation = Allocation::default();
        allocation.homes.insert(VReg(0), Storage::Reg(7));
        allocation.homes.insert(VReg(1), Storage::Spill(0));
        allocation.spill_count = 1;
        let layout = FrameLayout::new(FrameAbi::Banked, 3, &allocation);
        assert!(layout.saved.is_empty());
        assert_eq!(layout.spill_slot(0), 3);
        assert_eq!(layout.total_slots(), 4);
    }

    #[test]
    fn saved_abi_collects_used_callee_saved_registers_in_order() {
        let mut allocation = Allocation::default();
        allocation.homes.insert(VReg(0), Storage::Reg(8));
        allocation.homes.insert(VReg(1), Storage::Reg(5));
        allocation.homes.insert(VReg(2), Storage::Reg(5));
        allocation.homes.insert(VReg(3), Storage::Reg(2));
        allocation.homes.insert(VReg(4), Storage::Spill(0));
        allocation.homes.insert(VReg(5), Storage::Spill(1));
        allocation.spill_count = 2;
        let abi = FrameAbi::Saved {
            callee_saved_first: 5,
            allocatable: 9,
        };
        let layout = FrameLayout::new(abi, 2, &allocation);
        assert_eq!(layout.saved, vec![5, 8]);
        assert_eq!(layout.spill_slot(1), 3);
        assert_eq!(layout.save_slot(0), 4);
        assert_eq!(layout.save_slot_of(8), Some(5));
        assert_eq!(layout.save_slot_of(6), None);
        assert_eq!(layout.total_slots(), 6);
    }
}
