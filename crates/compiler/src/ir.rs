//! The compiler's intermediate representation.
//!
//! A function is a linear sequence of instructions over virtual registers
//! (*temps*), with symbolic block labels for control flow and explicit
//! `DbgValue` instructions that bind source variables to their current
//! location — the analogue of LLVM's `llvm.dbg.value` / gcc's debug
//! statements. Optimization passes transform the instruction stream and are
//! responsible for keeping the `DbgValue` bindings up to date; the injected
//! defects of [`crate::defects`] model the places where real compilers fail
//! to do so.

use holes_minic::ast::{BinOp, FunctionId, GlobalId, UnOp};

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Temp(pub u32);

/// A memory slot of the function frame (address-taken locals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u32);

/// A symbolic branch target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockLabel(pub u32);

/// A scope of the function's scope tree (function root, lexical block, or
/// inlined call).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScopeId(pub u32);

/// A source-level variable tracked by debug information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DebugVarId(pub u32);

/// An operand: a temp or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// Virtual register operand.
    Temp(Temp),
    /// Constant operand.
    Const(i64),
}

impl Value {
    /// The temp, if this operand is one.
    pub fn as_temp(self) -> Option<Temp> {
        match self {
            Value::Temp(t) => Some(t),
            Value::Const(_) => None,
        }
    }

    /// The constant, if this operand is one.
    pub fn as_const(self) -> Option<i64> {
        match self {
            Value::Const(c) => Some(c),
            Value::Temp(_) => None,
        }
    }
}

/// The location bound to a variable by a [`Op::DbgValue`] instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbgLoc {
    /// The variable currently has this value (a temp or a constant).
    Value(Value),
    /// The variable lives in a frame slot.
    Slot(SlotId),
    /// The variable's value cannot be described (legitimately optimized out).
    Undef,
}

/// Instruction payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `dst <- src`.
    Copy {
        /// Destination temp.
        dst: Temp,
        /// Source value.
        src: Value,
    },
    /// `dst <- op src`.
    Un {
        /// Destination temp.
        dst: Temp,
        /// Operator.
        op: UnOp,
        /// Operand.
        src: Value,
    },
    /// `dst <- lhs op rhs`.
    Bin {
        /// Destination temp.
        dst: Temp,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// `dst <- wrap(src)` to the given width.
    Trunc {
        /// Destination temp.
        dst: Temp,
        /// Source value.
        src: Value,
        /// Width in bits.
        bits: u32,
        /// Whether the wrap sign-extends.
        signed: bool,
    },
    /// Load an element of a global.
    LoadGlobal {
        /// Destination temp.
        dst: Temp,
        /// Global read.
        global: GlobalId,
        /// Flattened element index (`None` means element 0).
        index: Option<Value>,
        /// Whether the global is volatile (the load must not be removed).
        volatile: bool,
    },
    /// Store to an element of a global.
    StoreGlobal {
        /// Global written.
        global: GlobalId,
        /// Flattened element index (`None` means element 0).
        index: Option<Value>,
        /// Stored value.
        value: Value,
        /// Whether the global is volatile.
        volatile: bool,
    },
    /// Load from a frame slot.
    LoadSlot {
        /// Destination temp.
        dst: Temp,
        /// Slot read.
        slot: SlotId,
    },
    /// Store to a frame slot.
    StoreSlot {
        /// Slot written.
        slot: SlotId,
        /// Stored value.
        value: Value,
    },
    /// Load through a pointer held in a value.
    LoadPtr {
        /// Destination temp.
        dst: Temp,
        /// Address value.
        addr: Value,
    },
    /// Store through a pointer held in a value.
    StorePtr {
        /// Address value.
        addr: Value,
        /// Stored value.
        value: Value,
    },
    /// Take the address of a global.
    AddrGlobal {
        /// Destination temp.
        dst: Temp,
        /// Global whose address is taken.
        global: GlobalId,
    },
    /// Take the address of a frame slot.
    AddrSlot {
        /// Destination temp.
        dst: Temp,
        /// Slot whose address is taken.
        slot: SlotId,
    },
    /// Block label (branch target).
    Label(BlockLabel),
    /// Unconditional jump.
    Jump(BlockLabel),
    /// Jump when the condition is zero.
    BranchZero {
        /// Condition value.
        cond: Value,
        /// Branch target.
        target: BlockLabel,
    },
    /// Jump when the condition is non-zero.
    BranchNonZero {
        /// Condition value.
        cond: Value,
        /// Branch target.
        target: BlockLabel,
    },
    /// Call an internal function.
    Call {
        /// Register receiving the return value, if used.
        dst: Option<Temp>,
        /// Callee.
        callee: FunctionId,
        /// Arguments.
        args: Vec<Value>,
    },
    /// Call the opaque external sink.
    CallSink {
        /// Arguments.
        args: Vec<Value>,
    },
    /// Return from the function.
    Ret {
        /// Return value, if any.
        value: Option<Value>,
    },
    /// Bind a variable to a location from this point on.
    DbgValue {
        /// The variable.
        var: DebugVarId,
        /// Its new location.
        loc: DbgLoc,
    },
    /// No operation.
    Nop,
}

impl Op {
    /// The temp defined by this instruction, if any.
    pub fn def(&self) -> Option<Temp> {
        match self {
            Op::Copy { dst, .. }
            | Op::Un { dst, .. }
            | Op::Bin { dst, .. }
            | Op::Trunc { dst, .. }
            | Op::LoadGlobal { dst, .. }
            | Op::LoadSlot { dst, .. }
            | Op::LoadPtr { dst, .. }
            | Op::AddrGlobal { dst, .. }
            | Op::AddrSlot { dst, .. } => Some(*dst),
            Op::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// The values read by this instruction (excluding debug bindings).
    pub fn uses(&self) -> Vec<Value> {
        match self {
            Op::Copy { src, .. } | Op::Un { src, .. } => vec![*src],
            Op::Trunc { src, .. } => vec![*src],
            Op::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            Op::LoadGlobal { index, .. } => index.iter().copied().collect(),
            Op::StoreGlobal { index, value, .. } => {
                let mut v: Vec<Value> = index.iter().copied().collect();
                v.push(*value);
                v
            }
            Op::LoadSlot { .. } | Op::AddrGlobal { .. } | Op::AddrSlot { .. } => Vec::new(),
            Op::StoreSlot { value, .. } => vec![*value],
            Op::LoadPtr { addr, .. } => vec![*addr],
            Op::StorePtr { addr, value } => vec![*addr, *value],
            Op::BranchZero { cond, .. } | Op::BranchNonZero { cond, .. } => vec![*cond],
            Op::Call { args, .. } | Op::CallSink { args } => args.clone(),
            Op::Ret { value } => value.iter().copied().collect(),
            Op::Label(_) | Op::Jump(_) | Op::Nop | Op::DbgValue { .. } => Vec::new(),
        }
    }

    /// Rewrite every use of a temp with a replacement value. Debug bindings
    /// are *not* rewritten here; passes decide how to maintain them.
    pub fn replace_uses(&mut self, temp: Temp, replacement: Value) {
        let subst = |v: &mut Value| {
            if *v == Value::Temp(temp) {
                *v = replacement;
            }
        };
        match self {
            Op::Copy { src, .. } | Op::Un { src, .. } | Op::Trunc { src, .. } => subst(src),
            Op::Bin { lhs, rhs, .. } => {
                subst(lhs);
                subst(rhs);
            }
            Op::LoadGlobal { index: Some(i), .. } => subst(i),
            Op::StoreGlobal { index, value, .. } => {
                if let Some(i) = index {
                    subst(i);
                }
                subst(value);
            }
            Op::StoreSlot { value, .. } => subst(value),
            Op::LoadPtr { addr, .. } => subst(addr),
            Op::StorePtr { addr, value } => {
                subst(addr);
                subst(value);
            }
            Op::BranchZero { cond, .. } | Op::BranchNonZero { cond, .. } => subst(cond),
            Op::Call { args, .. } | Op::CallSink { args } => args.iter_mut().for_each(subst),
            Op::Ret { value: Some(v) } => subst(v),
            _ => {}
        }
    }

    /// Whether the instruction has side effects (and so must not be removed
    /// even when its result is unused).
    pub fn has_side_effects(&self) -> bool {
        match self {
            Op::StoreGlobal { .. }
            | Op::StoreSlot { .. }
            | Op::StorePtr { .. }
            | Op::Call { .. }
            | Op::CallSink { .. }
            | Op::Ret { .. }
            | Op::Label(_)
            | Op::Jump(_)
            | Op::BranchZero { .. }
            | Op::BranchNonZero { .. }
            | Op::DbgValue { .. } => true,
            Op::LoadGlobal { volatile, .. } => *volatile,
            _ => false,
        }
    }

    /// Whether this is a pure computation whose removal is legal when the
    /// result is unused.
    pub fn is_removable_def(&self) -> bool {
        self.def().is_some() && !self.has_side_effects()
    }
}

/// One instruction: payload plus source line and scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// Source line the instruction belongs to.
    pub line: u32,
    /// Scope the instruction belongs to.
    pub scope: ScopeId,
}

impl Inst {
    /// Create an instruction in the root scope.
    pub fn new(op: Op, line: u32) -> Inst {
        Inst {
            op,
            line,
            scope: ScopeId(0),
        }
    }

    /// Create an instruction in a specific scope.
    pub fn in_scope(op: Op, line: u32, scope: ScopeId) -> Inst {
        Inst { op, line, scope }
    }
}

/// Scope tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScopeKind {
    /// The function root scope.
    Function,
    /// A lexical block.
    Block {
        /// Parent scope.
        parent: ScopeId,
    },
    /// An inlined call.
    Inlined {
        /// Parent scope.
        parent: ScopeId,
        /// Source function that was inlined.
        callee: FunctionId,
        /// Name of the callee.
        callee_name: String,
        /// Line of the call that was inlined.
        call_line: u32,
    },
}

/// A source variable tracked in debug information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DebugVar {
    /// Source-level name.
    pub name: String,
    /// Scope the variable belongs to.
    pub scope: ScopeId,
    /// Whether it is a formal parameter.
    pub is_param: bool,
    /// Declaration line.
    pub decl_line: u32,
    /// When the defect catalogue wants to suppress the DIE entirely
    /// (the *Missing DIE* manifestation), this is set by a defect action.
    pub suppress_die: bool,
}

/// Metadata about a lowered counted loop, used by the loop passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopRegion {
    /// Label of the loop header (condition test).
    pub header: BlockLabel,
    /// Label of the loop exit.
    pub exit: BlockLabel,
    /// Source line of the `for` header.
    pub header_line: u32,
    /// The induction variable, when canonical.
    pub iv_var: Option<DebugVarId>,
    /// Home temp of the induction variable.
    pub iv_temp: Option<Temp>,
    /// Literal start value.
    pub start: Option<i64>,
    /// Literal bound.
    pub bound: Option<i64>,
    /// Literal step.
    pub step: Option<i64>,
}

impl LoopRegion {
    /// Trip count when start, bound and step are all literal and the loop is
    /// a canonical `for (i = start; i < bound; i += step)`.
    pub fn trip_count(&self) -> Option<u32> {
        let (start, bound, step) = (self.start?, self.bound?, self.step?);
        if step <= 0 || bound <= start {
            return if bound <= start { Some(0) } else { None };
        }
        Some(((bound - start + step - 1) / step) as u32)
    }
}

/// A function in IR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrFunction {
    /// Function name.
    pub name: String,
    /// The source function this was lowered from.
    pub source: FunctionId,
    /// Tracked variables.
    pub vars: Vec<DebugVar>,
    /// Scope tree (index 0 is the function root).
    pub scopes: Vec<ScopeKind>,
    /// Number of frame slots used by address-taken locals.
    pub slots: u32,
    /// Next unused temp number.
    pub next_temp: u32,
    /// The instruction stream.
    pub insts: Vec<Inst>,
    /// Known counted loops.
    pub loops: Vec<LoopRegion>,
    /// Home temps of the parameters, in order.
    pub param_temps: Vec<Temp>,
    /// Declaration line of the function.
    pub decl_line: u32,
    /// Whether the function is side-effect free and returns the given
    /// constant (computed by lowering; used by the inter-procedural passes).
    pub pure_const: Option<i64>,
}

impl IrFunction {
    /// Allocate a fresh temp.
    pub fn new_temp(&mut self) -> Temp {
        let t = Temp(self.next_temp);
        self.next_temp += 1;
        t
    }

    /// Allocate a fresh block label (labels live in the same numbering space
    /// as temps for simplicity of uniqueness).
    pub fn new_label(&mut self) -> BlockLabel {
        let l = BlockLabel(self.next_temp);
        self.next_temp += 1;
        l
    }

    /// Add a scope and return its id.
    pub fn add_scope(&mut self, kind: ScopeKind) -> ScopeId {
        self.scopes.push(kind);
        ScopeId(self.scopes.len() as u32 - 1)
    }

    /// Add a tracked variable and return its id.
    pub fn add_var(&mut self, var: DebugVar) -> DebugVarId {
        self.vars.push(var);
        DebugVarId(self.vars.len() as u32 - 1)
    }

    /// Index of the instruction holding `Label(label)`, if present.
    pub fn label_index(&self, label: BlockLabel) -> Option<usize> {
        self.insts
            .iter()
            .position(|i| matches!(i.op, Op::Label(l) if l == label))
    }

    /// Remove `Nop` instructions (labels are never Nops so branch targets
    /// stay valid).
    pub fn remove_nops(&mut self) {
        self.insts.retain(|i| !matches!(i.op, Op::Nop));
    }

    /// Number of non-debug, non-label instructions (a rough size measure
    /// used by the inliner).
    pub fn code_size(&self) -> usize {
        self.insts
            .iter()
            .filter(|i| !matches!(i.op, Op::DbgValue { .. } | Op::Label(_) | Op::Nop))
            .count()
    }

    /// All labels referenced by branch instructions.
    pub fn referenced_labels(&self) -> Vec<BlockLabel> {
        let mut out = Vec::new();
        for inst in &self.insts {
            match inst.op {
                Op::Jump(l)
                | Op::BranchZero { target: l, .. }
                | Op::BranchNonZero { target: l, .. } => out.push(l),
                _ => {}
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A whole program in IR form. Function indices match the source program's
/// [`FunctionId`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrProgram {
    /// Functions in source order.
    pub functions: Vec<IrFunction>,
}

impl IrProgram {
    /// The IR function lowered from a source function.
    pub fn function(&self, id: FunctionId) -> &IrFunction {
        &self.functions[id.0]
    }

    /// Total instruction count.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(|f| f.insts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_def_and_uses() {
        let op = Op::Bin {
            dst: Temp(3),
            op: BinOp::Add,
            lhs: Value::Temp(Temp(1)),
            rhs: Value::Const(2),
        };
        assert_eq!(op.def(), Some(Temp(3)));
        assert_eq!(op.uses(), vec![Value::Temp(Temp(1)), Value::Const(2)]);
        assert!(op.is_removable_def());
    }

    #[test]
    fn volatile_loads_are_not_removable() {
        let op = Op::LoadGlobal {
            dst: Temp(0),
            global: GlobalId(0),
            index: None,
            volatile: true,
        };
        assert!(!op.is_removable_def());
        let nonvolatile = Op::LoadGlobal {
            dst: Temp(0),
            global: GlobalId(0),
            index: None,
            volatile: false,
        };
        assert!(nonvolatile.is_removable_def());
    }

    #[test]
    fn replace_uses_rewrites_operands() {
        let mut op = Op::StoreGlobal {
            global: GlobalId(0),
            index: Some(Value::Temp(Temp(1))),
            value: Value::Temp(Temp(1)),
            volatile: false,
        };
        op.replace_uses(Temp(1), Value::Const(7));
        assert_eq!(op.uses(), vec![Value::Const(7), Value::Const(7)]);
    }

    #[test]
    fn loop_trip_count() {
        let mut region = LoopRegion {
            header: BlockLabel(0),
            exit: BlockLabel(1),
            header_line: 4,
            iv_var: None,
            iv_temp: None,
            start: Some(0),
            bound: Some(10),
            step: Some(3),
        };
        assert_eq!(region.trip_count(), Some(4));
        region.bound = Some(0);
        assert_eq!(region.trip_count(), Some(0));
        region.step = None;
        assert_eq!(region.trip_count(), None);
    }

    #[test]
    fn function_helpers() {
        let mut f = IrFunction {
            name: "main".into(),
            source: FunctionId(0),
            vars: Vec::new(),
            scopes: vec![ScopeKind::Function],
            slots: 0,
            next_temp: 0,
            insts: Vec::new(),
            loops: Vec::new(),
            param_temps: Vec::new(),
            decl_line: 1,
            pure_const: None,
        };
        let t = f.new_temp();
        let l = f.new_label();
        assert_ne!(t.0, l.0);
        f.insts.push(Inst::new(Op::Label(l), 1));
        f.insts.push(Inst::new(Op::Jump(l), 2));
        f.insts.push(Inst::new(Op::Nop, 2));
        assert_eq!(f.label_index(l), Some(0));
        assert_eq!(f.referenced_labels(), vec![l]);
        f.remove_nops();
        assert_eq!(f.insts.len(), 2);
        assert_eq!(f.code_size(), 1);
    }
}
