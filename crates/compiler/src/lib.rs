//! An optimizing MiniC compiler with two personalities, injected
//! debug-information defects, and full DWARF-style debug output.
//!
//! This crate is the reproduction's substitute for gcc and clang. It lowers
//! MiniC to a register IR, runs a per-configuration pass pipeline
//! ([`config::CompilerConfig`] selects personality, version and optimization
//! level), and generates code for the `holes-machine` VM together with
//! DWARF-modelled debug information (`holes-debuginfo`).
//!
//! Two properties matter for the paper's methodology and are enforced by this
//! crate's tests:
//!
//! 1. **Semantics preservation** — at every optimization level the compiled
//!    executable produces the same observable outcome as the MiniC reference
//!    interpreter (differential testing).
//! 2. **Availability by default** — with injected defects disabled
//!    ([`CompilerConfig::without_defects`]), optimization never removes a
//!    variable's availability at the program points the three conjectures
//!    inspect; every conjecture violation is therefore attributable to a
//!    catalogued defect, exactly like the paper attributes violations to
//!    compiler bugs.
//!
//! # Example
//!
//! ```
//! use holes_compiler::{compile, CompilerConfig, OptLevel, Personality};
//! use holes_minic::build::ProgramBuilder;
//! use holes_minic::ast::{Expr, LValue, Stmt, Ty};
//!
//! let mut b = ProgramBuilder::new();
//! let g = b.global("g", Ty::I32, false, vec![0]);
//! let main = b.function("main", Ty::I32);
//! b.push(main, Stmt::assign(LValue::global(g), Expr::lit(41)));
//! b.push(main, Stmt::ret(Some(Expr::lit(0))));
//! let mut program = b.finish();
//! program.assign_lines();
//!
//! let exe = compile(&program, &CompilerConfig::new(Personality::Ccg, OptLevel::O2));
//! let outcome = exe.run()?;
//! assert_eq!(outcome.final_globals[0], vec![41]);
//! # Ok::<(), holes_machine::MachineError>(())
//! ```

#![forbid(unsafe_code)]

pub mod backend;
pub mod codegen;
pub mod codegen_stack;
pub mod config;
pub mod defects;
pub mod executable;
pub mod frame;
pub mod ir;
pub mod lower;
pub mod passes;
pub mod regalloc;
pub mod vcode;

pub use backend::{backend_for, Backend};
pub use config::{BackendKind, CompilerConfig, Fingerprint, OptLevel, Personality};
pub use defects::{catalogue, stack_catalogue, Defect, DefectAction};
pub use executable::Executable;
pub use passes::PipelineReport;

use holes_minic::ast::Program;

/// The synthetic source-file name every compilation uses.
const SOURCE_NAME: &str = "testcase.c";

/// Compile a MiniC program (whose lines have been assigned) under the given
/// configuration. The optimization pipeline is backend-independent; the
/// configuration's [`BackendKind`] selects which [`Backend`] lowers the
/// optimized IR to machine code and location descriptions.
pub fn compile(program: &Program, config: &CompilerConfig) -> Executable {
    let mut ir = lower::lower_program(program);
    let report = passes::run_pipeline(&mut ir, program, config);
    codegen_ir(program, &ir, config, report)
}

/// Lower an optimized IR program through the configuration's backend and
/// assemble the executable (shared by [`compile`], [`compile_with_snapshots`],
/// and [`PassSnapshots::codegen_budget`]).
fn codegen_ir(
    program: &Program,
    ir: &ir::IrProgram,
    config: &CompilerConfig,
    mut report: PipelineReport,
) -> Executable {
    let backend = backend::backend_for(config.backend);
    let (machine, debug, applied) = backend.codegen(program, ir, SOURCE_NAME, config);
    report
        .defects_applied
        .extend(applied.iter().map(|id| (*id).to_owned()));
    Executable {
        machine,
        debug,
        config: config.clone(),
        report,
    }
}

/// The recorded pass-prefix checkpoints of one full pipeline run.
///
/// Triage bisection probes the *same* configuration at many pass budgets,
/// and a budget-`k` compilation is by construction a strict prefix of the
/// unbudgeted pipeline. Recording a post-pass IR checkpoint while the full
/// schedule runs once ([`compile_with_snapshots`], or
/// [`PassSnapshots::record`] when the executable is not needed) therefore
/// lets any `with_pass_budget(k)` executable be derived by **code
/// generation alone** ([`PassSnapshots::codegen_budget`]): clone checkpoint
/// `k`, apply the code-generation stage's defects, and lower it through the
/// backend. The derived executable is byte-identical to a from-scratch
/// budgeted compile — the unit tests hold every budget of every
/// personality, level, and backend to full structural equality.
#[derive(Debug, Clone)]
pub struct PassSnapshots {
    /// The budget-free configuration the pipeline ran as.
    base: CompilerConfig,
    /// IR after the first `k` scheduled passes, `k = 0..=passes`.
    checkpoints: Vec<ir::IrProgram>,
    /// The passes that actually ran, in order.
    passes_run: Vec<String>,
    /// Pass-level defect ids in application order (no isel entries).
    pass_defects: Vec<String>,
    /// `defect_counts[k]` = pass-level defects applied within the first `k`
    /// passes.
    defect_counts: Vec<usize>,
}

impl PassSnapshots {
    fn from_checkpoints(config: &CompilerConfig, recorded: passes::PipelineCheckpoints) -> Self {
        let passes = recorded.checkpoints.len() - 1;
        let pass_defect_count = recorded.defect_counts[passes];
        PassSnapshots {
            base: config.clone(),
            checkpoints: recorded.checkpoints,
            passes_run: recorded.report.passes_run,
            pass_defects: recorded.report.defects_applied[..pass_defect_count].to_vec(),
            defect_counts: recorded.defect_counts,
        }
    }

    /// Run the pipeline once (without code generation) and record every
    /// checkpoint — the entry point for callers that only need budget
    /// derivations, e.g. a triage bisection whose full-pipeline executable
    /// is already cached.
    pub fn record(program: &Program, config: &CompilerConfig) -> PassSnapshots {
        let mut ir = lower::lower_program(program);
        let recorded = passes::run_pipeline_with_checkpoints(&mut ir, program, config);
        PassSnapshots::from_checkpoints(config, recorded)
    }

    /// The configuration the checkpoints belong to.
    pub fn base_config(&self) -> &CompilerConfig {
        &self.base
    }

    /// Number of passes the recorded pipeline ran (budgets at or beyond
    /// this derive the full pipeline).
    pub fn pass_count(&self) -> usize {
        self.passes_run.len()
    }

    /// Derive the executable of `config` — which must be the recorded base
    /// configuration plus a pass budget — from the matching checkpoint, by
    /// code generation alone: no optimization pass is re-run.
    ///
    /// # Panics
    ///
    /// Panics if `config` carries no pass budget or differs from the base
    /// configuration in anything but the budget.
    pub fn codegen_budget(&self, program: &Program, config: &CompilerConfig) -> Executable {
        let budget = config
            .pass_budget
            .expect("codegen_budget needs a budgeted configuration");
        let mut base_of = config.clone();
        base_of.pass_budget = None;
        assert!(
            base_of == self.base,
            "snapshots of {} cannot derive {}",
            self.base.describe(),
            config.describe()
        );
        let cut = budget.min(self.pass_count());
        let mut ir = self.checkpoints[cut].clone();
        let mut report = PipelineReport {
            passes_run: self.passes_run[..cut].to_vec(),
            defects_applied: self.pass_defects[..self.defect_counts[cut]].to_vec(),
        };
        // The code-generation stage and its defects run for every budget,
        // exactly as `passes::run_pipeline` applies them after truncation.
        for defect in defects::active_defects(config, "isel") {
            for func in &mut ir.functions {
                defects::apply_defect(func, &defect);
            }
            report.defects_applied.push(defect.id.to_owned());
        }
        codegen_ir(program, &ir, config, report)
    }
}

/// [`compile`], additionally recording the pass-prefix checkpoints of the
/// run (see [`PassSnapshots`]). The returned executable is identical to
/// `compile(program, config)`.
pub fn compile_with_snapshots(
    program: &Program,
    config: &CompilerConfig,
) -> (Executable, PassSnapshots) {
    let mut ir = lower::lower_program(program);
    let recorded = passes::run_pipeline_with_checkpoints(&mut ir, program, config);
    let report = recorded.report.clone();
    let snapshots = PassSnapshots::from_checkpoints(config, recorded);
    let executable = codegen_ir(program, &ir, config, report);
    (executable, snapshots)
}

/// Compile the same program at every optimization level of a personality's
/// version (including `-O0`), as the paper's campaigns do.
pub fn compile_all_levels(
    program: &Program,
    personality: Personality,
    version: usize,
) -> Vec<Executable> {
    let mut levels = vec![OptLevel::O0];
    levels.extend_from_slice(personality.levels());
    levels
        .into_iter()
        .map(|level| {
            let config = CompilerConfig::new(personality, level).with_version(version);
            compile(program, &config)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use holes_minic::interp::Interpreter;
    use holes_progen::ProgramGenerator;

    #[test]
    fn all_levels_preserve_semantics_on_generated_programs() {
        for seed in 0..12u64 {
            let generated = ProgramGenerator::from_seed(seed).generate();
            let reference = Interpreter::new(&generated.program)
                .run()
                .expect("reference runs");
            for personality in [Personality::Ccg, Personality::Lcc] {
                for level in personality.levels().iter().chain([&OptLevel::O0]) {
                    let config = CompilerConfig::new(personality, *level);
                    let exe = compile(&generated.program, &config);
                    let outcome = exe.run().unwrap_or_else(|e| {
                        panic!("seed {seed} {personality} {level}: execution failed: {e}")
                    });
                    assert!(
                        outcome.matches(&reference),
                        "seed {seed} {personality} {level}: outcome diverges\n{outcome:?}\n{reference:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn optimization_reduces_code_size() {
        let generated = ProgramGenerator::from_seed(3).generate();
        let o0 = compile(
            &generated.program,
            &CompilerConfig::new(Personality::Ccg, OptLevel::O0),
        );
        let o2 = compile(
            &generated.program,
            &CompilerConfig::new(Personality::Ccg, OptLevel::O2),
        );
        assert!(o2.code_size() <= o0.code_size());
    }

    #[test]
    fn defect_free_and_defective_compilations_behave_identically() {
        // Injected defects corrupt only debug information, never observable
        // behaviour: both compilations must produce the same outcome and the
        // same steppable lines (they may differ in register assignment, since
        // debug bindings extend live ranges).
        let generated = ProgramGenerator::from_seed(11).generate();
        for personality in [Personality::Ccg, Personality::Lcc] {
            for level in personality.levels() {
                let with = compile(
                    &generated.program,
                    &CompilerConfig::new(personality, *level),
                );
                let without = compile(
                    &generated.program,
                    &CompilerConfig::new(personality, *level).without_defects(),
                );
                let with_outcome = with.run().unwrap();
                let without_outcome = without.run().unwrap();
                assert_eq!(
                    (
                        &with_outcome.sink_calls,
                        &with_outcome.final_globals,
                        with_outcome.return_value
                    ),
                    (
                        &without_outcome.sink_calls,
                        &without_outcome.final_globals,
                        without_outcome.return_value
                    ),
                    "{personality} {level}: defects changed observable behaviour"
                );
                assert_eq!(
                    with.steppable_lines(),
                    without.steppable_lines(),
                    "{personality} {level}: defects changed the line table"
                );
            }
        }
    }

    #[test]
    fn stack_backend_defects_change_debug_info_but_never_behaviour() {
        // The stack backend's spill-loss defect corrupts only location
        // descriptions: code, observable outcome, and line table are
        // untouched, exactly like the IR-level defect catalogue.
        let generated = ProgramGenerator::from_seed(11).generate();
        let reference = Interpreter::new(&generated.program).run().unwrap();
        for personality in [Personality::Ccg, Personality::Lcc] {
            for level in personality.levels() {
                let config = CompilerConfig::new(personality, *level)
                    .with_backend(crate::BackendKind::Stack);
                let with = compile(&generated.program, &config);
                let without = compile(&generated.program, &config.clone().without_defects());
                assert!(with.run().unwrap().matches(&reference));
                assert!(without.run().unwrap().matches(&reference));
                // (Machine code may differ in allocation, since debug
                // bindings participate in first-seen allocation order —
                // the same allowance the register-backend test makes.)
                assert_eq!(with.steppable_lines(), without.steppable_lines());
            }
        }
    }

    #[test]
    fn versions_affect_debug_info_but_not_outcome() {
        let generated = ProgramGenerator::from_seed(21).generate();
        let reference = Interpreter::new(&generated.program).run().unwrap();
        for version in 0..6 {
            let exe = compile(
                &generated.program,
                &CompilerConfig::new(Personality::Ccg, OptLevel::O2).with_version(version),
            );
            assert!(exe.run().unwrap().matches(&reference), "version {version}");
        }
    }

    #[test]
    fn snapshot_derived_budget_compiles_equal_from_scratch_compiles() {
        // The pass-prefix snapshot contract: for every budget k, deriving
        // the executable from checkpoint k (codegen only) is structurally
        // identical to truncating the pipeline and compiling from scratch —
        // across personalities, levels, and backends, defects included.
        let generated = ProgramGenerator::from_seed(7).generate();
        for personality in [Personality::Ccg, Personality::Lcc] {
            for &level in &[OptLevel::O2, OptLevel::Og] {
                for backend in BackendKind::ALL {
                    let config = CompilerConfig::new(personality, level).with_backend(backend);
                    let (full, snapshots) = compile_with_snapshots(&generated.program, &config);
                    assert_eq!(
                        full,
                        compile(&generated.program, &config),
                        "{personality} {level} {backend}: recording changed the full compile"
                    );
                    assert_eq!(snapshots.base_config(), &config);
                    assert_eq!(snapshots.pass_count(), full.report.passes_run.len());
                    for budget in 0..=snapshots.pass_count() {
                        let budgeted = config.clone().with_pass_budget(budget);
                        let derived = snapshots.codegen_budget(&generated.program, &budgeted);
                        let scratch = compile(&generated.program, &budgeted);
                        assert_eq!(
                            derived, scratch,
                            "{personality} {level} {backend} budget {budget}: derived \
                             executable diverged from the from-scratch compile"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn snapshot_recording_honours_disabled_passes() {
        // Disabled passes shrink the effective schedule; budgets index into
        // that schedule, and the snapshots must agree with from-scratch
        // compiles of the same (disabled, budgeted) configuration.
        let generated = ProgramGenerator::from_seed(9).generate();
        let config = CompilerConfig::new(Personality::Ccg, OptLevel::O2)
            .with_disabled_pass("inline")
            .with_disabled_pass("tree-dce");
        let snapshots = PassSnapshots::record(&generated.program, &config);
        assert!(snapshots.pass_count() < config.pass_schedule().len());
        for budget in [0, 1, snapshots.pass_count() / 2, snapshots.pass_count()] {
            let budgeted = config.clone().with_pass_budget(budget);
            assert_eq!(
                snapshots.codegen_budget(&generated.program, &budgeted),
                compile(&generated.program, &budgeted),
                "budget {budget}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot derive")]
    fn snapshots_refuse_foreign_configurations() {
        let generated = ProgramGenerator::from_seed(2).generate();
        let config = CompilerConfig::new(Personality::Lcc, OptLevel::O2);
        let snapshots = PassSnapshots::record(&generated.program, &config);
        let foreign = CompilerConfig::new(Personality::Lcc, OptLevel::O3).with_pass_budget(1);
        let _ = snapshots.codegen_budget(&generated.program, &foreign);
    }

    #[test]
    fn compile_all_levels_includes_o0_baseline() {
        let generated = ProgramGenerator::from_seed(5).generate();
        let exes = compile_all_levels(&generated.program, Personality::Lcc, 4);
        assert_eq!(exes.len(), 1 + Personality::Lcc.levels().len());
        assert_eq!(exes[0].config.level, OptLevel::O0);
        assert!(exes[0].report.passes_run.is_empty());
    }
}
