//! An optimizing MiniC compiler with two personalities, injected
//! debug-information defects, and full DWARF-style debug output.
//!
//! This crate is the reproduction's substitute for gcc and clang. It lowers
//! MiniC to a register IR, runs a per-configuration pass pipeline
//! ([`config::CompilerConfig`] selects personality, version and optimization
//! level), and generates code for the `holes-machine` VM together with
//! DWARF-modelled debug information (`holes-debuginfo`).
//!
//! Two properties matter for the paper's methodology and are enforced by this
//! crate's tests:
//!
//! 1. **Semantics preservation** — at every optimization level the compiled
//!    executable produces the same observable outcome as the MiniC reference
//!    interpreter (differential testing).
//! 2. **Availability by default** — with injected defects disabled
//!    ([`CompilerConfig::without_defects`]), optimization never removes a
//!    variable's availability at the program points the three conjectures
//!    inspect; every conjecture violation is therefore attributable to a
//!    catalogued defect, exactly like the paper attributes violations to
//!    compiler bugs.
//!
//! # Example
//!
//! ```
//! use holes_compiler::{compile, CompilerConfig, OptLevel, Personality};
//! use holes_minic::build::ProgramBuilder;
//! use holes_minic::ast::{Expr, LValue, Stmt, Ty};
//!
//! let mut b = ProgramBuilder::new();
//! let g = b.global("g", Ty::I32, false, vec![0]);
//! let main = b.function("main", Ty::I32);
//! b.push(main, Stmt::assign(LValue::global(g), Expr::lit(41)));
//! b.push(main, Stmt::ret(Some(Expr::lit(0))));
//! let mut program = b.finish();
//! program.assign_lines();
//!
//! let exe = compile(&program, &CompilerConfig::new(Personality::Ccg, OptLevel::O2));
//! let outcome = exe.run()?;
//! assert_eq!(outcome.final_globals[0], vec![41]);
//! # Ok::<(), holes_machine::MachineError>(())
//! ```

#![forbid(unsafe_code)]

pub mod backend;
pub mod codegen;
pub mod codegen_stack;
pub mod config;
pub mod defects;
pub mod executable;
pub mod ir;
pub mod lower;
pub mod passes;

pub use backend::{backend_for, Backend};
pub use config::{BackendKind, CompilerConfig, Fingerprint, OptLevel, Personality};
pub use defects::{catalogue, stack_catalogue, Defect, DefectAction};
pub use executable::Executable;
pub use passes::PipelineReport;

use holes_minic::ast::Program;

/// Compile a MiniC program (whose lines have been assigned) under the given
/// configuration. The optimization pipeline is backend-independent; the
/// configuration's [`BackendKind`] selects which [`Backend`] lowers the
/// optimized IR to machine code and location descriptions.
pub fn compile(program: &Program, config: &CompilerConfig) -> Executable {
    let mut ir = lower::lower_program(program);
    let mut report = passes::run_pipeline(&mut ir, program, config);
    let backend = backend::backend_for(config.backend);
    let (machine, debug, applied) = backend.codegen(program, &ir, "testcase.c", config);
    report
        .defects_applied
        .extend(applied.iter().map(|id| (*id).to_owned()));
    Executable {
        machine,
        debug,
        config: config.clone(),
        report,
    }
}

/// Compile the same program at every optimization level of a personality's
/// version (including `-O0`), as the paper's campaigns do.
pub fn compile_all_levels(
    program: &Program,
    personality: Personality,
    version: usize,
) -> Vec<Executable> {
    let mut levels = vec![OptLevel::O0];
    levels.extend_from_slice(personality.levels());
    levels
        .into_iter()
        .map(|level| {
            let config = CompilerConfig::new(personality, level).with_version(version);
            compile(program, &config)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use holes_minic::interp::Interpreter;
    use holes_progen::ProgramGenerator;

    #[test]
    fn all_levels_preserve_semantics_on_generated_programs() {
        for seed in 0..12u64 {
            let generated = ProgramGenerator::from_seed(seed).generate();
            let reference = Interpreter::new(&generated.program)
                .run()
                .expect("reference runs");
            for personality in [Personality::Ccg, Personality::Lcc] {
                for level in personality.levels().iter().chain([&OptLevel::O0]) {
                    let config = CompilerConfig::new(personality, *level);
                    let exe = compile(&generated.program, &config);
                    let outcome = exe.run().unwrap_or_else(|e| {
                        panic!("seed {seed} {personality} {level}: execution failed: {e}")
                    });
                    assert!(
                        outcome.matches(&reference),
                        "seed {seed} {personality} {level}: outcome diverges\n{outcome:?}\n{reference:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn optimization_reduces_code_size() {
        let generated = ProgramGenerator::from_seed(3).generate();
        let o0 = compile(
            &generated.program,
            &CompilerConfig::new(Personality::Ccg, OptLevel::O0),
        );
        let o2 = compile(
            &generated.program,
            &CompilerConfig::new(Personality::Ccg, OptLevel::O2),
        );
        assert!(o2.code_size() <= o0.code_size());
    }

    #[test]
    fn defect_free_and_defective_compilations_behave_identically() {
        // Injected defects corrupt only debug information, never observable
        // behaviour: both compilations must produce the same outcome and the
        // same steppable lines (they may differ in register assignment, since
        // debug bindings extend live ranges).
        let generated = ProgramGenerator::from_seed(11).generate();
        for personality in [Personality::Ccg, Personality::Lcc] {
            for level in personality.levels() {
                let with = compile(
                    &generated.program,
                    &CompilerConfig::new(personality, *level),
                );
                let without = compile(
                    &generated.program,
                    &CompilerConfig::new(personality, *level).without_defects(),
                );
                let with_outcome = with.run().unwrap();
                let without_outcome = without.run().unwrap();
                assert_eq!(
                    (
                        &with_outcome.sink_calls,
                        &with_outcome.final_globals,
                        with_outcome.return_value
                    ),
                    (
                        &without_outcome.sink_calls,
                        &without_outcome.final_globals,
                        without_outcome.return_value
                    ),
                    "{personality} {level}: defects changed observable behaviour"
                );
                assert_eq!(
                    with.steppable_lines(),
                    without.steppable_lines(),
                    "{personality} {level}: defects changed the line table"
                );
            }
        }
    }

    #[test]
    fn stack_backend_defects_change_debug_info_but_never_behaviour() {
        // The stack backend's spill-loss defect corrupts only location
        // descriptions: code, observable outcome, and line table are
        // untouched, exactly like the IR-level defect catalogue.
        let generated = ProgramGenerator::from_seed(11).generate();
        let reference = Interpreter::new(&generated.program).run().unwrap();
        for personality in [Personality::Ccg, Personality::Lcc] {
            for level in personality.levels() {
                let config = CompilerConfig::new(personality, *level)
                    .with_backend(crate::BackendKind::Stack);
                let with = compile(&generated.program, &config);
                let without = compile(&generated.program, &config.clone().without_defects());
                assert!(with.run().unwrap().matches(&reference));
                assert!(without.run().unwrap().matches(&reference));
                // (Machine code may differ in allocation, since debug
                // bindings participate in first-seen allocation order —
                // the same allowance the register-backend test makes.)
                assert_eq!(with.steppable_lines(), without.steppable_lines());
            }
        }
    }

    #[test]
    fn versions_affect_debug_info_but_not_outcome() {
        let generated = ProgramGenerator::from_seed(21).generate();
        let reference = Interpreter::new(&generated.program).run().unwrap();
        for version in 0..6 {
            let exe = compile(
                &generated.program,
                &CompilerConfig::new(Personality::Ccg, OptLevel::O2).with_version(version),
            );
            assert!(exe.run().unwrap().matches(&reference), "version {version}");
        }
    }

    #[test]
    fn compile_all_levels_includes_o0_baseline() {
        let generated = ProgramGenerator::from_seed(5).generate();
        let exes = compile_all_levels(&generated.program, Personality::Lcc, 4);
        assert_eq!(exes.len(), 1 + Personality::Lcc.levels().len());
        assert_eq!(exes[0].config.level, OptLevel::O0);
        assert!(exes[0].report.passes_run.is_empty());
    }
}
