//! Lowering from the MiniC AST to the compiler IR.
//!
//! Lowering is the *unoptimized* translation: every statement becomes a
//! straightforward instruction sequence tagged with its source line, every
//! local variable gets a *home* (a dedicated temp, or a frame slot when its
//! address is taken), and a `DbgValue` binding is emitted after every
//! assignment so that, before any optimization runs, every variable is
//! available at every line of its lifetime — the `-O0` baseline the paper's
//! metrics are computed against.

use std::collections::HashMap;

use holes_minic::ast::{
    Callee, Expr, ExprKind, Function, FunctionId, LValue, LocalId, Program, Stmt, StmtKind, Ty,
    VarRef,
};

use crate::ir::{
    BlockLabel, DbgLoc, DebugVar, DebugVarId, Inst, IrFunction, IrProgram, LoopRegion, Op, ScopeId,
    ScopeKind, SlotId, Temp, Value,
};

/// Lower a whole program.
pub fn lower_program(program: &Program) -> IrProgram {
    let functions = program
        .functions_with_ids()
        .map(|(id, func)| FunctionLowerer::new(program, id, func).lower())
        .collect();
    IrProgram { functions }
}

/// Where a local variable lives in the unoptimized IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Home {
    Temp(Temp),
    Slot(SlotId),
}

struct FunctionLowerer<'p> {
    program: &'p Program,
    func: &'p Function,
    ir: IrFunction,
    homes: Vec<Home>,
    local_vars: Vec<DebugVarId>,
    labels: HashMap<u32, BlockLabel>,
    current_scope: ScopeId,
}

impl<'p> FunctionLowerer<'p> {
    fn new(program: &'p Program, id: FunctionId, func: &'p Function) -> FunctionLowerer<'p> {
        let ir = IrFunction {
            name: func.name.clone(),
            source: id,
            vars: Vec::new(),
            scopes: vec![ScopeKind::Function],
            slots: 0,
            next_temp: 0,
            insts: Vec::new(),
            loops: Vec::new(),
            param_temps: Vec::new(),
            decl_line: func.decl_line,
            pure_const: pure_const_value(func),
        };
        FunctionLowerer {
            program,
            func,
            ir,
            homes: Vec::new(),
            local_vars: Vec::new(),
            labels: HashMap::new(),
            current_scope: ScopeId(0),
        }
    }

    fn lower(mut self) -> IrFunction {
        // Allocate homes and debug variables for every local.
        for (i, local) in self.func.locals.iter().enumerate() {
            let home = if local.address_taken {
                let slot = SlotId(self.ir.slots);
                self.ir.slots += 1;
                Home::Slot(slot)
            } else {
                Home::Temp(self.ir.new_temp())
            };
            self.homes.push(home);
            let var = self.ir.add_var(DebugVar {
                name: local.name.clone(),
                scope: ScopeId(0),
                is_param: local.is_param,
                decl_line: self.func.decl_line,
                suppress_die: false,
            });
            self.local_vars.push(var);
            if local.is_param {
                if let Home::Temp(t) = home {
                    self.ir.param_temps.push(t);
                } else {
                    // Address-taken parameter: give it an incoming temp that
                    // is spilled to the slot at entry.
                    let incoming = self.ir.new_temp();
                    self.ir.param_temps.push(incoming);
                }
            }
            let _ = i;
        }
        // Parameter prologue: wrap to the declared type and bind debug info.
        for (i, param) in self.func.params().enumerate() {
            let local = self.func.local(param);
            let line = self.func.decl_line;
            let incoming = self.ir.param_temps[i];
            match self.homes[param.0] {
                Home::Temp(home) => {
                    debug_assert_eq!(home, incoming);
                    if local.ty.bits() < 64 {
                        self.emit(
                            Op::Trunc {
                                dst: home,
                                src: Value::Temp(home),
                                bits: local.ty.bits(),
                                signed: local.ty.signed(),
                            },
                            line,
                        );
                    }
                    self.emit(
                        Op::DbgValue {
                            var: self.local_vars[param.0],
                            loc: DbgLoc::Value(Value::Temp(home)),
                        },
                        line,
                    );
                }
                Home::Slot(slot) => {
                    self.emit(
                        Op::StoreSlot {
                            slot,
                            value: Value::Temp(incoming),
                        },
                        line,
                    );
                    self.emit(
                        Op::DbgValue {
                            var: self.local_vars[param.0],
                            loc: DbgLoc::Slot(slot),
                        },
                        line,
                    );
                }
            }
        }
        let body = self.func.body.clone();
        self.lower_stmts(&body);
        // Guarantee the function always returns.
        self.emit(Op::Ret { value: None }, self.func.decl_line);
        self.ir
    }

    fn emit(&mut self, op: Op, line: u32) {
        let scope = self.current_scope;
        self.ir.insts.push(Inst::in_scope(op, line, scope));
    }

    fn source_label(&mut self, label: u32) -> BlockLabel {
        if let Some(l) = self.labels.get(&label) {
            return *l;
        }
        let l = self.ir.new_label();
        self.labels.insert(label, l);
        l
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            self.lower_stmt(stmt);
        }
    }

    fn lower_stmt(&mut self, stmt: &Stmt) {
        let line = stmt.line;
        match &stmt.kind {
            StmtKind::Decl { local, init } => {
                let value = match init {
                    Some(e) => self.lower_expr(e, line),
                    None => Value::Const(0),
                };
                self.assign_local(*local, value, line);
            }
            StmtKind::Assign { target, value } => {
                let v = self.lower_expr(value, line);
                self.lower_store(target, v, line);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => self.lower_for(init.as_deref(), cond.as_ref(), step.as_deref(), body, line),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.lower_expr(cond, line);
                let else_label = self.ir.new_label();
                let end_label = self.ir.new_label();
                self.emit(
                    Op::BranchZero {
                        cond: c,
                        target: else_label,
                    },
                    line,
                );
                self.lower_stmts(then_branch);
                self.emit(Op::Jump(end_label), line);
                self.emit(Op::Label(else_label), line);
                self.lower_stmts(else_branch);
                self.emit(Op::Label(end_label), line);
            }
            StmtKind::Call { callee, args } => {
                let values: Vec<Value> = args.iter().map(|a| self.lower_expr(a, line)).collect();
                match callee {
                    Callee::Opaque => self.emit(Op::CallSink { args: values }, line),
                    Callee::Internal(f) => self.emit(
                        Op::Call {
                            dst: None,
                            callee: *f,
                            args: values,
                        },
                        line,
                    ),
                }
            }
            StmtKind::Return(value) => {
                let v = value.as_ref().map(|e| self.lower_expr(e, line));
                let wrapped = v.map(|value| self.wrap_value(value, self.func.ret_ty, line));
                self.emit(Op::Ret { value: wrapped }, line);
            }
            StmtKind::Goto(label) => {
                let l = self.source_label(*label);
                self.emit(Op::Jump(l), line);
            }
            StmtKind::Label(label) => {
                let l = self.source_label(*label);
                self.emit(Op::Label(l), line);
            }
            StmtKind::Block(body) => {
                let parent = self.current_scope;
                let scope = self.ir.add_scope(ScopeKind::Block { parent });
                self.current_scope = scope;
                self.lower_stmts(body);
                self.current_scope = parent;
            }
            StmtKind::Empty => {}
        }
    }

    fn lower_for(
        &mut self,
        init: Option<&Stmt>,
        cond: Option<&Expr>,
        step: Option<&Stmt>,
        body: &[Stmt],
        line: u32,
    ) {
        if let Some(s) = init {
            self.lower_stmt(s);
        }
        let header = self.ir.new_label();
        let exit = self.ir.new_label();
        // Record canonical induction-variable metadata before lowering the
        // body (the loop passes consume it).
        let region = self.recognize_loop(init, cond, step, header, exit, line);
        self.emit(Op::Label(header), line);
        if let Some(c) = cond {
            let cv = self.lower_expr(c, line);
            self.emit(
                Op::BranchZero {
                    cond: cv,
                    target: exit,
                },
                line,
            );
        }
        self.lower_stmts(body);
        if let Some(s) = step {
            self.lower_stmt(s);
        }
        self.emit(Op::Jump(header), line);
        self.emit(Op::Label(exit), line);
        if let Some(region) = region {
            self.ir.loops.push(region);
        }
    }

    fn recognize_loop(
        &mut self,
        init: Option<&Stmt>,
        cond: Option<&Expr>,
        step: Option<&Stmt>,
        header: BlockLabel,
        exit: BlockLabel,
        line: u32,
    ) -> Option<LoopRegion> {
        let assigned = |stmt: &Stmt| -> Option<(LocalId, Expr)> {
            match &stmt.kind {
                StmtKind::Assign {
                    target: LValue::Var(VarRef::Local(l)),
                    value,
                } => Some((*l, value.clone())),
                StmtKind::Decl {
                    local,
                    init: Some(value),
                } => Some((*local, value.clone())),
                _ => None,
            }
        };
        let (iv, init_expr) = init.and_then(assigned)?;
        let start = match init_expr.kind {
            ExprKind::Lit(v) => Some(v),
            _ => None,
        };
        let bound = cond.and_then(|c| match &c.kind {
            ExprKind::Binary(holes_minic::ast::BinOp::Lt, lhs, rhs) => {
                match (&lhs.kind, &rhs.kind) {
                    (ExprKind::Var(VarRef::Local(l)), ExprKind::Lit(b)) if *l == iv => Some(*b),
                    _ => None,
                }
            }
            _ => None,
        });
        let step_val = step.and_then(assigned).and_then(|(l, e)| {
            if l != iv {
                return None;
            }
            match &e.kind {
                ExprKind::Binary(holes_minic::ast::BinOp::Add, lhs, rhs) => {
                    match (&lhs.kind, &rhs.kind) {
                        (ExprKind::Var(VarRef::Local(v)), ExprKind::Lit(s)) if *v == iv => Some(*s),
                        _ => None,
                    }
                }
                _ => None,
            }
        });
        let iv_temp = match self.homes[iv.0] {
            Home::Temp(t) => Some(t),
            Home::Slot(_) => None,
        };
        Some(LoopRegion {
            header,
            exit,
            header_line: line,
            iv_var: Some(self.local_vars[iv.0]),
            iv_temp,
            start,
            bound,
            step: step_val,
        })
    }

    fn wrap_value(&mut self, value: Value, ty: Ty, line: u32) -> Value {
        if ty.bits() >= 64 {
            return value;
        }
        if let Value::Const(c) = value {
            return Value::Const(ty.wrap(c));
        }
        let dst = self.ir.new_temp();
        self.emit(
            Op::Trunc {
                dst,
                src: value,
                bits: ty.bits(),
                signed: ty.signed(),
            },
            line,
        );
        Value::Temp(dst)
    }

    fn assign_local(&mut self, local: LocalId, value: Value, line: u32) {
        let ty = self.func.local(local).ty;
        let wrapped = self.wrap_value(value, ty, line);
        let var = self.local_vars[local.0];
        match self.homes[local.0] {
            Home::Temp(home) => {
                self.emit(
                    Op::Copy {
                        dst: home,
                        src: wrapped,
                    },
                    line,
                );
                self.emit(
                    Op::DbgValue {
                        var,
                        loc: DbgLoc::Value(Value::Temp(home)),
                    },
                    line,
                );
            }
            Home::Slot(slot) => {
                self.emit(
                    Op::StoreSlot {
                        slot,
                        value: wrapped,
                    },
                    line,
                );
                self.emit(
                    Op::DbgValue {
                        var,
                        loc: DbgLoc::Slot(slot),
                    },
                    line,
                );
            }
        }
    }

    fn lower_store(&mut self, target: &LValue, value: Value, line: u32) {
        match target {
            LValue::Var(VarRef::Local(l)) => self.assign_local(*l, value, line),
            LValue::Var(VarRef::Global(g)) => {
                let volatile = self.program.global(*g).is_volatile;
                self.emit(
                    Op::StoreGlobal {
                        global: *g,
                        index: None,
                        value,
                        volatile,
                    },
                    line,
                );
            }
            LValue::Index { base, indices } => match base {
                VarRef::Global(g) => {
                    let flat = self.flatten_index(*g, indices, line);
                    let volatile = self.program.global(*g).is_volatile;
                    self.emit(
                        Op::StoreGlobal {
                            global: *g,
                            index: Some(flat),
                            value,
                            volatile,
                        },
                        line,
                    );
                }
                VarRef::Local(_) => {
                    // Locals are never arrays in MiniC; treat as a plain
                    // assignment to keep lowering total.
                    if let VarRef::Local(l) = base {
                        self.assign_local(*l, value, line);
                    }
                }
            },
            LValue::Deref(ptr) => {
                let addr = self.read_var(*ptr, line);
                self.emit(Op::StorePtr { addr, value }, line);
            }
        }
    }

    fn read_var(&mut self, var: VarRef, line: u32) -> Value {
        match var {
            VarRef::Local(l) => match self.homes[l.0] {
                Home::Temp(t) => Value::Temp(t),
                Home::Slot(slot) => {
                    let dst = self.ir.new_temp();
                    self.emit(Op::LoadSlot { dst, slot }, line);
                    Value::Temp(dst)
                }
            },
            VarRef::Global(g) => {
                let dst = self.ir.new_temp();
                let volatile = self.program.global(g).is_volatile;
                self.emit(
                    Op::LoadGlobal {
                        dst,
                        global: g,
                        index: None,
                        volatile,
                    },
                    line,
                );
                Value::Temp(dst)
            }
        }
    }

    fn flatten_index(
        &mut self,
        global: holes_minic::ast::GlobalId,
        indices: &[Expr],
        line: u32,
    ) -> Value {
        let dims = self.program.global(global).dims.clone();
        let mut flat: Option<Value> = None;
        for (i, idx) in indices.iter().enumerate() {
            let v = self.lower_expr(idx, line);
            let dim = dims.get(i).copied().unwrap_or(1) as i64;
            flat = Some(match flat {
                None => v,
                Some(acc) => {
                    let scaled =
                        self.emit_bin(holes_minic::ast::BinOp::Mul, acc, Value::Const(dim), line);
                    self.emit_bin(holes_minic::ast::BinOp::Add, scaled, v, line)
                }
            });
        }
        flat.unwrap_or(Value::Const(0))
    }

    fn emit_bin(
        &mut self,
        op: holes_minic::ast::BinOp,
        lhs: Value,
        rhs: Value,
        line: u32,
    ) -> Value {
        let dst = self.ir.new_temp();
        self.emit(Op::Bin { dst, op, lhs, rhs }, line);
        Value::Temp(dst)
    }

    fn lower_expr(&mut self, expr: &Expr, line: u32) -> Value {
        match &expr.kind {
            ExprKind::Lit(v) => Value::Const(*v),
            ExprKind::Var(v) => self.read_var(*v, line),
            ExprKind::Index { base, indices } => match base {
                VarRef::Global(g) => {
                    let flat = self.flatten_index(*g, indices, line);
                    let dst = self.ir.new_temp();
                    let volatile = self.program.global(*g).is_volatile;
                    self.emit(
                        Op::LoadGlobal {
                            dst,
                            global: *g,
                            index: Some(flat),
                            volatile,
                        },
                        line,
                    );
                    Value::Temp(dst)
                }
                VarRef::Local(l) => self.read_var(VarRef::Local(*l), line),
            },
            ExprKind::Unary(op, inner) => {
                let v = self.lower_expr(inner, line);
                let dst = self.ir.new_temp();
                self.emit(
                    Op::Un {
                        dst,
                        op: *op,
                        src: v,
                    },
                    line,
                );
                Value::Temp(dst)
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let l = self.lower_expr(lhs, line);
                let r = self.lower_expr(rhs, line);
                self.emit_bin(*op, l, r, line)
            }
            ExprKind::AddrOf(var) => {
                let dst = self.ir.new_temp();
                match var {
                    VarRef::Global(g) => self.emit(Op::AddrGlobal { dst, global: *g }, line),
                    VarRef::Local(l) => match self.homes[l.0] {
                        Home::Slot(slot) => self.emit(Op::AddrSlot { dst, slot }, line),
                        Home::Temp(_) => {
                            // Should not happen: address-taken locals get
                            // slots. Fall back to a zero address.
                            self.emit(
                                Op::Copy {
                                    dst,
                                    src: Value::Const(0),
                                },
                                line,
                            )
                        }
                    },
                }
                Value::Temp(dst)
            }
            ExprKind::Deref(inner) => {
                let addr = self.lower_expr(inner, line);
                let dst = self.ir.new_temp();
                self.emit(Op::LoadPtr { dst, addr }, line);
                Value::Temp(dst)
            }
            ExprKind::Call { callee, args } => {
                let values: Vec<Value> = args.iter().map(|a| self.lower_expr(a, line)).collect();
                let dst = self.ir.new_temp();
                self.emit(
                    Op::Call {
                        dst: Some(dst),
                        callee: *callee,
                        args: values,
                    },
                    line,
                );
                Value::Temp(dst)
            }
        }
    }
}

/// Whether a source function is side-effect free and simply returns a literal
/// constant.
fn pure_const_value(func: &Function) -> Option<i64> {
    if func.body.len() != 1 {
        return None;
    }
    match &func.body[0].kind {
        StmtKind::Return(Some(expr)) => match expr.kind {
            ExprKind::Lit(v) => Some(func.ret_ty.wrap(v)),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holes_minic::ast::{BinOp, Ty};
    use holes_minic::build::ProgramBuilder;

    fn lower_simple() -> (Program, IrProgram) {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let arr = b.global_array("a", Ty::I32, false, vec![2, 3], (0..6).collect());
        let main = b.function("main", Ty::I32);
        let x = b.local(main, "x", Ty::I16);
        let i = b.local(main, "i", Ty::I32);
        b.push(main, Stmt::decl(x, Some(Expr::lit(70000))));
        b.push(
            main,
            Stmt::for_loop(
                Some(Stmt::assign(LValue::local(i), Expr::lit(0))),
                Some(Expr::binary(BinOp::Lt, Expr::local(i), Expr::lit(2))),
                Some(Stmt::assign(
                    LValue::local(i),
                    Expr::binary(BinOp::Add, Expr::local(i), Expr::lit(1)),
                )),
                vec![Stmt::assign(
                    LValue::global(g),
                    Expr::index(VarRef::Global(arr), vec![Expr::local(i), Expr::lit(1)]),
                )],
            ),
        );
        b.push(main, Stmt::call_opaque(vec![Expr::local(x)]));
        b.push(main, Stmt::ret(Some(Expr::lit(0))));
        let mut p = b.finish();
        p.assign_lines();
        let ir = lower_program(&p);
        (p, ir)
    }

    #[test]
    fn lowering_produces_instructions_with_lines() {
        let (_p, ir) = lower_simple();
        let main = &ir.functions[0];
        assert!(main.insts.len() > 10);
        assert!(main
            .insts
            .iter()
            .filter(|i| !matches!(i.op, Op::Ret { .. }))
            .all(|i| i.line > 0));
    }

    #[test]
    fn every_local_has_a_dbg_value() {
        let (_p, ir) = lower_simple();
        let main = &ir.functions[0];
        for (i, _var) in main.vars.iter().enumerate() {
            assert!(
                main.insts.iter().any(
                    |inst| matches!(inst.op, Op::DbgValue { var, .. } if var == DebugVarId(i as u32))
                ),
                "variable {i} has no debug binding"
            );
        }
    }

    #[test]
    fn loops_are_recognized_during_lowering() {
        let (_p, ir) = lower_simple();
        let main = &ir.functions[0];
        assert_eq!(main.loops.len(), 1);
        let region = &main.loops[0];
        assert_eq!(region.start, Some(0));
        assert_eq!(region.bound, Some(2));
        assert_eq!(region.step, Some(1));
        assert_eq!(region.trip_count(), Some(2));
        assert!(region.iv_temp.is_some());
    }

    #[test]
    fn pure_const_functions_are_detected() {
        let mut b = ProgramBuilder::new();
        let f = b.function("f1", Ty::I32);
        b.push(f, Stmt::ret(Some(Expr::lit(5))));
        let g = b.function("f2", Ty::I32);
        let p0 = b.param(g, "p0", Ty::I32);
        b.push(g, Stmt::ret(Some(Expr::local(p0))));
        let main = b.function("main", Ty::I32);
        b.push(main, Stmt::ret(Some(Expr::lit(0))));
        let mut p = b.finish();
        p.assign_lines();
        let ir = lower_program(&p);
        assert_eq!(ir.functions[0].pure_const, Some(5));
        assert_eq!(ir.functions[1].pure_const, None);
    }

    #[test]
    fn address_taken_locals_get_slots() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![1]);
        let main = b.function("main", Ty::I32);
        let x = b.local(main, "x", Ty::I32);
        let ptr = b.local(main, "p", Ty::Ptr(&Ty::I32));
        b.push(main, Stmt::decl(x, Some(Expr::lit(2))));
        b.push(main, Stmt::decl(ptr, Some(Expr::addr_of(VarRef::Local(x)))));
        b.push(
            main,
            Stmt::assign(LValue::global(g), Expr::deref(Expr::local(ptr))),
        );
        b.push(main, Stmt::ret(None));
        let mut p = b.finish();
        p.assign_lines();
        let ir = lower_program(&p);
        let main_ir = &ir.functions[0];
        assert_eq!(main_ir.slots, 1);
        assert!(main_ir
            .insts
            .iter()
            .any(|i| matches!(i.op, Op::AddrSlot { .. })));
        assert!(main_ir.insts.iter().any(|i| matches!(
            i.op,
            Op::DbgValue {
                loc: DbgLoc::Slot(_),
                ..
            }
        )));
    }

    #[test]
    fn unnamed_scopes_create_block_scopes() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let main = b.function("main", Ty::I32);
        let s = b.local(main, "s", Ty::I32);
        b.push(
            main,
            Stmt::block(vec![
                Stmt::decl(s, Some(Expr::lit(3))),
                Stmt::assign(LValue::global(g), Expr::local(s)),
            ]),
        );
        b.push(main, Stmt::ret(None));
        let mut p = b.finish();
        p.assign_lines();
        let ir = lower_program(&p);
        let main_ir = &ir.functions[0];
        assert_eq!(main_ir.scopes.len(), 2);
        assert!(main_ir.insts.iter().any(|i| i.scope == ScopeId(1)));
    }
}
