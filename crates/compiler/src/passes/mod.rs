//! The optimization pass pipeline.
//!
//! Passes are plain functions over [`IrFunction`]s registered by name; the
//! pipeline runner executes the schedule selected by the
//! [`crate::config::CompilerConfig`] (personality, level,
//! version), honouring the two triage mechanisms of the paper's §4.3:
//! `-fno-<pass>`-style disabling and `-opt-bisect-limit`-style pass budgets.
//! After each pass runs, the runner applies the injected defects attached to
//! that pass (see [`crate::defects`]), which corrupt only debug bindings and
//! never generated code.

pub mod scalar;
pub mod structure;

use std::collections::HashSet;

use holes_minic::ast::{GlobalId, Program};

use crate::config::CompilerConfig;
use crate::defects::{active_defects, apply_defect};
use crate::ir::{IrFunction, IrProgram, Op};

/// Shared context available to every pass.
#[derive(Debug)]
pub struct PassContext {
    /// Globals that are never written (and not volatile) anywhere in the
    /// program: loads from them may be replaced by their initializer.
    pub never_written_globals: HashSet<GlobalId>,
    /// Snapshot of the lowered (pre-optimization) program, used by the
    /// inliner and the inter-procedural constant pass.
    pub inline_sources: IrProgram,
    /// Whether the source global is volatile, by id.
    pub global_volatile: Vec<bool>,
    /// First initializer element of every global, by id (used when folding
    /// loads from never-written globals).
    pub global_inits: Vec<i64>,
}

impl PassContext {
    /// Build the context from the source program and its lowered IR.
    pub fn new(source: &Program, lowered: &IrProgram) -> PassContext {
        let mut written: HashSet<GlobalId> = HashSet::new();
        for func in &lowered.functions {
            for inst in &func.insts {
                match inst.op {
                    Op::StoreGlobal { global, .. } | Op::AddrGlobal { global, .. } => {
                        written.insert(global);
                    }
                    _ => {}
                }
            }
        }
        let never_written = source
            .globals
            .iter()
            .enumerate()
            .filter(|(i, g)| !g.is_volatile && !written.contains(&GlobalId(*i)))
            .map(|(i, _)| GlobalId(i))
            .collect();
        PassContext {
            never_written_globals: never_written,
            inline_sources: lowered.clone(),
            global_volatile: source.globals.iter().map(|g| g.is_volatile).collect(),
            global_inits: source.globals.iter().map(|g| g.init[0]).collect(),
        }
    }
}

/// A report of what the pipeline did, used by triage and the benchmarks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Pass names that actually ran, in order.
    pub passes_run: Vec<String>,
    /// Defect ids that were applied, in order.
    pub defects_applied: Vec<String>,
}

/// Run one named pass over a function.
fn run_pass(name: &str, func: &mut IrFunction, cx: &PassContext) {
    match name {
        // Constant folding / propagation family.
        "instcombine" | "tree-ccp" | "ipsccp" | "tree-vrp" => scalar::constant_fold(func),
        "evrp" => {
            structure::fold_quiescent_globals(func, cx);
            scalar::constant_fold(func);
        }
        // Copy propagation family.
        "gvn" | "tree-fre" | "cprop-registers" => scalar::copy_propagate(func),
        // Dead code / store elimination.
        "dce" | "tree-dce" => scalar::dead_code_eliminate(func),
        "dse" | "tree-dse" => scalar::dead_store_eliminate(func),
        // Control-flow cleanup.
        "simplifycfg" | "simplifycfg-late" | "cfg-cleanup" => structure::cfg_cleanup(func),
        // Inter-procedural passes.
        "inline" => structure::inline_calls(func, cx),
        "ipa-pure-const" => structure::fold_pure_calls(func, cx),
        // Memory passes.
        "sroa" | "ipa-sra" => structure::promote_slots(func),
        // Loop passes.
        "loop-unroll" | "cunroll" => structure::unroll_loops(func),
        "loop-rotate" | "indvars" | "lsr" | "ivopts" => structure::loop_bookkeeping(func),
        // Scheduling and layout.
        "machine-scheduler" | "schedule-insns2" => structure::schedule_loads(func),
        "toplevel-reorder" => {}
        other => debug_assert!(false, "unknown pass {other}"),
    }
}

/// Run the configured pipeline over a whole program, applying injected
/// defects after the pass they belong to.
pub fn run_pipeline(
    ir: &mut IrProgram,
    source: &Program,
    config: &CompilerConfig,
) -> PipelineReport {
    run_pipeline_observed(ir, source, config, |_, _| ())
}

/// The recorded execution of one pipeline run: the report, plus a clone of
/// the whole IR program after each scheduled pass (and its injected
/// defects) — the raw material of `holes_compiler::PassSnapshots`, which
/// derives any pass-budget prefix of the run by code generation alone.
#[derive(Debug, Clone)]
pub struct PipelineCheckpoints {
    /// The full run's report: every pass, then the pass-level defects in
    /// application order, then the `isel` (code-generation stage) defects.
    pub report: PipelineReport,
    /// `checkpoints[k]` is the IR after the first `k` scheduled passes and
    /// their defects; `checkpoints[0]` is the freshly lowered program. The
    /// code-generation stage's defects are **not** applied to any
    /// checkpoint — they belong to codegen, which every budget re-runs.
    pub checkpoints: Vec<IrProgram>,
    /// `defect_counts[k]` is how many entries of `report.defects_applied`
    /// were applied within the first `k` passes (so the tail beyond
    /// `defect_counts[checkpoints.len() - 1]` is the isel stage's).
    pub defect_counts: Vec<usize>,
}

/// [`run_pipeline`], additionally recording a checkpoint of the IR after
/// every pass. The final state of `ir` and the returned report are
/// identical to the unrecorded run.
pub fn run_pipeline_with_checkpoints(
    ir: &mut IrProgram,
    source: &Program,
    config: &CompilerConfig,
) -> PipelineCheckpoints {
    let mut checkpoints = vec![ir.clone()];
    let mut defect_counts = vec![0usize];
    let report = run_pipeline_observed(ir, source, config, |ir, defects_so_far| {
        checkpoints.push(ir.clone());
        defect_counts.push(defects_so_far);
    });
    PipelineCheckpoints {
        report,
        checkpoints,
        defect_counts,
    }
}

/// The shared pipeline loop: `observe` is called after each pass and its
/// defects with the current IR and the number of defects applied so far
/// (the recording run clones checkpoints there; the plain run passes a
/// no-op that compiles away).
fn run_pipeline_observed(
    ir: &mut IrProgram,
    source: &Program,
    config: &CompilerConfig,
    mut observe: impl FnMut(&IrProgram, usize),
) -> PipelineReport {
    let cx = PassContext::new(source, ir);
    let mut report = PipelineReport::default();
    let mut schedule = config.pass_schedule();
    schedule.retain(|p| !config.disabled_passes.contains(*p));
    if let Some(budget) = config.pass_budget {
        schedule.truncate(budget);
    }
    for pass in schedule {
        for func in &mut ir.functions {
            run_pass(pass, func, &cx);
        }
        report.passes_run.push(pass.to_owned());
        for defect in active_defects(config, pass) {
            for func in &mut ir.functions {
                apply_defect(func, &defect);
            }
            report.defects_applied.push(defect.id.to_owned());
        }
        observe(ir, report.defects_applied.len());
    }
    // The always-on code-generation stage hosts its own defects.
    for defect in active_defects(config, "isel") {
        for func in &mut ir.functions {
            apply_defect(func, &defect);
        }
        report.defects_applied.push(defect.id.to_owned());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OptLevel, Personality};
    use crate::lower::lower_program;
    use holes_minic::ast::{Expr, LValue, Stmt, Ty};
    use holes_minic::build::ProgramBuilder;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let main = b.function("main", Ty::I32);
        let x = b.local(main, "x", Ty::I32);
        b.push(main, Stmt::decl(x, Some(Expr::lit(3))));
        b.push(main, Stmt::assign(LValue::global(g), Expr::local(x)));
        b.push(main, Stmt::call_opaque(vec![Expr::local(x)]));
        b.push(main, Stmt::ret(Some(Expr::lit(0))));
        let mut p = b.finish();
        p.assign_lines();
        p
    }

    #[test]
    fn pipeline_runs_scheduled_passes() {
        let p = sample();
        let mut ir = lower_program(&p);
        let config = CompilerConfig::new(Personality::Ccg, OptLevel::O2);
        let report = run_pipeline(&mut ir, &p, &config);
        assert_eq!(report.passes_run.len(), config.pass_schedule().len());
    }

    #[test]
    fn disabled_passes_are_skipped() {
        let p = sample();
        let mut ir = lower_program(&p);
        let config =
            CompilerConfig::new(Personality::Ccg, OptLevel::O2).with_disabled_pass("tree-ccp");
        let report = run_pipeline(&mut ir, &p, &config);
        assert!(!report.passes_run.iter().any(|p| p == "tree-ccp"));
    }

    #[test]
    fn pass_budget_truncates_the_pipeline() {
        let p = sample();
        let mut ir = lower_program(&p);
        let config = CompilerConfig::new(Personality::Lcc, OptLevel::O2).with_pass_budget(2);
        let report = run_pipeline(&mut ir, &p, &config);
        assert_eq!(report.passes_run.len(), 2);
    }

    #[test]
    fn defect_free_configuration_applies_no_defects() {
        let p = sample();
        let mut ir = lower_program(&p);
        let config = CompilerConfig::new(Personality::Ccg, OptLevel::O2).without_defects();
        let report = run_pipeline(&mut ir, &p, &config);
        assert!(report.defects_applied.is_empty());
    }

    #[test]
    fn trunk_applies_defects_at_o2() {
        let p = sample();
        let mut ir = lower_program(&p);
        let config = CompilerConfig::new(Personality::Ccg, OptLevel::O2);
        let report = run_pipeline(&mut ir, &p, &config);
        assert!(!report.defects_applied.is_empty());
    }

    #[test]
    fn context_identifies_never_written_globals() {
        let mut b = ProgramBuilder::new();
        let quiet = b.global("quiet", Ty::I32, false, vec![0]);
        let noisy = b.global("noisy", Ty::I32, false, vec![0]);
        let volat = b.global("vol", Ty::I32, true, vec![0]);
        let main = b.function("main", Ty::I32);
        b.push(main, Stmt::assign(LValue::global(noisy), Expr::lit(1)));
        b.push(main, Stmt::ret(Some(Expr::global(quiet))));
        let mut p = b.finish();
        p.assign_lines();
        let ir = lower_program(&p);
        let cx = PassContext::new(&p, &ir);
        assert!(cx.never_written_globals.contains(&quiet));
        assert!(!cx.never_written_globals.contains(&noisy));
        assert!(!cx.never_written_globals.contains(&volat));
    }
}
