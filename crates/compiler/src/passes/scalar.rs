//! Scalar optimization passes: constant folding/propagation, copy
//! propagation, dead code elimination and dead store elimination.
//!
//! Each pass performs a modest but *semantics-preserving* transformation and
//! maintains debug bindings the way a correct compiler would: when a temp
//! referenced by a `DbgValue` becomes a known constant the binding is
//! rewritten to that constant, and when an instruction that defines a
//! binding's temp is deleted the binding is salvaged (rewritten to a constant
//! if one is known) or explicitly marked undefined.

use std::collections::{HashMap, HashSet};

use holes_minic::ast::BinOp;

use crate::ir::{DbgLoc, IrFunction, Op, SlotId, Temp, Value};

/// Per-block constant folding and propagation.
pub fn constant_fold(func: &mut IrFunction) {
    let mut known: HashMap<Temp, i64> = HashMap::new();
    for index in 0..func.insts.len() {
        // Block boundaries invalidate purely local facts.
        if matches!(func.insts[index].op, Op::Label(_)) {
            known.clear();
            continue;
        }
        // Substitute known constants into operands.
        let substitutions: Vec<(Temp, i64)> = known.iter().map(|(t, c)| (*t, *c)).collect();
        for (t, c) in &substitutions {
            func.insts[index].op.replace_uses(*t, Value::Const(*c));
        }
        // Fold the instruction itself.
        let folded = fold_op(&func.insts[index].op);
        if let Some(new_op) = folded {
            func.insts[index].op = new_op;
        }
        // Update the known-constant map.
        let op = &func.insts[index].op;
        if let Some(dst) = op.def() {
            match constant_result(op) {
                Some(c) => {
                    known.insert(dst, c);
                }
                None => {
                    known.remove(&dst);
                }
            }
        }
        // Maintain debug bindings: a binding to a temp that is now known
        // constant becomes a constant binding (this is what e.g. gcc's CCP
        // does when it inserts debug statements for propagated constants).
        if let Op::DbgValue { loc, .. } = &mut func.insts[index].op {
            if let DbgLoc::Value(Value::Temp(t)) = loc {
                if let Some(c) = known.get(t) {
                    *loc = DbgLoc::Value(Value::Const(*c));
                }
            }
        }
    }
}

/// The constant produced by an instruction, if statically known.
fn constant_result(op: &Op) -> Option<i64> {
    match op {
        Op::Copy {
            src: Value::Const(c),
            ..
        } => Some(*c),
        Op::Bin {
            op,
            lhs: Value::Const(a),
            rhs: Value::Const(b),
            ..
        } => Some(op.eval(*a, *b)),
        Op::Un {
            op,
            src: Value::Const(a),
            ..
        } => Some(op.eval(*a)),
        Op::Trunc {
            src: Value::Const(a),
            bits,
            signed,
            ..
        } => Some(wrap_const(*a, *bits, *signed)),
        _ => None,
    }
}

fn wrap_const(value: i64, bits: u32, signed: bool) -> i64 {
    use holes_minic::ast::Ty;
    let ty = match (bits, signed) {
        (8, true) => Ty::I8,
        (16, true) => Ty::I16,
        (32, true) => Ty::I32,
        (8, false) => Ty::U8,
        (16, false) => Ty::U16,
        (32, false) => Ty::U32,
        (64, false) => Ty::U64,
        _ => Ty::I64,
    };
    ty.wrap(value)
}

/// Algebraic simplification of a single instruction.
fn fold_op(op: &Op) -> Option<Op> {
    match op {
        Op::Bin { dst, op, lhs, rhs } => {
            if let (Value::Const(a), Value::Const(b)) = (lhs, rhs) {
                return Some(Op::Copy {
                    dst: *dst,
                    src: Value::Const(op.eval(*a, *b)),
                });
            }
            let zero = |v: &Value| matches!(v, Value::Const(0));
            let one = |v: &Value| matches!(v, Value::Const(1));
            match op {
                BinOp::Mul | BinOp::And if zero(lhs) || zero(rhs) => Some(Op::Copy {
                    dst: *dst,
                    src: Value::Const(0),
                }),
                BinOp::Mul if one(lhs) => Some(Op::Copy {
                    dst: *dst,
                    src: *rhs,
                }),
                BinOp::Mul if one(rhs) => Some(Op::Copy {
                    dst: *dst,
                    src: *lhs,
                }),
                BinOp::Add | BinOp::Or | BinOp::Xor if zero(lhs) => Some(Op::Copy {
                    dst: *dst,
                    src: *rhs,
                }),
                BinOp::Add | BinOp::Or | BinOp::Xor | BinOp::Sub if zero(rhs) => Some(Op::Copy {
                    dst: *dst,
                    src: *lhs,
                }),
                _ => None,
            }
        }
        Op::Un {
            dst,
            op,
            src: Value::Const(a),
        } => Some(Op::Copy {
            dst: *dst,
            src: Value::Const(op.eval(*a)),
        }),
        Op::Trunc {
            dst,
            src: Value::Const(a),
            bits,
            signed,
        } => Some(Op::Copy {
            dst: *dst,
            src: Value::Const(wrap_const(*a, *bits, *signed)),
        }),
        _ => None,
    }
}

/// Per-block copy propagation: uses of a temp defined by a copy are replaced
/// by the copy's source, and debug bindings are rewritten the same way so
/// that later dead-code elimination does not orphan them.
pub fn copy_propagate(func: &mut IrFunction) {
    let mut copies: HashMap<Temp, Value> = HashMap::new();
    for index in 0..func.insts.len() {
        if matches!(func.insts[index].op, Op::Label(_)) {
            copies.clear();
            continue;
        }
        let substitutions: Vec<(Temp, Value)> = copies.iter().map(|(t, v)| (*t, *v)).collect();
        for (t, v) in &substitutions {
            func.insts[index].op.replace_uses(*t, *v);
        }
        // Rewrite debug bindings through the copy map as well (the correct,
        // availability-preserving behaviour).
        if let Op::DbgValue { loc, .. } = &mut func.insts[index].op {
            if let DbgLoc::Value(Value::Temp(t)) = loc {
                if let Some(v) = copies.get(t) {
                    *loc = DbgLoc::Value(*v);
                }
            }
        }
        let op = &func.insts[index].op;
        if let Some(dst) = op.def() {
            // The destination is redefined: forget copies involving it.
            copies.remove(&dst);
            copies.retain(|_, v| *v != Value::Temp(dst));
            if let Op::Copy { dst, src } = op {
                if *src != Value::Temp(*dst) {
                    copies.insert(*dst, *src);
                }
            }
        }
    }
}

/// Dead code elimination with debug-binding salvaging.
pub fn dead_code_eliminate(func: &mut IrFunction) {
    loop {
        let mut used: HashSet<Temp> = HashSet::new();
        for inst in &func.insts {
            for value in inst.op.uses() {
                if let Value::Temp(t) = value {
                    used.insert(t);
                }
            }
        }
        // Temps whose defining instruction is a removable pure computation
        // and that no real instruction uses.
        let mut removed_consts: HashMap<Temp, Option<i64>> = HashMap::new();
        for inst in &mut func.insts {
            let removable = inst.op.is_removable_def();
            if let Some(dst) = inst.op.def() {
                if removable && !used.contains(&dst) {
                    removed_consts.insert(dst, constant_result(&inst.op));
                    inst.op = Op::Nop;
                }
            }
        }
        if removed_consts.is_empty() {
            break;
        }
        // Salvage debug bindings that referenced removed temps.
        for inst in &mut func.insts {
            if let Op::DbgValue { loc, .. } = &mut inst.op {
                if let DbgLoc::Value(Value::Temp(t)) = loc {
                    if let Some(salvage) = removed_consts.get(t) {
                        *loc = match salvage {
                            Some(c) => DbgLoc::Value(Value::Const(*c)),
                            None => DbgLoc::Undef,
                        };
                    }
                }
            }
        }
        func.remove_nops();
    }
}

/// Dead store elimination for frame slots: a store to a slot whose value can
/// never be observed afterwards (no later load, and the slot's address never
/// escapes) is removed.
pub fn dead_store_eliminate(func: &mut IrFunction) {
    let escaped: HashSet<SlotId> = func
        .insts
        .iter()
        .filter_map(|i| match i.op {
            Op::AddrSlot { slot, .. } => Some(slot),
            _ => None,
        })
        .collect();
    let loads_after = |slot: SlotId, index: usize| {
        func.insts[index + 1..]
            .iter()
            .any(|i| matches!(i.op, Op::LoadSlot { slot: s, .. } if s == slot))
    };
    let mut to_remove = Vec::new();
    for (index, inst) in func.insts.iter().enumerate() {
        if let Op::StoreSlot { slot, .. } = inst.op {
            if !escaped.contains(&slot) && !loads_after(slot, index) {
                to_remove.push(index);
            }
        }
    }
    for index in to_remove {
        func.insts[index].op = Op::Nop;
    }
    func.remove_nops();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{DebugVar, Inst, ScopeId, ScopeKind};
    use holes_minic::ast::{FunctionId, GlobalId, UnOp};

    fn empty_function() -> IrFunction {
        IrFunction {
            name: "f".into(),
            source: FunctionId(0),
            vars: Vec::new(),
            scopes: vec![ScopeKind::Function],
            slots: 0,
            next_temp: 100,
            insts: Vec::new(),
            loops: Vec::new(),
            param_temps: Vec::new(),
            decl_line: 1,
            pure_const: None,
        }
    }

    #[test]
    fn constant_folding_folds_chains_and_rewrites_bindings() {
        let mut f = empty_function();
        let var = f.add_var(DebugVar {
            name: "x".into(),
            scope: ScopeId(0),
            is_param: false,
            decl_line: 2,
            suppress_die: false,
        });
        f.insts = vec![
            Inst::new(
                Op::Copy {
                    dst: Temp(0),
                    src: Value::Const(4),
                },
                2,
            ),
            Inst::new(
                Op::Bin {
                    dst: Temp(1),
                    op: BinOp::Add,
                    lhs: Value::Temp(Temp(0)),
                    rhs: Value::Const(3),
                },
                2,
            ),
            Inst::new(
                Op::Copy {
                    dst: Temp(2),
                    src: Value::Temp(Temp(1)),
                },
                2,
            ),
            Inst::new(
                Op::DbgValue {
                    var,
                    loc: DbgLoc::Value(Value::Temp(Temp(2))),
                },
                2,
            ),
            Inst::new(
                Op::StoreGlobal {
                    global: GlobalId(0),
                    index: None,
                    value: Value::Temp(Temp(2)),
                    volatile: false,
                },
                3,
            ),
            Inst::new(Op::Ret { value: None }, 4),
        ];
        constant_fold(&mut f);
        assert!(matches!(
            f.insts[3].op,
            Op::DbgValue {
                loc: DbgLoc::Value(Value::Const(7)),
                ..
            }
        ));
        assert!(matches!(
            f.insts[4].op,
            Op::StoreGlobal {
                value: Value::Const(7),
                ..
            }
        ));
    }

    #[test]
    fn algebraic_identities_are_simplified() {
        let mut f = empty_function();
        f.insts = vec![
            Inst::new(
                Op::Bin {
                    dst: Temp(1),
                    op: BinOp::Mul,
                    lhs: Value::Temp(Temp(0)),
                    rhs: Value::Const(0),
                },
                1,
            ),
            Inst::new(
                Op::Bin {
                    dst: Temp(2),
                    op: BinOp::Add,
                    lhs: Value::Temp(Temp(0)),
                    rhs: Value::Const(0),
                },
                1,
            ),
            Inst::new(
                Op::Un {
                    dst: Temp(3),
                    op: UnOp::Neg,
                    src: Value::Const(5),
                },
                1,
            ),
        ];
        constant_fold(&mut f);
        assert!(matches!(
            f.insts[0].op,
            Op::Copy {
                src: Value::Const(0),
                ..
            }
        ));
        assert!(matches!(
            f.insts[1].op,
            Op::Copy {
                src: Value::Temp(Temp(0)),
                ..
            }
        ));
        assert!(matches!(
            f.insts[2].op,
            Op::Copy {
                src: Value::Const(-5),
                ..
            }
        ));
    }

    #[test]
    fn copy_propagation_rewrites_uses_and_bindings() {
        let mut f = empty_function();
        let var = f.add_var(DebugVar {
            name: "x".into(),
            scope: ScopeId(0),
            is_param: false,
            decl_line: 2,
            suppress_die: false,
        });
        f.insts = vec![
            Inst::new(
                Op::Copy {
                    dst: Temp(1),
                    src: Value::Temp(Temp(0)),
                },
                1,
            ),
            Inst::new(
                Op::DbgValue {
                    var,
                    loc: DbgLoc::Value(Value::Temp(Temp(1))),
                },
                1,
            ),
            Inst::new(
                Op::StoreGlobal {
                    global: GlobalId(0),
                    index: None,
                    value: Value::Temp(Temp(1)),
                    volatile: false,
                },
                2,
            ),
        ];
        copy_propagate(&mut f);
        assert!(matches!(
            f.insts[1].op,
            Op::DbgValue {
                loc: DbgLoc::Value(Value::Temp(Temp(0))),
                ..
            }
        ));
        assert!(matches!(
            f.insts[2].op,
            Op::StoreGlobal {
                value: Value::Temp(Temp(0)),
                ..
            }
        ));
    }

    #[test]
    fn dce_removes_unused_defs_and_salvages_bindings() {
        let mut f = empty_function();
        let var = f.add_var(DebugVar {
            name: "dead".into(),
            scope: ScopeId(0),
            is_param: false,
            decl_line: 2,
            suppress_die: false,
        });
        f.insts = vec![
            Inst::new(
                Op::Copy {
                    dst: Temp(0),
                    src: Value::Const(9),
                },
                2,
            ),
            Inst::new(
                Op::DbgValue {
                    var,
                    loc: DbgLoc::Value(Value::Temp(Temp(0))),
                },
                2,
            ),
            Inst::new(Op::Ret { value: None }, 3),
        ];
        dead_code_eliminate(&mut f);
        // The dead copy is gone but the binding was salvaged to the constant.
        assert_eq!(f.insts.len(), 2);
        assert!(matches!(
            f.insts[0].op,
            Op::DbgValue {
                loc: DbgLoc::Value(Value::Const(9)),
                ..
            }
        ));
    }

    #[test]
    fn dce_keeps_volatile_loads_and_side_effects() {
        let mut f = empty_function();
        f.insts = vec![
            Inst::new(
                Op::LoadGlobal {
                    dst: Temp(0),
                    global: GlobalId(0),
                    index: None,
                    volatile: true,
                },
                1,
            ),
            Inst::new(
                Op::LoadGlobal {
                    dst: Temp(1),
                    global: GlobalId(1),
                    index: None,
                    volatile: false,
                },
                1,
            ),
            Inst::new(Op::CallSink { args: vec![] }, 2),
            Inst::new(Op::Ret { value: None }, 3),
        ];
        dead_code_eliminate(&mut f);
        assert!(f
            .insts
            .iter()
            .any(|i| matches!(i.op, Op::LoadGlobal { volatile: true, .. })));
        assert!(!f.insts.iter().any(|i| matches!(
            i.op,
            Op::LoadGlobal {
                volatile: false,
                ..
            }
        )));
    }

    #[test]
    fn dse_removes_unobservable_slot_stores() {
        let mut f = empty_function();
        f.slots = 2;
        f.insts = vec![
            Inst::new(
                Op::StoreSlot {
                    slot: SlotId(0),
                    value: Value::Const(1),
                },
                1,
            ),
            Inst::new(
                Op::StoreSlot {
                    slot: SlotId(1),
                    value: Value::Const(2),
                },
                2,
            ),
            Inst::new(
                Op::LoadSlot {
                    dst: Temp(0),
                    slot: SlotId(1),
                },
                3,
            ),
            Inst::new(
                Op::Ret {
                    value: Some(Value::Temp(Temp(0))),
                },
                4,
            ),
        ];
        dead_store_eliminate(&mut f);
        assert!(!f.insts.iter().any(|i| matches!(
            i.op,
            Op::StoreSlot {
                slot: SlotId(0),
                ..
            }
        )));
        assert!(f.insts.iter().any(|i| matches!(
            i.op,
            Op::StoreSlot {
                slot: SlotId(1),
                ..
            }
        )));
    }

    #[test]
    fn dse_respects_escaped_slots() {
        let mut f = empty_function();
        f.slots = 1;
        f.insts = vec![
            Inst::new(
                Op::AddrSlot {
                    dst: Temp(0),
                    slot: SlotId(0),
                },
                1,
            ),
            Inst::new(
                Op::CallSink {
                    args: vec![Value::Temp(Temp(0))],
                },
                1,
            ),
            Inst::new(
                Op::StoreSlot {
                    slot: SlotId(0),
                    value: Value::Const(5),
                },
                2,
            ),
            Inst::new(Op::Ret { value: None }, 3),
        ];
        dead_store_eliminate(&mut f);
        assert!(f.insts.iter().any(|i| matches!(i.op, Op::StoreSlot { .. })));
    }
}
