//! Structural passes: control-flow cleanup, inlining, inter-procedural
//! constant folding, slot promotion, loop unrolling, value-range style global
//! folding and instruction scheduling.

use std::collections::HashMap;

use crate::ir::{
    DbgLoc, DebugVar, DebugVarId, Inst, IrFunction, Op, ScopeId, ScopeKind, SlotId, Temp, Value,
};
use crate::passes::PassContext;

/// Control-flow cleanup: fold branches on constants, delete unreachable
/// straight-line code, and delete labels that nothing references.
///
/// Debug bindings inside removed *unreachable* regions are dropped — that is
/// correct behaviour (the bindings can never take effect). The paper's
/// cfg-cleanup bugs are modelled as injected defects layered on top of this
/// pass, not as part of it.
pub fn cfg_cleanup(func: &mut IrFunction) {
    // Fold branches whose condition is a constant.
    for inst in &mut func.insts {
        match inst.op {
            Op::BranchZero {
                cond: Value::Const(c),
                target,
            } => {
                inst.op = if c == 0 { Op::Jump(target) } else { Op::Nop };
            }
            Op::BranchNonZero {
                cond: Value::Const(c),
                target,
            } => {
                inst.op = if c != 0 { Op::Jump(target) } else { Op::Nop };
            }
            _ => {}
        }
    }
    func.remove_nops();
    // Remove unreachable instructions: anything after an unconditional jump
    // or return up to the next label.
    let mut reachable = true;
    for inst in &mut func.insts {
        match &inst.op {
            Op::Label(_) => reachable = true,
            _ if !reachable => inst.op = Op::Nop,
            Op::Jump(_) | Op::Ret { .. } => reachable = false,
            _ => {}
        }
    }
    func.remove_nops();
    // Remove labels that no branch references (pure fall-through markers).
    let referenced = func.referenced_labels();
    for inst in &mut func.insts {
        if let Op::Label(l) = inst.op {
            if !referenced.contains(&l) {
                inst.op = Op::Nop;
            }
        }
    }
    func.remove_nops();
    // Loop metadata whose labels disappeared is no longer trustworthy.
    let remaining: Vec<_> = func
        .insts
        .iter()
        .filter_map(|i| match i.op {
            Op::Label(l) => Some(l),
            _ => None,
        })
        .collect();
    func.loops
        .retain(|r| remaining.contains(&r.header) && remaining.contains(&r.exit));
}

/// Replace loads from non-volatile globals that are never written anywhere in
/// the program with their initializer (the whole-program flavour of value
/// range propagation that folds the paper's `if (a) goto` examples).
pub fn fold_quiescent_globals(func: &mut IrFunction, cx: &PassContext) {
    for inst in &mut func.insts {
        if let Op::LoadGlobal {
            dst,
            global,
            index: None,
            volatile: false,
        } = inst.op
        {
            if cx.never_written_globals.contains(&global) {
                let init = cx.global_inits.get(global.0).copied().unwrap_or(0);
                inst.op = Op::Copy {
                    dst,
                    src: Value::Const(init),
                };
            }
        }
    }
}

/// Fold calls to functions that are pure and return a constant (the
/// `ipa-pure-const` / IPSCCP analogue, behind the paper's gcc bug 105108).
pub fn fold_pure_calls(func: &mut IrFunction, cx: &PassContext) {
    for inst in &mut func.insts {
        if let Op::Call { dst, callee, .. } = &inst.op {
            if let Some(constant) = cx
                .inline_sources
                .functions
                .get(callee.0)
                .and_then(|f| f.pure_const)
            {
                inst.op = match dst {
                    Some(d) => Op::Copy {
                        dst: *d,
                        src: Value::Const(constant),
                    },
                    None => Op::Nop,
                };
            }
        }
    }
    func.remove_nops();
}

/// Inline small internal callees into the caller, creating an inlined scope
/// and re-homing the callee's variables and debug bindings into it.
pub fn inline_calls(func: &mut IrFunction, cx: &PassContext) {
    let mut index = 0;
    while index < func.insts.len() {
        let call = match &func.insts[index].op {
            Op::Call { dst, callee, args }
                if callee.0 != func.source.0
                    && cx
                        .inline_sources
                        .functions
                        .get(callee.0)
                        .map(|f| f.code_size() <= 40 && f.name != "main")
                        .unwrap_or(false) =>
            {
                Some((*dst, *callee, args.clone()))
            }
            _ => None,
        };
        let Some((dst, callee, args)) = call else {
            index += 1;
            continue;
        };
        let call_line = func.insts[index].line;
        let parent_scope = func.insts[index].scope;
        let callee_ir = cx.inline_sources.functions[callee.0].clone();
        // Build remapping tables.
        let temp_offset = func.next_temp;
        func.next_temp += callee_ir.next_temp;
        let slot_offset = func.slots;
        func.slots += callee_ir.slots;
        let inlined_scope = func.add_scope(ScopeKind::Inlined {
            parent: parent_scope,
            callee,
            callee_name: callee_ir.name.clone(),
            call_line,
        });
        let scope_base = func.scopes.len() as u32;
        for scope in callee_ir.scopes.iter().skip(1) {
            let remapped = match scope {
                ScopeKind::Function => ScopeKind::Block {
                    parent: inlined_scope,
                },
                ScopeKind::Block { parent } => ScopeKind::Block {
                    parent: remap_scope(*parent, inlined_scope, scope_base),
                },
                ScopeKind::Inlined {
                    parent,
                    callee,
                    callee_name,
                    call_line,
                } => ScopeKind::Inlined {
                    parent: remap_scope(*parent, inlined_scope, scope_base),
                    callee: *callee,
                    callee_name: callee_name.clone(),
                    call_line: *call_line,
                },
            };
            func.scopes.push(remapped);
        }
        let var_offset = func.vars.len() as u32;
        for var in &callee_ir.vars {
            func.vars.push(DebugVar {
                name: var.name.clone(),
                scope: remap_scope(var.scope, inlined_scope, scope_base),
                is_param: var.is_param,
                decl_line: var.decl_line,
                suppress_die: var.suppress_die,
            });
        }
        // Splice the callee body.
        let continue_label = func.new_label();
        let mut spliced: Vec<Inst> = Vec::new();
        for (i, param_temp) in callee_ir.param_temps.iter().enumerate() {
            let value = args.get(i).copied().unwrap_or(Value::Const(0));
            spliced.push(Inst::in_scope(
                Op::Copy {
                    dst: Temp(param_temp.0 + temp_offset),
                    src: value,
                },
                call_line,
                inlined_scope,
            ));
        }
        for inst in &callee_ir.insts {
            let scope = remap_scope(inst.scope, inlined_scope, scope_base);
            let mut op = remap_op(&inst.op, temp_offset, slot_offset, var_offset);
            if let Op::Ret { value } = op {
                if let Some(d) = dst {
                    if let Some(v) = value {
                        spliced.push(Inst::in_scope(
                            Op::Copy { dst: d, src: v },
                            inst.line,
                            scope,
                        ));
                    }
                }
                op = Op::Jump(continue_label);
            }
            spliced.push(Inst::in_scope(op, inst.line, scope));
        }
        spliced.push(Inst::in_scope(
            Op::Label(continue_label),
            call_line,
            parent_scope,
        ));
        let spliced_len = spliced.len();
        func.insts.splice(index..=index, spliced);
        index += spliced_len;
    }
}

fn remap_scope(scope: ScopeId, inlined_root: ScopeId, scope_base: u32) -> ScopeId {
    if scope.0 == 0 {
        inlined_root
    } else {
        ScopeId(scope_base + scope.0 - 1)
    }
}

fn remap_op(op: &Op, temp_offset: u32, slot_offset: u32, var_offset: u32) -> Op {
    let rt = |t: Temp| Temp(t.0 + temp_offset);
    let rv = |v: Value| match v {
        Value::Temp(t) => Value::Temp(rt(t)),
        Value::Const(c) => Value::Const(c),
    };
    let rs = |s: SlotId| SlotId(s.0 + slot_offset);
    match op {
        Op::Copy { dst, src } => Op::Copy {
            dst: rt(*dst),
            src: rv(*src),
        },
        Op::Un { dst, op, src } => Op::Un {
            dst: rt(*dst),
            op: *op,
            src: rv(*src),
        },
        Op::Bin { dst, op, lhs, rhs } => Op::Bin {
            dst: rt(*dst),
            op: *op,
            lhs: rv(*lhs),
            rhs: rv(*rhs),
        },
        Op::Trunc {
            dst,
            src,
            bits,
            signed,
        } => Op::Trunc {
            dst: rt(*dst),
            src: rv(*src),
            bits: *bits,
            signed: *signed,
        },
        Op::LoadGlobal {
            dst,
            global,
            index,
            volatile,
        } => Op::LoadGlobal {
            dst: rt(*dst),
            global: *global,
            index: index.map(rv),
            volatile: *volatile,
        },
        Op::StoreGlobal {
            global,
            index,
            value,
            volatile,
        } => Op::StoreGlobal {
            global: *global,
            index: index.map(rv),
            value: rv(*value),
            volatile: *volatile,
        },
        Op::LoadSlot { dst, slot } => Op::LoadSlot {
            dst: rt(*dst),
            slot: rs(*slot),
        },
        Op::StoreSlot { slot, value } => Op::StoreSlot {
            slot: rs(*slot),
            value: rv(*value),
        },
        Op::LoadPtr { dst, addr } => Op::LoadPtr {
            dst: rt(*dst),
            addr: rv(*addr),
        },
        Op::StorePtr { addr, value } => Op::StorePtr {
            addr: rv(*addr),
            value: rv(*value),
        },
        Op::AddrGlobal { dst, global } => Op::AddrGlobal {
            dst: rt(*dst),
            global: *global,
        },
        Op::AddrSlot { dst, slot } => Op::AddrSlot {
            dst: rt(*dst),
            slot: rs(*slot),
        },
        Op::Label(l) => Op::Label(crate::ir::BlockLabel(l.0 + temp_offset)),
        Op::Jump(l) => Op::Jump(crate::ir::BlockLabel(l.0 + temp_offset)),
        Op::BranchZero { cond, target } => Op::BranchZero {
            cond: rv(*cond),
            target: crate::ir::BlockLabel(target.0 + temp_offset),
        },
        Op::BranchNonZero { cond, target } => Op::BranchNonZero {
            cond: rv(*cond),
            target: crate::ir::BlockLabel(target.0 + temp_offset),
        },
        Op::Call { dst, callee, args } => Op::Call {
            dst: dst.map(rt),
            callee: *callee,
            args: args.iter().map(|a| rv(*a)).collect(),
        },
        Op::CallSink { args } => Op::CallSink {
            args: args.iter().map(|a| rv(*a)).collect(),
        },
        Op::Ret { value } => Op::Ret {
            value: value.map(rv),
        },
        Op::DbgValue { var, loc } => Op::DbgValue {
            var: DebugVarId(var.0 + var_offset),
            loc: match loc {
                DbgLoc::Value(v) => DbgLoc::Value(rv(*v)),
                DbgLoc::Slot(s) => DbgLoc::Slot(rs(*s)),
                DbgLoc::Undef => DbgLoc::Undef,
            },
        },
        Op::Nop => Op::Nop,
    }
}

/// Promote frame slots whose address is never taken (any more) to temps — the
/// SROA / mem2reg analogue.
pub fn promote_slots(func: &mut IrFunction) {
    let slot_count = func.slots;
    let mut promotable: Vec<bool> = vec![true; slot_count as usize];
    for inst in &func.insts {
        if let Op::AddrSlot { slot, .. } = inst.op {
            if let Some(flag) = promotable.get_mut(slot.0 as usize) {
                *flag = false;
            }
        }
    }
    let mut home: HashMap<SlotId, Temp> = HashMap::new();
    for (i, ok) in promotable.iter().enumerate() {
        if *ok {
            home.insert(SlotId(i as u32), func.new_temp());
        }
    }
    if home.is_empty() {
        return;
    }
    for inst in &mut func.insts {
        match &inst.op {
            Op::LoadSlot { dst, slot } if home.contains_key(slot) => {
                inst.op = Op::Copy {
                    dst: *dst,
                    src: Value::Temp(home[slot]),
                };
            }
            Op::StoreSlot { slot, value } if home.contains_key(slot) => {
                inst.op = Op::Copy {
                    dst: home[slot],
                    src: *value,
                };
            }
            Op::DbgValue {
                var,
                loc: DbgLoc::Slot(slot),
            } if home.contains_key(slot) => {
                inst.op = Op::DbgValue {
                    var: *var,
                    loc: DbgLoc::Value(Value::Temp(home[slot])),
                };
            }
            _ => {}
        }
    }
}

/// Fully unroll small counted loops with a known trip count and a
/// straight-line body. This is what produces several instances of the same
/// source line in the line table (the paper's footnote 3) and removes loop
/// control code entirely.
pub fn unroll_loops(func: &mut IrFunction) {
    let regions = func.loops.clone();
    for region in regions {
        let Some(trip) = region.trip_count() else {
            continue;
        };
        if trip == 0 || trip > 4 {
            continue;
        }
        let Some(header_index) = func.label_index(region.header) else {
            continue;
        };
        let Some(exit_index) = func.label_index(region.exit) else {
            continue;
        };
        if exit_index <= header_index + 1 {
            continue;
        }
        // Locate the conditional branch to the exit.
        let Some(branch_index) = func.insts[header_index..exit_index]
            .iter()
            .position(|i| matches!(i.op, Op::BranchZero { target, .. } if target == region.exit))
            .map(|p| p + header_index)
        else {
            continue;
        };
        // The latch jump back to the header must be the last instruction
        // before the exit label.
        let latch_index = exit_index - 1;
        if !matches!(func.insts[latch_index].op, Op::Jump(l) if l == region.header) {
            continue;
        }
        let body: Vec<Inst> = func.insts[branch_index + 1..latch_index].to_vec();
        if body.len() > 40 {
            continue;
        }
        // The body must be straight-line and the loop labels must only be
        // used by the loop's own control flow.
        let body_is_straight = body.iter().all(|i| {
            !matches!(
                i.op,
                Op::Label(_) | Op::Jump(_) | Op::BranchZero { .. } | Op::BranchNonZero { .. }
            )
        });
        if !body_is_straight {
            continue;
        }
        let header_refs = func
            .insts
            .iter()
            .filter(|i| match i.op {
                Op::Jump(l)
                | Op::BranchZero { target: l, .. }
                | Op::BranchNonZero { target: l, .. } => l == region.header,
                _ => false,
            })
            .count();
        let exit_refs = func
            .insts
            .iter()
            .filter(|i| match i.op {
                Op::Jump(l)
                | Op::BranchZero { target: l, .. }
                | Op::BranchNonZero { target: l, .. } => l == region.exit,
                _ => false,
            })
            .count();
        if header_refs != 1 || exit_refs != 1 {
            continue;
        }
        // The pre-branch header region (the condition computation) must be
        // pure so it can be dropped.
        let header_region_pure = func.insts[header_index + 1..branch_index]
            .iter()
            .all(|i| i.op.is_removable_def() || matches!(i.op, Op::DbgValue { .. }));
        if !header_region_pure {
            continue;
        }
        // Build the replacement: `trip` copies of the body.
        let mut replacement: Vec<Inst> = Vec::with_capacity(body.len() * trip as usize);
        for _ in 0..trip {
            replacement.extend(body.iter().cloned());
        }
        func.insts.splice(header_index..=exit_index, replacement);
        func.loops.retain(|r| r.header != region.header);
    }
}

/// Bookkeeping shared by the loop passes that do not restructure code in this
/// reproduction (loop rotation, induction-variable simplification, strength
/// reduction): prune loop metadata whose labels no longer exist so later
/// passes do not act on stale information.
pub fn loop_bookkeeping(func: &mut IrFunction) {
    let labels: Vec<_> = func
        .insts
        .iter()
        .filter_map(|i| match i.op {
            Op::Label(l) => Some(l),
            _ => None,
        })
        .collect();
    func.loops
        .retain(|r| labels.contains(&r.header) && labels.contains(&r.exit));
}

/// Very small instruction scheduler: hoist non-volatile global loads above an
/// adjacent independent pure computation. The reordering is semantics
/// preserving; the paper's scheduling bugs are injected defects on top.
pub fn schedule_loads(func: &mut IrFunction) {
    if func.insts.len() < 2 {
        return;
    }
    for i in 1..func.insts.len() {
        let (before, after) = func.insts.split_at_mut(i);
        let prev = &mut before[i - 1];
        let curr = &mut after[0];
        let curr_is_load = matches!(
            curr.op,
            Op::LoadGlobal {
                volatile: false,
                index: None,
                ..
            }
        );
        let prev_is_pure = prev.op.is_removable_def();
        if !(curr_is_load && prev_is_pure) {
            continue;
        }
        let prev_def = prev.op.def();
        let curr_def = curr.op.def();
        let curr_uses: Vec<Temp> = curr.op.uses().iter().filter_map(|v| v.as_temp()).collect();
        let prev_uses: Vec<Temp> = prev.op.uses().iter().filter_map(|v| v.as_temp()).collect();
        let independent = prev_def != curr_def
            && prev_def.is_none_or(|d| !curr_uses.contains(&d))
            && curr_def.is_none_or(|d| !prev_uses.contains(&d));
        if independent {
            std::mem::swap(prev, curr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use holes_minic::ast::{BinOp, Expr, FunctionId, LValue, Program, Stmt, Ty, VarRef};
    use holes_minic::build::ProgramBuilder;

    fn lowered(program: &mut Program) -> (crate::ir::IrProgram, PassContext) {
        program.assign_lines();
        let ir = lower_program(program);
        let cx = PassContext::new(program, &ir);
        (ir, cx)
    }

    #[test]
    fn cfg_cleanup_folds_constant_branches() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let main = b.function("main", Ty::I32);
        b.push(
            main,
            Stmt::if_stmt(
                Expr::lit(0),
                vec![Stmt::assign(LValue::global(g), Expr::lit(1))],
                vec![],
            ),
        );
        b.push(main, Stmt::ret(Some(Expr::lit(0))));
        let mut p = b.finish();
        let (mut ir, _cx) = lowered(&mut p);
        let before = ir.functions[0].insts.len();
        cfg_cleanup(&mut ir.functions[0]);
        assert!(ir.functions[0].insts.len() < before);
        assert!(!ir.functions[0]
            .insts
            .iter()
            .any(|i| matches!(i.op, Op::StoreGlobal { .. })));
    }

    #[test]
    fn pure_calls_are_folded() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let callee = b.function("five", Ty::I32);
        b.push(callee, Stmt::ret(Some(Expr::lit(5))));
        let main = b.function("main", Ty::I32);
        b.push(
            main,
            Stmt::assign(LValue::global(g), Expr::call(callee, vec![])),
        );
        b.push(main, Stmt::ret(Some(Expr::lit(0))));
        let mut p = b.finish();
        let (mut ir, cx) = lowered(&mut p);
        let main_id = p.main().0;
        fold_pure_calls(&mut ir.functions[main_id], &cx);
        assert!(!ir.functions[main_id]
            .insts
            .iter()
            .any(|i| matches!(i.op, Op::Call { .. })));
    }

    #[test]
    fn quiescent_globals_are_folded() {
        let mut b = ProgramBuilder::new();
        let quiet = b.global("quiet", Ty::I32, false, vec![7]);
        let out = b.global("out", Ty::I32, false, vec![0]);
        let main = b.function("main", Ty::I32);
        b.push(main, Stmt::assign(LValue::global(out), Expr::global(quiet)));
        b.push(main, Stmt::ret(Some(Expr::lit(0))));
        let mut p = b.finish();
        let (mut ir, cx) = lowered(&mut p);
        fold_quiescent_globals(&mut ir.functions[0], &cx);
        assert!(ir.functions[0].insts.iter().any(|i| matches!(
            i.op,
            Op::Copy {
                src: Value::Const(7),
                ..
            }
        )));
    }

    #[test]
    fn inlining_creates_an_inlined_scope_and_removes_the_call() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let callee = b.function("addg", Ty::I32);
        let p0 = b.param(callee, "p0", Ty::I32);
        b.push(
            callee,
            Stmt::assign(
                LValue::global(g),
                Expr::binary(BinOp::Add, Expr::local(p0), Expr::global(g)),
            ),
        );
        b.push(callee, Stmt::ret(Some(Expr::local(p0))));
        let main = b.function("main", Ty::I32);
        b.push(main, Stmt::call_internal(callee, vec![Expr::lit(4)]));
        b.push(main, Stmt::ret(Some(Expr::lit(0))));
        let mut p = b.finish();
        let (mut ir, cx) = lowered(&mut p);
        let main_id = p.main().0;
        inline_calls(&mut ir.functions[main_id], &cx);
        let main_ir = &ir.functions[main_id];
        assert!(!main_ir
            .insts
            .iter()
            .any(|i| matches!(i.op, Op::Call { .. })));
        assert!(main_ir
            .scopes
            .iter()
            .any(|s| matches!(s, ScopeKind::Inlined { .. })));
        // The callee's parameter now exists as an inlined variable.
        assert!(main_ir.vars.iter().any(|v| v.name == "p0"));
    }

    #[test]
    fn inlined_program_still_stores_to_global() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let callee = b.function("setg", Ty::I32);
        let p0 = b.param(callee, "p0", Ty::I32);
        b.push(callee, Stmt::assign(LValue::global(g), Expr::local(p0)));
        b.push(callee, Stmt::ret(None));
        let main = b.function("main", Ty::I32);
        b.push(main, Stmt::call_internal(callee, vec![Expr::lit(9)]));
        b.push(main, Stmt::ret(Some(Expr::lit(0))));
        let mut p = b.finish();
        let (mut ir, cx) = lowered(&mut p);
        let main_id = p.main().0;
        inline_calls(&mut ir.functions[main_id], &cx);
        assert!(ir.functions[main_id]
            .insts
            .iter()
            .any(|i| matches!(i.op, Op::StoreGlobal { .. })));
    }

    #[test]
    fn unroll_replicates_straight_line_bodies() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let a = b.global_array("a", Ty::I32, false, vec![3], vec![1, 2, 3]);
        let main = b.function("main", Ty::I32);
        let i = b.local(main, "i", Ty::I32);
        b.push(
            main,
            Stmt::for_loop(
                Some(Stmt::assign(LValue::local(i), Expr::lit(0))),
                Some(Expr::binary(BinOp::Lt, Expr::local(i), Expr::lit(3))),
                Some(Stmt::assign(
                    LValue::local(i),
                    Expr::binary(BinOp::Add, Expr::local(i), Expr::lit(1)),
                )),
                vec![Stmt::assign(
                    LValue::global(g),
                    Expr::binary(
                        BinOp::Add,
                        Expr::global(g),
                        Expr::index(VarRef::Global(a), vec![Expr::local(i)]),
                    ),
                )],
            ),
        );
        b.push(main, Stmt::ret(Some(Expr::global(g))));
        let mut p = b.finish();
        let (mut ir, _cx) = lowered(&mut p);
        let stores_before = count_stores(&ir.functions[0]);
        unroll_loops(&mut ir.functions[0]);
        let stores_after = count_stores(&ir.functions[0]);
        assert_eq!(stores_after, stores_before * 3);
        assert!(ir.functions[0].loops.is_empty());
        assert!(!ir.functions[0]
            .insts
            .iter()
            .any(|i| matches!(i.op, Op::BranchZero { .. })));
    }

    fn count_stores(f: &IrFunction) -> usize {
        f.insts
            .iter()
            .filter(|i| matches!(i.op, Op::StoreGlobal { .. }))
            .count()
    }

    #[test]
    fn promote_slots_rewrites_bindings() {
        let mut f = IrFunction {
            name: "f".into(),
            source: FunctionId(0),
            vars: Vec::new(),
            scopes: vec![ScopeKind::Function],
            slots: 1,
            next_temp: 10,
            insts: Vec::new(),
            loops: Vec::new(),
            param_temps: Vec::new(),
            decl_line: 1,
            pure_const: None,
        };
        let var = f.add_var(DebugVar {
            name: "x".into(),
            scope: ScopeId(0),
            is_param: false,
            decl_line: 1,
            suppress_die: false,
        });
        f.insts = vec![
            Inst::new(
                Op::StoreSlot {
                    slot: SlotId(0),
                    value: Value::Const(3),
                },
                1,
            ),
            Inst::new(
                Op::DbgValue {
                    var,
                    loc: DbgLoc::Slot(SlotId(0)),
                },
                1,
            ),
            Inst::new(
                Op::LoadSlot {
                    dst: Temp(0),
                    slot: SlotId(0),
                },
                2,
            ),
            Inst::new(
                Op::Ret {
                    value: Some(Value::Temp(Temp(0))),
                },
                2,
            ),
        ];
        promote_slots(&mut f);
        assert!(!f.insts.iter().any(|i| matches!(i.op, Op::StoreSlot { .. })));
        assert!(matches!(
            f.insts[1].op,
            Op::DbgValue {
                loc: DbgLoc::Value(Value::Temp(_)),
                ..
            }
        ));
    }

    #[test]
    fn scheduler_preserves_dependencies() {
        let mut f = IrFunction {
            name: "f".into(),
            source: FunctionId(0),
            vars: Vec::new(),
            scopes: vec![ScopeKind::Function],
            slots: 0,
            next_temp: 10,
            insts: Vec::new(),
            loops: Vec::new(),
            param_temps: Vec::new(),
            decl_line: 1,
            pure_const: None,
        };
        use holes_minic::ast::GlobalId;
        f.insts = vec![
            Inst::new(
                Op::Copy {
                    dst: Temp(0),
                    src: Value::Const(1),
                },
                1,
            ),
            Inst::new(
                Op::LoadGlobal {
                    dst: Temp(1),
                    global: GlobalId(0),
                    index: None,
                    volatile: false,
                },
                2,
            ),
            Inst::new(
                Op::Bin {
                    dst: Temp(2),
                    op: BinOp::Add,
                    lhs: Value::Temp(Temp(1)),
                    rhs: Value::Const(1),
                },
                3,
            ),
            Inst::new(
                Op::LoadGlobal {
                    dst: Temp(3),
                    global: GlobalId(0),
                    index: None,
                    volatile: false,
                },
                4,
            ),
        ];
        schedule_loads(&mut f);
        // The first load was hoisted above the independent constant copy.
        assert!(matches!(f.insts[0].op, Op::LoadGlobal { dst: Temp(1), .. }));
        // The second load must not move above the Bin that it does not
        // depend on? It may: check that the dependent Bin still precedes uses
        // of its own result and that the def of Temp(1) still precedes its use.
        let def_pos = f
            .insts
            .iter()
            .position(|i| i.op.def() == Some(Temp(1)))
            .unwrap();
        let use_pos = f
            .insts
            .iter()
            .position(|i| i.op.uses().contains(&Value::Temp(Temp(1))))
            .unwrap();
        assert!(def_pos < use_pos);
    }
}
