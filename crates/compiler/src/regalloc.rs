//! Backend-neutral linear-scan register allocation over [`VCode`].
//!
//! The allocator is the second stage of the backend pipeline: it consumes
//! the per-IR-position liveness summaries ([`PosInfo`]) lowering recorded,
//! computes live ranges, runs a linear scan with pinned parameter
//! registers, and returns an [`Allocation`]: every vreg's [`Storage`] plus
//! an explicit list of spill/reload [`Edit`]s keyed by virtual-instruction
//! index. Emission applies the edits mechanically — it never re-derives
//! spill decisions — so the allocator is the single authority on where
//! values live.
//!
//! The algorithm is intentionally identical to the one the monolithic
//! register backend used before the pipeline split (same range
//! construction, same free-list discipline, same spill heuristic), because
//! the default backend's machine code is pinned byte-for-byte by golden
//! tests: refactoring must not move a single register.
//!
//! [`PosInfo`]: crate::vcode::PosInfo

use std::collections::HashMap;

use crate::vcode::{Storage, VCode, VInstruction, VReg};

/// A spill/reload edit the emission stage must insert around a virtual
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edit {
    /// Before the instruction: load spill ordinal `spill` into register
    /// `to`. Reloads for one instruction are listed in operand evaluation
    /// order.
    Reload {
        /// Spill ordinal to load from.
        spill: u32,
        /// Scratch register to load into.
        to: u8,
    },
    /// After the instruction: store register `from` to spill ordinal
    /// `spill`.
    SpillStore {
        /// Spill ordinal to store to.
        spill: u32,
        /// Register holding the freshly computed value.
        from: u8,
    },
}

/// The allocator's output: vreg homes plus the edit list.
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    /// Where every vreg lives. Spills are numbered by ordinal in the order
    /// the scan created them.
    pub homes: HashMap<VReg, Storage>,
    /// Number of spill ordinals allocated.
    pub spill_count: u32,
    /// Spill/reload edits, sorted by virtual-instruction index; within one
    /// index, reloads precede the spill store, in operand order.
    pub edits: Vec<(u32, Edit)>,
}

impl Allocation {
    /// The storage assigned to a vreg (`None` for vregs that never appear
    /// in the function's liveness — defensive, lowering records every use).
    pub fn home(&self, vreg: VReg) -> Option<Storage> {
        self.homes.get(&vreg).copied()
    }
}

/// Run linear-scan allocation over `vcode` with `allocatable` physical
/// registers (registers `0..allocatable`; anything above is scratch and
/// never assigned).
pub fn allocate<I: VInstruction>(vcode: &VCode<I>, allocatable: u8) -> Allocation {
    let mut allocation = Allocation::default();
    assign_homes(vcode, allocatable, &mut allocation);
    plan_edits(vcode, &mut allocation);
    allocation
}

/// Live-range construction and the linear scan itself.
fn assign_homes<I>(vcode: &VCode<I>, allocatable: u8, allocation: &mut Allocation) {
    let end = vcode.end_position();
    let mut first_def: HashMap<VReg, usize> = HashMap::new();
    let mut last_use: HashMap<VReg, usize> = HashMap::new();
    for param in &vcode.params {
        first_def.insert(*param, 0);
        last_use.insert(*param, end);
    }
    let extend = |map: &mut HashMap<VReg, usize>, v: VReg, i: usize| {
        let entry = map.entry(v).or_insert(i);
        *entry = (*entry).max(i);
    };
    for (i, pos) in vcode.positions.iter().enumerate() {
        if let Some(d) = pos.def {
            first_def.entry(d).or_insert(i);
            extend(&mut last_use, d, i);
        }
        for &u in &pos.uses {
            first_def.entry(u).or_insert(i);
            extend(&mut last_use, u, i);
        }
        if let Some(t) = pos.dbg_use {
            // Debug-referenced vregs stay live to the end of the function so
            // their location descriptions remain valid.
            first_def.entry(t).or_insert(i);
            extend(&mut last_use, t, end);
        }
    }
    // Loop back edges: a vreg live anywhere inside a loop must stay live
    // until the backward branch, otherwise a vreg defined later in the body
    // could take its register and clobber it on the next iteration.
    let mut back_edges: Vec<(usize, usize)> = Vec::new();
    for (i, pos) in vcode.positions.iter().enumerate() {
        if let Some(t) = pos.branch_target {
            if t < i {
                back_edges.push((t, i));
            }
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for &(header, branch) in &back_edges {
            for (vreg, start) in first_def.iter() {
                let stop = last_use.get(vreg).copied().unwrap_or(*start);
                if *start <= branch && stop >= header && stop < branch {
                    last_use.insert(*vreg, branch);
                    changed = true;
                }
            }
        }
    }
    let mut ranges: Vec<(VReg, usize, usize)> = first_def
        .iter()
        .map(|(v, start)| (*v, *start, *last_use.get(v).unwrap_or(start)))
        .collect();
    ranges.sort_by_key(|(v, start, _)| (*start, v.0));

    let mut free: Vec<u8> = (0..allocatable).rev().collect();
    // Pre-colour parameters into the argument registers; they are pinned
    // (never spilled) because the calling convention delivers arguments
    // there.
    let pinned: Vec<VReg> = vcode.params.clone();
    let mut active: Vec<(usize, VReg, u8)> = Vec::new();
    for (i, param) in vcode.params.iter().enumerate() {
        let reg = i as u8;
        free.retain(|r| *r != reg);
        allocation.homes.insert(*param, Storage::Reg(reg));
        active.push((end, *param, reg));
    }
    for (vreg, start, stop) in ranges {
        if allocation.homes.contains_key(&vreg) {
            continue;
        }
        // Expire old intervals.
        let mut still_active = Vec::new();
        for (a_end, a_vreg, a_reg) in active.drain(..) {
            if a_end < start {
                free.push(a_reg);
            } else {
                still_active.push((a_end, a_vreg, a_reg));
            }
        }
        active = still_active;
        if let Some(reg) = free.pop() {
            allocation.homes.insert(vreg, Storage::Reg(reg));
            active.push((stop, vreg, reg));
        } else {
            // Spill: prefer to spill the spillable active interval that
            // ends last (never a pinned parameter).
            active.sort_by_key(|(e, _, _)| *e);
            let victim_index = active.iter().rposition(|(_, v, _)| !pinned.contains(v));
            let spill_self = match victim_index {
                Some(vi) => active[vi].0 < stop,
                None => true,
            };
            if spill_self {
                let ordinal = allocation.spill_count;
                allocation.spill_count += 1;
                allocation.homes.insert(vreg, Storage::Spill(ordinal));
            } else {
                let (_, victim, reg) = active.remove(victim_index.expect("victim exists"));
                let ordinal = allocation.spill_count;
                allocation.spill_count += 1;
                allocation.homes.insert(victim, Storage::Spill(ordinal));
                allocation.homes.insert(vreg, Storage::Reg(reg));
                active.push((stop, vreg, reg));
            }
        }
    }
}

/// Walk the virtual instructions and record the reload/spill-store edits
/// their operand constraints require for spilled vregs.
fn plan_edits<I: VInstruction>(vcode: &VCode<I>, allocation: &mut Allocation) {
    for (i, vinst) in vcode.insts.iter().enumerate() {
        vinst.inst.visit_uses(&mut |vreg, reload_into| {
            if let (Some(Storage::Spill(spill)), Some(to)) =
                (allocation.homes.get(&vreg).copied(), reload_into)
            {
                allocation
                    .edits
                    .push((i as u32, Edit::Reload { spill, to }));
            }
        });
        if let Some(def) = vinst.inst.def() {
            if def.store_after {
                if let Some(Storage::Spill(spill)) = allocation.homes.get(&def.vreg).copied() {
                    allocation.edits.push((
                        i as u32,
                        Edit::SpillStore {
                            spill,
                            from: def.scratch,
                        },
                    ));
                }
            }
        }
    }
}
