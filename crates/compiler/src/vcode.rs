//! The ISA-agnostic virtual-register code container (`VCode`).
//!
//! This is the middle layer of the Cranelift-style backend pipeline
//!
//! ```text
//!   IR ──lowering──▶ VCode<I> ──regalloc──▶ Allocation ──emission──▶ machine code
//! ```
//!
//! Per-ISA *lowering* turns each IR instruction into one or more virtual
//! instructions (`I`) over virtual registers ([`VReg`]), wrapped in a
//! [`VInst`] that carries the source line, lexical scope and statement flag
//! the line table will need. The backend-neutral allocator
//! ([`crate::regalloc`]) never inspects `I` itself: liveness is summarised
//! per *IR position* in [`PosInfo`] (one entry per IR instruction, recorded
//! by lowering), and the per-instruction operand constraints it needs to
//! plan spill/reload edits are exposed through the [`VInstruction`] trait.
//!
//! Keeping liveness at IR-position granularity (rather than per virtual
//! instruction) is a deliberate compatibility decision: however many
//! machine instructions an IR operation lowers to, its temps interfere at
//! exactly one position — so every backend that lowers the same IR computes
//! the same live ranges and therefore the same assignments.

use crate::ir::ScopeId;

/// A virtual register: the unit the register allocator assigns a physical
/// register or spill slot to. Lowering maps IR temps to virtual registers
/// one-to-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

/// Where the allocator homed a virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Storage {
    /// A physical register.
    Reg(u8),
    /// Spill ordinal `n` (the *n*-th spill the scan created, 0-based). The
    /// frame layout ([`crate::frame::FrameLayout::spill_slot`]) maps
    /// ordinals to concrete frame slots.
    Spill(u32),
}

/// The definition constraint of a virtual instruction: which virtual
/// register it writes, the scratch register the value is computed into when
/// the vreg is spilled, and whether this instruction is the one after which
/// a spilled definition must be stored back to its slot (multi-instruction
/// lowerings set the flag only on the final instruction of the group).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VDef {
    /// The virtual register defined.
    pub vreg: VReg,
    /// Scratch register a spilled definition is computed into.
    pub scratch: u8,
    /// Whether a spill store edit belongs after this instruction.
    pub store_after: bool,
}

/// The operand-constraint interface the backend-neutral allocator uses to
/// plan explicit spill/reload edits without knowing the ISA.
pub trait VInstruction {
    /// Visit every virtual-register use in evaluation order. `reload_into`
    /// is `Some(scratch)` when a spilled value must be reloaded into that
    /// scratch register before the instruction executes, `None` when the
    /// instruction can consume the spill slot directly (e.g. call
    /// arguments on ISAs with memory operands).
    fn visit_uses(&self, visit: &mut dyn FnMut(VReg, Option<u8>));

    /// The definition constraint, if the instruction defines a vreg.
    fn def(&self) -> Option<VDef>;
}

/// One lowered virtual instruction plus the source metadata emission needs
/// for the line table and scope map.
#[derive(Debug, Clone)]
pub struct VInst<I> {
    /// The ISA-specific virtual instruction.
    pub inst: I,
    /// Source line.
    pub line: u32,
    /// Lexical scope.
    pub scope: ScopeId,
    /// Whether the machine instruction this lowers to starts a source
    /// statement (the line table's `is_stmt` flag). Spill/reload edits
    /// inserted around it are never statements.
    pub is_stmt: bool,
}

/// The liveness summary of one IR position: which vregs the IR instruction
/// at that position defines, uses, and keeps observable for debug info, and
/// where its branch (if any) targets. Lowering records one entry per IR
/// instruction; the allocator computes live ranges from these alone.
#[derive(Debug, Clone, Default)]
pub struct PosInfo {
    /// The vreg defined at this position, if any.
    pub def: Option<VReg>,
    /// The vregs used at this position.
    pub uses: Vec<VReg>,
    /// A vreg referenced by a debug binding at this position: it must stay
    /// allocated (live to the end of the function) so the variable's
    /// location remains valid — mirroring how the unoptimized baseline
    /// keeps every variable observable.
    pub dbg_use: Option<VReg>,
    /// For branches, the IR position of the target label (used to detect
    /// loop back edges).
    pub branch_target: Option<usize>,
}

/// A function lowered to virtual-register code, ready for register
/// allocation and emission.
#[derive(Debug, Clone)]
pub struct VCode<I> {
    /// Function name.
    pub name: String,
    /// Declaration line (prologue instructions are attributed to it).
    pub decl_line: u32,
    /// The lowered virtual instructions, in emission order.
    pub insts: Vec<VInst<I>>,
    /// Per-IR-position liveness summaries (one per IR instruction).
    pub positions: Vec<PosInfo>,
    /// Parameter vregs in argument order; the calling convention pins them
    /// to the first argument registers.
    pub params: Vec<VReg>,
    /// Frame slots the function's locals occupy before any spill slots.
    pub local_slots: u32,
    /// Base code address of the function.
    pub base_address: u64,
}

impl<I> VCode<I> {
    /// The position count — the exclusive upper bound of live ranges
    /// (debug-referenced vregs are extended to it).
    pub fn end_position(&self) -> usize {
        self.positions.len()
    }
}
