//! A minimal, dependency-free JSON representation with a deterministic
//! writer — the stable interchange format of the campaign driver.
//!
//! The workspace is fully offline (no serde), so the sharded campaign files
//! and machine-readable reports of the `holes` CLI are built on this hand-
//! rolled module instead. Its two guarantees matter more than generality:
//!
//! * **Determinism.** Objects preserve insertion order and the writer is a
//!   pure function of the value, so equal values always serialize to equal
//!   bytes — the property that lets K merged shard files reproduce a
//!   monolithic campaign byte-for-byte.
//! * **Losslessness.** Numbers are carried as their canonical decimal text
//!   (no round-trip through `f64`), so 64-bit seeds survive parsing and
//!   re-serialization exactly.
//!
//! The parser accepts standard JSON (escapes, surrogate pairs, nesting up to
//! a fixed depth limit) and reports byte offsets on errors.

use std::fmt::Write as _;

/// Nesting depth limit of the parser; deeper documents are rejected rather
/// than risking stack exhaustion on adversarial input.
const MAX_DEPTH: usize = 128;

/// A JSON value.
///
/// Objects are ordered lists of `(key, value)` pairs: insertion order is
/// preserved and duplicate keys are representable (the writer emits them
/// verbatim; [`Json::get`] returns the first match, as most JSON readers
/// do).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// A number, stored as its canonical decimal literal so 64-bit integers
    /// round-trip exactly. Construct via [`Json::from_u64`] and friends.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number value from an unsigned integer.
    pub fn from_u64(n: u64) -> Json {
        Json::Num(n.to_string())
    }

    /// A number value from a signed integer.
    pub fn from_i64(n: i64) -> Json {
        Json::Num(n.to_string())
    }

    /// A number value from a `usize`.
    pub fn from_usize(n: usize) -> Json {
        Json::Num(n.to_string())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The boolean payload, if this is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number parsed as `u64`, if this is an integral [`Json::Num`] in
    /// range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `i64`, if this is an integral [`Json::Num`] in
    /// range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `usize`, if this is an integral [`Json::Num`] in
    /// range.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `f64`, if this is a [`Json::Num`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is a [`Json::Arr`].
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The `(key, value)` pairs, if this is a [`Json::Obj`].
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The first value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Serialize with two-space indentation and a trailing newline — the
    /// deterministic on-disk format of campaign shard files and reports.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialize without any whitespace.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            _ => self.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(text) => out.push_str(text),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Exactly one value is expected; trailing
    /// content other than whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value(0)?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing content after the JSON value"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting deeper than the supported limit"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected byte `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.error("unescaped control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let escaped = self.peek().ok_or_else(|| self.error("truncated escape"))?;
        self.pos += 1;
        match escaped {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let unit = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&unit) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let low = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&low) {
                            return Err(self.error("invalid low surrogate"));
                        }
                        let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                        char::from_u32(combined)
                    } else {
                        None
                    }
                } else {
                    char::from_u32(unit)
                };
                out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
            }
            other => return Err(self.error(format!("unknown escape `\\{}`", other as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        // Exactly four ASCII hex digits — `u32::from_str_radix` alone would
        // also accept a leading `+`, letting `\u+123` slip through.
        if !digits.iter().all(u8::is_ascii_hexdigit) {
            return Err(self.error("invalid \\u escape"));
        }
        let unit = digits.iter().fold(0u32, |unit, &digit| {
            unit << 4 | (digit as char).to_digit(16).expect("validated hex digit")
        });
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let integer_digits = self.digits();
        if integer_digits == 0 {
            return Err(self.error("expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.error("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.error("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        Ok(Json::Num(text.to_owned()))
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_pretty_and_compact_forms() {
        let value = Json::Obj(vec![
            ("format".to_owned(), Json::str("holes.campaign/v1")),
            ("seed".to_owned(), Json::from_u64(u64::MAX)),
            ("delta".to_owned(), Json::from_i64(-42)),
            ("ok".to_owned(), Json::Bool(true)),
            ("none".to_owned(), Json::Null),
            (
                "records".to_owned(),
                Json::Arr(vec![
                    Json::from_usize(7),
                    Json::str("quote \" backslash \\ newline \n tab \t"),
                    Json::Arr(vec![]),
                    Json::Obj(vec![]),
                ]),
            ),
        ]);
        for rendered in [value.to_pretty(), value.to_compact()] {
            assert_eq!(Json::parse(&rendered).unwrap(), value, "{rendered}");
        }
        // u64::MAX survives exactly (would be lossy through f64).
        let reparsed = Json::parse(&value.to_pretty()).unwrap();
        assert_eq!(reparsed.get("seed").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(reparsed.get("delta").unwrap().as_i64(), Some(-42));
    }

    #[test]
    fn writer_is_deterministic_and_order_preserving() {
        let a = Json::Obj(vec![
            ("z".to_owned(), Json::from_u64(1)),
            ("a".to_owned(), Json::from_u64(2)),
        ]);
        assert_eq!(a.to_pretty(), a.clone().to_pretty());
        let text = a.to_compact();
        assert!(
            text.find("\"z\"").unwrap() < text.find("\"a\"").unwrap(),
            "insertion order must be preserved: {text}"
        );
    }

    #[test]
    fn accessors_select_the_expected_payloads() {
        let value = Json::parse(r#"{"n": 3, "s": "x", "b": false, "a": [1], "f": 1.5}"#).unwrap();
        assert_eq!(value.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(value.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(value.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(value.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(value.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(value.get("f").unwrap().as_u64(), None, "1.5 is not a u64");
        assert_eq!(value.get("missing"), None);
        assert_eq!(value.as_obj().unwrap().len(), 5);
        assert_eq!(value.get("n").unwrap().as_str(), None);
        assert_eq!(value.get("s").unwrap().as_u64(), None);
    }

    #[test]
    fn parser_handles_escapes_and_surrogate_pairs() {
        let parsed = Json::parse(r#""a\/b A 😀 é""#).unwrap();
        assert_eq!(parsed.as_str(), Some("a/b A \u{1F600} é"));
        // The writer escapes control characters, and they re-parse.
        let value = Json::str("bell\u{7}");
        assert!(value.to_compact().contains("\\u0007"));
        assert_eq!(Json::parse(&value.to_compact()).unwrap(), value);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "01x",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"lone \\uD800 surrogate\"",
            "nul",
            "true false",
            "[1] []",
            "-",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad:?}");
        }
    }

    /// The `\u` escape is exactly four hex digits, and a high surrogate
    /// must be completed by a `\u`-escaped low surrogate — every way of
    /// falling short (signs smuggled into the hex field, the string or the
    /// document ending mid-escape, a high surrogate followed by anything
    /// else) is a parse error, not a silently accepted code unit.
    #[test]
    fn parser_rejects_malformed_unicode_escapes() {
        for bad in [
            // `u32::from_str_radix` accepts `+123`; the escape must not.
            r#""\u+123""#,
            r#""\u-123""#,
            r#""\u12g4""#,
            // EOF mid-escape: in the hex field and between the digits.
            r#""\u"#,
            r#""\u12"#,
            r#""\uD800\u"#,
            // A lone high surrogate at the end of the string.
            r#""\uD800""#,
            // A high surrogate completed by a non-`\u` escape…
            r#""\uD800\n""#,
            // …by a plain character…
            r#""\uD800x""#,
            // …or by a `\u` escape that is not a low surrogate.
            r#""\uD800\u0041""#,
            // An unpaired low surrogate is no better.
            r#""\uDC00""#,
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // The boundary cases around the surrogate range still parse.
        assert_eq!(
            Json::parse(r#""\uD7FF\uE000""#).unwrap().as_str(),
            Some("\u{D7FF}\u{E000}")
        );
        assert_eq!(
            Json::parse(r#""\uD800\uDC00""#).unwrap().as_str(),
            Some("\u{10000}")
        );
    }

    #[test]
    fn parser_enforces_the_depth_limit() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
    }
}
