//! The paper's core contribution: conjecture-based detection of incomplete
//! debug information, plus the quantitative metrics of §2.
//!
//! Three empirically derived conjectures predict when a variable *should* be
//! available while debugging optimized code:
//!
//! * **Conjecture 1** ([`check_conjecture1`]): a variable passed as an
//!   argument to a call to an opaque function must be available at the call
//!   line.
//! * **Conjecture 2** ([`check_conjecture2`]): at a line assigning global
//!   storage through a non-simplifiable expression, constituent variables
//!   that are constants, address constants, or unalterable loop indices that
//!   stay live must be available.
//! * **Conjecture 3** ([`check_conjecture3`]): after a local variable is
//!   assigned, its availability may only stay the same or decay until the
//!   next reassignment; it must never improve.
//!
//! A deviation is a [`Violation`]; the campaign pipeline
//! (`holes-pipeline`) aggregates violations across programs, optimization
//! levels and compiler versions to regenerate the paper's tables and figures.
//! The [`metrics`] module computes the line-coverage and
//! availability-of-variables metrics of the preliminary study (Figure 1).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod json;
pub mod metrics;

use std::sync::Arc;

use holes_debugger::{DebugTrace, VarStatus};
use holes_minic::analysis::{ConstituentKind, ProgramAnalysis};
use holes_minic::ast::{FunctionId, Program, VarRef};
use holes_minic::lines::SourceMap;

/// Which conjecture a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Conjecture {
    /// Visibility of call argument sources.
    C1,
    /// Availability of constituents of global stores.
    C2,
    /// Decaying visibility of a variable.
    C3,
}

impl Conjecture {
    /// All conjectures.
    pub const ALL: [Conjecture; 3] = [Conjecture::C1, Conjecture::C2, Conjecture::C3];

    /// 1-based index as used in the paper's tables.
    pub fn index(self) -> u8 {
        match self {
            Conjecture::C1 => 1,
            Conjecture::C2 => 2,
            Conjecture::C3 => 3,
        }
    }
}

impl std::fmt::Display for Conjecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{}", self.index())
    }
}

/// Failed parse of a [`Conjecture`] or [`Observed`] spelling, as used in
/// report files and CLI flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEnumError {
    what: &'static str,
    input: String,
}

impl ParseEnumError {
    fn new(what: &'static str, input: &str) -> ParseEnumError {
        ParseEnumError {
            what,
            input: input.to_owned(),
        }
    }
}

impl std::fmt::Display for ParseEnumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown {}: `{}`", self.what, self.input)
    }
}

impl std::error::Error for ParseEnumError {}

impl std::str::FromStr for Conjecture {
    type Err = ParseEnumError;

    /// Parse a conjecture from its table spelling (`C1`/`c1`) or bare index
    /// (`1`).
    fn from_str(s: &str) -> Result<Conjecture, ParseEnumError> {
        let index = s.strip_prefix(['C', 'c']).unwrap_or(s);
        Conjecture::ALL
            .into_iter()
            .find(|c| c.index().to_string() == index)
            .ok_or_else(|| ParseEnumError::new("conjecture", s))
    }
}

/// One conjecture violation: at `line`, `variable` was expected to be
/// available but was observed as `observed`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Violation {
    /// The violated conjecture.
    pub conjecture: Conjecture,
    /// The source line where availability was expected.
    pub line: u32,
    /// The variable's source name. Shared (`Arc<str>`) so that campaign
    /// records, unique-violation keys, and triage selections dedup and
    /// clone violations without re-allocating the name.
    pub variable: Arc<str>,
    /// The function containing the line.
    pub function: FunctionId,
    /// What the debugger actually showed.
    pub observed: Observed,
}

/// The observed state of a variable behind a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Observed {
    /// The variable was not listed in the frame at all.
    NotVisible,
    /// The variable was listed but `<optimized out>`.
    OptimizedOut,
    /// The variable's availability *improved* during its lifetime
    /// (Conjecture 3 only).
    Reappeared,
}

impl Observed {
    /// All observations.
    pub const ALL: [Observed; 3] = [
        Observed::NotVisible,
        Observed::OptimizedOut,
        Observed::Reappeared,
    ];

    /// The stable spelling used in report files (`not-visible`,
    /// `optimized-out`, `reappeared`).
    pub fn name(self) -> &'static str {
        match self {
            Observed::NotVisible => "not-visible",
            Observed::OptimizedOut => "optimized-out",
            Observed::Reappeared => "reappeared",
        }
    }
}

impl std::fmt::Display for Observed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Observed {
    type Err = ParseEnumError;

    /// Parse an observation from its [`Observed::name`] spelling.
    fn from_str(s: &str) -> Result<Observed, ParseEnumError> {
        Observed::ALL
            .into_iter()
            .find(|o| o.name() == s)
            .ok_or_else(|| ParseEnumError::new("observation", s))
    }
}

/// A key identifying a violation independently of the optimization level, as
/// the paper counts "unique" violations (Table 1's last row). Cloning the
/// shared name is a reference-count bump, not an allocation.
pub fn violation_key(v: &Violation) -> (Conjecture, u32, Arc<str>) {
    (v.conjecture, v.line, v.variable.clone())
}

/// A targeted oracle query: does a *specific* site violate a conjecture?
///
/// Triage and reduction re-query the oracle many times per violation; running
/// [`check_all`] over every site of the program for each query is the
/// paper's ~30 s-per-conjecture cost. A `SiteQuery` restricts checking to one
/// `(conjecture, line, variable)` site — or, with `line`/`function` left
/// `None`, to one variable anywhere — and short-circuits on the first match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteQuery<'a> {
    /// The conjecture to check.
    pub conjecture: Conjecture,
    /// Restrict to this source line (`None`: any line).
    pub line: Option<u32>,
    /// The variable's source name.
    pub variable: &'a str,
    /// Restrict to this function (`None`: any function).
    pub function: Option<FunctionId>,
}

impl<'a> SiteQuery<'a> {
    /// The query matching exactly one observed violation's site.
    pub fn for_violation(violation: &'a Violation) -> SiteQuery<'a> {
        SiteQuery {
            conjecture: violation.conjecture,
            line: Some(violation.line),
            variable: &violation.variable,
            function: Some(violation.function),
        }
    }

    fn wants_line(&self, line: u32) -> bool {
        self.line.is_none_or(|l| l == line)
    }

    fn wants_function(&self, function: FunctionId) -> bool {
        self.function.is_none_or(|f| f == function)
    }
}

/// Check whether the queried site violates its conjecture under a trace.
///
/// Equivalent to running [`check_all`] and filtering for the site, but visits
/// only the sites the query selects and stops at the first hit.
pub fn query_violation(
    program: &Program,
    analysis: &ProgramAnalysis,
    source: &SourceMap,
    trace: &DebugTrace,
    query: &SiteQuery<'_>,
) -> bool {
    match query.conjecture {
        Conjecture::C1 => query_conjecture1(program, analysis, trace, query),
        Conjecture::C2 => query_conjecture2(program, analysis, trace, query),
        Conjecture::C3 => query_conjecture3(program, analysis, source, trace, query),
    }
}

fn query_conjecture1(
    program: &Program,
    analysis: &ProgramAnalysis,
    trace: &DebugTrace,
    query: &SiteQuery<'_>,
) -> bool {
    for site in &analysis.opaque_calls {
        if !query.wants_line(site.line)
            || !query.wants_function(site.function)
            || trace.stop_at(site.line).is_none()
        {
            continue;
        }
        for &arg in &site.arg_vars {
            let Some(name) = local_name(program, site.function, arg) else {
                continue;
            };
            if name != query.variable {
                continue;
            }
            let status = trace
                .var_at(site.line, &name)
                .unwrap_or(VarStatus::NotVisible);
            if !status.is_available() {
                return true;
            }
        }
    }
    false
}

fn query_conjecture2(
    program: &Program,
    analysis: &ProgramAnalysis,
    trace: &DebugTrace,
    query: &SiteQuery<'_>,
) -> bool {
    for site in &analysis.global_stores {
        if site.simplifiable
            || !query.wants_line(site.line)
            || !query.wants_function(site.function)
            || trace.stop_at(site.line).is_none()
        {
            continue;
        }
        for constituent in &site.constituents {
            let expected = match constituent.kind {
                ConstituentKind::ConstantValued | ConstituentKind::AddressConstant => true,
                ConstituentKind::UnalterableIndex => constituent.live_after,
            };
            if !expected {
                continue;
            }
            let name = &program.function(site.function).local(constituent.var).name;
            if name != query.variable {
                continue;
            }
            let status = trace
                .var_at(site.line, name)
                .unwrap_or(VarStatus::NotVisible);
            if !status.is_available() {
                return true;
            }
        }
    }
    false
}

fn query_conjecture3(
    program: &Program,
    analysis: &ProgramAnalysis,
    source: &SourceMap,
    trace: &DebugTrace,
    query: &SiteQuery<'_>,
) -> bool {
    use std::collections::BTreeMap;
    // Mirror `check_conjecture3`'s walk, restricted to matching
    // (function, local) groups; availability tracking must replay the whole
    // line sequence of a group even when only one line is queried, because
    // the rank comparison is stateful.
    let mut assignments: BTreeMap<(FunctionId, usize), Vec<u32>> = BTreeMap::new();
    for site in &analysis.local_assignments {
        if !query.wants_function(site.function) {
            continue;
        }
        assignments
            .entry((site.function, site.local.0))
            .or_default()
            .push(site.line);
    }
    for ((function, local), mut assign_lines) in assignments {
        let name = &program
            .function(function)
            .local(holes_minic::ast::LocalId(local))
            .name;
        if name != query.variable {
            continue;
        }
        assign_lines.sort_unstable();
        assign_lines.dedup();
        let first = assign_lines[0];
        let mut current_rank: Option<u8> = None;
        for &line in source.lines_of(function).iter().filter(|&&l| l >= first) {
            if assign_lines.contains(&line) {
                current_rank = None;
                continue;
            }
            if trace.stop_at(line).is_none() {
                continue;
            }
            let status = trace.var_at(line, name).unwrap_or(VarStatus::NotVisible);
            let rank = status.rank();
            if let Some(previous) = current_rank {
                if rank > previous && query.wants_line(line) {
                    return true;
                }
            }
            current_rank = Some(rank);
        }
    }
    false
}

fn status_to_observed(status: VarStatus) -> Observed {
    match status {
        VarStatus::NotVisible => Observed::NotVisible,
        _ => Observed::OptimizedOut,
    }
}

fn local_name(program: &Program, function: FunctionId, var: VarRef) -> Option<String> {
    match var {
        VarRef::Local(l) => Some(program.function(function).local(l).name.clone()),
        VarRef::Global(_) => None,
    }
}

/// Check Conjecture 1 against a debugger trace.
pub fn check_conjecture1(
    program: &Program,
    analysis: &ProgramAnalysis,
    trace: &DebugTrace,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for site in &analysis.opaque_calls {
        if trace.stop_at(site.line).is_none() {
            continue;
        }
        for &arg in &site.arg_vars {
            let Some(name) = local_name(program, site.function, arg) else {
                continue;
            };
            let status = trace
                .var_at(site.line, &name)
                .unwrap_or(VarStatus::NotVisible);
            if !status.is_available() {
                out.push(Violation {
                    conjecture: Conjecture::C1,
                    line: site.line,
                    variable: Arc::from(name.as_str()),
                    function: site.function,
                    observed: status_to_observed(status),
                });
            }
        }
    }
    out
}

/// Check Conjecture 2 against a debugger trace.
pub fn check_conjecture2(
    program: &Program,
    analysis: &ProgramAnalysis,
    trace: &DebugTrace,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for site in &analysis.global_stores {
        if site.simplifiable || trace.stop_at(site.line).is_none() {
            continue;
        }
        for constituent in &site.constituents {
            let expected = match constituent.kind {
                ConstituentKind::ConstantValued | ConstituentKind::AddressConstant => true,
                ConstituentKind::UnalterableIndex => constituent.live_after,
            };
            if !expected {
                continue;
            }
            let name = program
                .function(site.function)
                .local(constituent.var)
                .name
                .clone();
            let status = trace
                .var_at(site.line, &name)
                .unwrap_or(VarStatus::NotVisible);
            if !status.is_available() {
                out.push(Violation {
                    conjecture: Conjecture::C2,
                    line: site.line,
                    variable: Arc::from(name.as_str()),
                    function: site.function,
                    observed: status_to_observed(status),
                });
            }
        }
    }
    out
}

/// Check Conjecture 3 against a debugger trace.
pub fn check_conjecture3(
    program: &Program,
    analysis: &ProgramAnalysis,
    source: &SourceMap,
    trace: &DebugTrace,
) -> Vec<Violation> {
    use std::collections::BTreeMap;
    let mut out = Vec::new();
    // Group assignment lines per (function, local).
    let mut assignments: BTreeMap<(FunctionId, usize), Vec<u32>> = BTreeMap::new();
    for site in &analysis.local_assignments {
        assignments
            .entry((site.function, site.local.0))
            .or_default()
            .push(site.line);
    }
    for ((function, local), mut assign_lines) in assignments {
        assign_lines.sort_unstable();
        assign_lines.dedup();
        let first = assign_lines[0];
        let name = program
            .function(function)
            .local(holes_minic::ast::LocalId(local))
            .name
            .clone();
        // All lines of this function at or after the first assignment. Lines
        // the debugger cannot step on are skipped, but reassignment lines
        // always start a fresh variable instance even when their code was
        // optimized away — the refresh is legitimate either way.
        let lines: Vec<u32> = source
            .lines_of(function)
            .iter()
            .copied()
            .filter(|&l| l >= first)
            .collect();
        let mut current_rank: Option<u8> = None;
        for line in lines {
            if assign_lines.contains(&line) {
                // A reassignment legitimately refreshes visibility: it starts
                // a new variable instance. The breakpoint sits *before* the
                // assignment executes, so the rank observed at this very line
                // is not meaningful either way — restart tracking afterwards.
                current_rank = None;
                continue;
            }
            if trace.stop_at(line).is_none() {
                continue;
            }
            let status = trace.var_at(line, &name).unwrap_or(VarStatus::NotVisible);
            let rank = status.rank();
            match current_rank {
                None => current_rank = Some(rank),
                Some(previous) if rank > previous => {
                    out.push(Violation {
                        conjecture: Conjecture::C3,
                        line,
                        variable: Arc::from(name.as_str()),
                        function,
                        observed: Observed::Reappeared,
                    });
                    current_rank = Some(rank);
                }
                Some(_) => current_rank = Some(rank),
            }
        }
    }
    out
}

/// Check all three conjectures and return the combined violation list.
pub fn check_all(
    program: &Program,
    analysis: &ProgramAnalysis,
    source: &SourceMap,
    trace: &DebugTrace,
) -> Vec<Violation> {
    let mut out = check_conjecture1(program, analysis, trace);
    out.extend(check_conjecture2(program, analysis, trace));
    out.extend(check_conjecture3(program, analysis, source, trace));
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use holes_compiler::{compile, CompilerConfig, OptLevel, Personality};
    use holes_debugger::{native_trace, trace, DebuggerKind};
    use holes_minic::ast::{BinOp, Expr, LValue, Stmt, Ty, VarRef};
    use holes_minic::build::ProgramBuilder;
    use holes_progen::ProgramGenerator;

    /// Program mirroring the paper's Conjecture 1 setting: a constant local
    /// passed to the opaque sink.
    fn c1_program() -> (holes_minic::ast::Program, SourceMap, ProgramAnalysis) {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let main = b.function("main", Ty::I32);
        let v2 = b.local(main, "v2", Ty::I32);
        b.push(main, Stmt::decl(v2, Some(Expr::lit(4))));
        b.push(main, Stmt::assign(LValue::global(g), Expr::local(v2)));
        b.push(main, Stmt::call_opaque(vec![Expr::local(v2)]));
        b.push(main, Stmt::ret(Some(Expr::lit(0))));
        let mut p = b.finish();
        let source = p.assign_lines();
        let analysis = ProgramAnalysis::analyze(&p);
        (p, source, analysis)
    }

    #[test]
    fn defect_free_compilation_has_no_violations() {
        let (p, source, analysis) = c1_program();
        for personality in [Personality::Ccg, Personality::Lcc] {
            for level in personality.levels() {
                let exe = compile(
                    &p,
                    &CompilerConfig::new(personality, *level).without_defects(),
                );
                let t = native_trace(&exe);
                let violations = check_all(&p, &analysis, &source, &t);
                assert!(
                    violations.is_empty(),
                    "{personality} {level}: unexpected violations {violations:?}"
                );
            }
        }
    }

    #[test]
    fn o0_baseline_has_no_violations_on_generated_programs() {
        for seed in 0..8 {
            let generated = ProgramGenerator::from_seed(seed).generate();
            let exe = compile(
                &generated.program,
                &CompilerConfig::new(Personality::Ccg, OptLevel::O0),
            );
            let t = trace(&exe, DebuggerKind::GdbLike);
            let violations = check_all(
                &generated.program,
                &generated.analysis,
                &generated.source,
                &t,
            );
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    #[test]
    fn trunk_compilers_produce_violations_somewhere() {
        // With the injected defect catalogue active, a pool of generated
        // programs must expose violations — this is the heart of the paper.
        let mut found = 0usize;
        for seed in 0..10 {
            let generated = ProgramGenerator::from_seed(seed).generate();
            for personality in [Personality::Ccg, Personality::Lcc] {
                for level in personality.levels() {
                    let exe = compile(
                        &generated.program,
                        &CompilerConfig::new(personality, *level),
                    );
                    let t = native_trace(&exe);
                    found += check_all(
                        &generated.program,
                        &generated.analysis,
                        &generated.source,
                        &t,
                    )
                    .len();
                }
            }
        }
        assert!(found > 0, "no violations found across the pool");
    }

    #[test]
    fn conjecture3_detects_reappearing_variables() {
        // Build a trace by compiling with a defect that delays bindings
        // (Conjecture 3's typical cause) and check on a directed program.
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, true, vec![0]);
        let main = b.function("main", Ty::I32);
        let x = b.local(main, "x", Ty::I32);
        b.push(main, Stmt::decl(x, Some(Expr::lit(3))));
        for _ in 0..6 {
            b.push(
                main,
                Stmt::assign(
                    LValue::global(g),
                    Expr::binary(BinOp::Add, Expr::global(g), Expr::lit(1)),
                ),
            );
        }
        b.push(main, Stmt::call_opaque(vec![Expr::local(x)]));
        b.push(main, Stmt::ret(Some(Expr::lit(0))));
        let mut p = b.finish();
        let source = p.assign_lines();
        let analysis = ProgramAnalysis::analyze(&p);
        // ccg at -Og carries DelayDbg defects (modelling gcc bug 104938).
        let exe = compile(&p, &CompilerConfig::new(Personality::Ccg, OptLevel::Og));
        let t = native_trace(&exe);
        let violations = check_conjecture3(&p, &analysis, &source, &t);
        // The delayed binding makes x unavailable right after its declaration
        // and available again later, which the conjecture flags.
        assert!(
            violations.iter().all(|v| v.variable.as_ref() == "x"),
            "unexpected variables in {violations:?}"
        );
    }

    #[test]
    fn violations_identify_line_and_variable() {
        let (p, source, analysis) = c1_program();
        // Force a C1 violation by compiling with the ccg trunk at O2 where the
        // cfg-cleanup defect (modelling gcc bug 105158) drops bindings.
        let exe = compile(&p, &CompilerConfig::new(Personality::Ccg, OptLevel::O2));
        let t = native_trace(&exe);
        let violations = check_all(&p, &analysis, &source, &t);
        for v in &violations {
            assert!(!v.variable.is_empty());
            assert!(v.line > 0);
            let _ = violation_key(v);
        }
    }

    #[test]
    fn targeted_query_agrees_with_check_all() {
        // Every violation check_all finds must be confirmed by the targeted
        // query, and a query for an untouched variable must come back false.
        for seed in 0..12u64 {
            let generated = ProgramGenerator::from_seed(seed).generate();
            for personality in [Personality::Ccg, Personality::Lcc] {
                for level in personality.levels() {
                    let exe = compile(
                        &generated.program,
                        &CompilerConfig::new(personality, *level),
                    );
                    let t = native_trace(&exe);
                    let violations = check_all(
                        &generated.program,
                        &generated.analysis,
                        &generated.source,
                        &t,
                    );
                    for v in &violations {
                        assert!(
                            query_violation(
                                &generated.program,
                                &generated.analysis,
                                &generated.source,
                                &t,
                                &SiteQuery::for_violation(v),
                            ),
                            "seed {seed} {personality} {level}: targeted query missed {v:?}"
                        );
                        // Anywhere-queries subsume exact-site queries.
                        assert!(query_violation(
                            &generated.program,
                            &generated.analysis,
                            &generated.source,
                            &t,
                            &SiteQuery {
                                conjecture: v.conjecture,
                                line: None,
                                variable: &v.variable,
                                function: None,
                            },
                        ));
                    }
                    for conjecture in Conjecture::ALL {
                        assert!(
                            !query_violation(
                                &generated.program,
                                &generated.analysis,
                                &generated.source,
                                &t,
                                &SiteQuery {
                                    conjecture,
                                    line: None,
                                    variable: "no_such_variable",
                                    function: None,
                                },
                            ),
                            "query for a nonexistent variable matched"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn targeted_query_rejects_sites_without_violations() {
        // The inverse direction on a directed program: for sites check_all
        // does NOT flag, the targeted query must also come back false.
        let (p, source, analysis) = c1_program();
        let exe = compile(&p, &CompilerConfig::new(Personality::Ccg, OptLevel::O2));
        let t = native_trace(&exe);
        let violations = check_all(&p, &analysis, &source, &t);
        for conjecture in Conjecture::ALL {
            for line in 1..=10u32 {
                let hit = query_violation(
                    &p,
                    &analysis,
                    &source,
                    &t,
                    &SiteQuery {
                        conjecture,
                        line: Some(line),
                        variable: "v2",
                        function: None,
                    },
                );
                let expected = violations.iter().any(|v| {
                    v.conjecture == conjecture && v.line == line && v.variable.as_ref() == "v2"
                });
                assert_eq!(hit, expected, "{conjecture} line {line}");
            }
        }
    }

    #[test]
    fn conjecture_display_and_index() {
        assert_eq!(Conjecture::C1.to_string(), "C1");
        assert_eq!(Conjecture::C3.index(), 3);
        assert_eq!(Conjecture::ALL.len(), 3);
        let _ = VarRef::Local(holes_minic::ast::LocalId(0));
    }

    #[test]
    fn conjecture_and_observation_spellings_round_trip() {
        for conjecture in Conjecture::ALL {
            assert_eq!(conjecture.to_string().parse(), Ok(conjecture));
            assert_eq!(conjecture.index().to_string().parse(), Ok(conjecture));
        }
        assert!("C4".parse::<Conjecture>().is_err());
        for observed in Observed::ALL {
            assert_eq!(observed.name().parse(), Ok(observed));
            assert_eq!(observed.to_string(), observed.name());
        }
        assert!("visible".parse::<Observed>().is_err());
        assert!("C4"
            .parse::<Conjecture>()
            .unwrap_err()
            .to_string()
            .contains("C4"));
    }
}
