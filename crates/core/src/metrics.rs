//! The quantitative metrics of the paper's preliminary study (§2, Figure 1).
//!
//! Both metrics compare an optimized executable's debugging experience
//! against the `-O0` baseline of the *same* program and compiler version:
//!
//! * **line coverage** — the ratio of unique source lines the debugger can
//!   step on, compared to the baseline;
//! * **availability of variables** — the average, over the lines steppable in
//!   both instances, of the ratio of variables shown with a value;
//! * their **product**, which the paper uses to compare optimization levels.

use holes_debugger::DebugTrace;

/// The three metrics for one (program, level) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Ratio of stepped lines vs the `-O0` baseline.
    pub line_coverage: f64,
    /// Average ratio of available variables on common lines.
    pub availability: f64,
    /// `line_coverage * availability`.
    pub product: f64,
}

impl Metrics {
    /// Compute the metrics of an optimized trace against its baseline.
    pub fn compute(optimized: &DebugTrace, baseline: &DebugTrace) -> Metrics {
        let line_coverage = line_coverage(optimized, baseline);
        let availability = availability_of_variables(optimized, baseline);
        Metrics {
            line_coverage,
            availability,
            product: line_coverage * availability,
        }
    }

    /// Average several metric values (used to report pool-wide averages, as
    /// the paper does for its 5000-program study).
    pub fn average(values: &[Metrics]) -> Metrics {
        if values.is_empty() {
            return Metrics {
                line_coverage: 0.0,
                availability: 0.0,
                product: 0.0,
            };
        }
        let n = values.len() as f64;
        Metrics {
            line_coverage: values.iter().map(|m| m.line_coverage).sum::<f64>() / n,
            availability: values.iter().map(|m| m.availability).sum::<f64>() / n,
            product: values.iter().map(|m| m.product).sum::<f64>() / n,
        }
    }
}

/// Ratio of unique source lines stepped on, compared to the baseline.
pub fn line_coverage(optimized: &DebugTrace, baseline: &DebugTrace) -> f64 {
    let baseline_lines: Vec<u32> = baseline.reached.keys().copied().collect();
    if baseline_lines.is_empty() {
        return 0.0;
    }
    let common = baseline_lines
        .iter()
        .filter(|l| optimized.reached.contains_key(l))
        .count();
    common as f64 / baseline_lines.len() as f64
}

/// Average ratio of available variables on lines stepped on in both
/// instances.
pub fn availability_of_variables(optimized: &DebugTrace, baseline: &DebugTrace) -> f64 {
    let mut ratios = Vec::new();
    for &line in baseline.reached.keys() {
        if !optimized.reached.contains_key(&line) {
            continue;
        }
        let base_count = baseline.available_count(line);
        if base_count == 0 {
            continue;
        }
        let opt_count = optimized.available_count(line).min(base_count);
        ratios.push(opt_count as f64 / base_count as f64);
    }
    if ratios.is_empty() {
        1.0
    } else {
        ratios.iter().sum::<f64>() / ratios.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holes_compiler::{compile, CompilerConfig, OptLevel, Personality};
    use holes_debugger::native_trace;
    use holes_progen::ProgramGenerator;

    fn traces_for(seed: u64, level: OptLevel) -> (DebugTrace, DebugTrace) {
        let generated = ProgramGenerator::from_seed(seed).generate();
        let baseline = compile(
            &generated.program,
            &CompilerConfig::new(Personality::Ccg, OptLevel::O0),
        );
        let optimized = compile(
            &generated.program,
            &CompilerConfig::new(Personality::Ccg, level),
        );
        (native_trace(&optimized), native_trace(&baseline))
    }

    #[test]
    fn metrics_are_within_unit_interval() {
        for seed in 0..6 {
            for level in [OptLevel::Og, OptLevel::O2, OptLevel::Os] {
                let (opt, base) = traces_for(seed, level);
                let m = Metrics::compute(&opt, &base);
                assert!((0.0..=1.0).contains(&m.line_coverage), "{m:?}");
                assert!((0.0..=1.0).contains(&m.availability), "{m:?}");
                assert!((0.0..=1.0).contains(&m.product), "{m:?}");
            }
        }
    }

    #[test]
    fn baseline_against_itself_is_perfect() {
        let (_, base) = traces_for(3, OptLevel::O2);
        let m = Metrics::compute(&base, &base);
        assert!((m.line_coverage - 1.0).abs() < 1e-9);
        assert!((m.availability - 1.0).abs() < 1e-9);
    }

    #[test]
    fn og_preserves_at_least_as_many_lines_as_o3_on_average() {
        let mut og = Vec::new();
        let mut o3 = Vec::new();
        for seed in 0..8 {
            let (opt, base) = traces_for(seed, OptLevel::Og);
            og.push(Metrics::compute(&opt, &base));
            let (opt, base) = traces_for(seed, OptLevel::O3);
            o3.push(Metrics::compute(&opt, &base));
        }
        let og_avg = Metrics::average(&og);
        let o3_avg = Metrics::average(&o3);
        assert!(
            og_avg.line_coverage >= o3_avg.line_coverage - 1e-9,
            "Og {og_avg:?} vs O3 {o3_avg:?}"
        );
    }

    #[test]
    fn average_of_empty_slice_is_zero() {
        let m = Metrics::average(&[]);
        assert_eq!(m.product, 0.0);
    }
}
