//! A source-level debugger for compiled MiniC executables.
//!
//! This is the reproduction's substitute for gdb and lldb. Following the
//! paper's methodology (§4.2), [`trace`] places a **one-shot breakpoint on
//! the first address of every steppable source line**, runs the program, and
//! records — for each line the execution actually reaches — the variables
//! visible in the current frame and, when debug information permits, their
//! values.
//!
//! Two debugger personalities are provided, reproducing the debugger-side
//! bugs of the paper:
//!
//! * [`DebuggerKind::GdbLike`] mishandles location lists that contain
//!   empty (`start == end`) ranges before the covering entry (gdb bug 28987);
//! * [`DebuggerKind::LldbLike`] cannot display variables of inlined
//!   subroutines whose location lives only in the abstract origin
//!   (lldb bug 50076).
//!
//! Cross-checking the two personalities is how the campaign pipeline decides
//! whether a violation is a compiler or a debugger issue, exactly as the
//! paper repeats each test "in a different debugger".
//!
//! # The allocation-free hot path: stop plans
//!
//! Every breakpoint address of an executable is known before the program
//! runs (the first `is_stmt` address of each steppable line), and debug
//! information never changes while it runs. [`StopPlan`] exploits that:
//! computed once per (executable, debugger personality), it maps each
//! breakpoint address to its function name, its visible variables, and a
//! **pre-resolved location decision** per variable — constant, machine
//! read ([`holes_machine::MachineRead`]), or optimized-out — with every
//! DIE walk, location-list scan, and personality quirk already applied.
//! [`trace_with_plan`] then services each stop with a binary search plus
//! one batched machine read: no DIE traversal, no per-stop `String`
//! allocation (names are interned once per plan as `Arc<str>` and shared
//! by every [`VarView`] and [`LineStop`]). [`trace`] builds a plan and
//! runs it; [`trace_unplanned`] keeps the original per-stop resolution as
//! the reference implementation, and the property suite holds the two
//! paths to full [`DebugTrace`] equality (the paths share the leaf
//! location-decision procedure, so the property guards the planning and
//! batching machinery; the decisions themselves are pinned by the
//! personality-quirk unit tests).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use holes_compiler::Executable;
use holes_debuginfo::{
    Attr, AttrValue, DebugInfo, DieId, DieTag, LocListEntry, Location, ScopeIndex,
};
use holes_machine::{BreakpointSet, MachineError, MachineRead, StopReason, Vm};

/// The debugger personality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DebuggerKind {
    /// Mishandles empty location-list ranges (models gdb).
    GdbLike,
    /// Ignores abstract-origin-only locations of inlined variables
    /// (models lldb).
    LldbLike,
}

impl DebuggerKind {
    /// The debugger a compiler personality's users would reach for, as in the
    /// paper (gdb for gcc, lldb for clang).
    pub fn native_for(personality: holes_compiler::Personality) -> DebuggerKind {
        match personality {
            holes_compiler::Personality::Ccg => DebuggerKind::GdbLike,
            holes_compiler::Personality::Lcc => DebuggerKind::LldbLike,
        }
    }
}

/// How a variable shows up in the frame at a stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Availability {
    /// The variable is listed and its value can be displayed.
    Available(i64),
    /// The variable is listed but its value cannot be produced
    /// (`<optimized out>`).
    OptimizedOut,
}

/// One variable of a frame listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarView {
    /// Source-level name, interned per executable: every stop listing the
    /// variable shares one allocation.
    pub name: Arc<str>,
    /// Whether a value could be displayed.
    pub availability: Availability,
}

/// One debugger stop: the first time a source line is reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineStop {
    /// The source line.
    pub line: u32,
    /// The breakpoint address.
    pub address: u64,
    /// Name of the function whose frame is shown (interned per executable).
    pub function: Arc<str>,
    /// The frame's variable listing.
    pub variables: Vec<VarView>,
}

/// Status of a named variable at a line, as the conjecture checkers consume
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarStatus {
    /// The variable is not listed in the frame at all.
    NotVisible,
    /// Listed but `<optimized out>`.
    OptimizedOut,
    /// Listed with a value.
    Available(i64),
}

impl VarStatus {
    /// Rank used by Conjecture 3: availability may only decay.
    pub fn rank(self) -> u8 {
        match self {
            VarStatus::NotVisible => 0,
            VarStatus::OptimizedOut => 1,
            VarStatus::Available(_) => 2,
        }
    }

    /// Whether a value is displayed.
    pub fn is_available(self) -> bool {
        matches!(self, VarStatus::Available(_))
    }
}

/// A whole debugging session: one stop per executed steppable line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DebugTrace {
    /// Stops in execution order.
    pub stops: Vec<LineStop>,
    /// All steppable lines of the executable (whether executed or not).
    pub steppable_lines: Vec<u32>,
    /// Lines that were actually reached, mapped to their stop index.
    pub reached: BTreeMap<u32, usize>,
}

impl DebugTrace {
    /// The stop for a line, if the line was reached.
    pub fn stop_at(&self, line: u32) -> Option<&LineStop> {
        self.reached.get(&line).map(|&i| &self.stops[i])
    }

    /// Status of a variable at a line (see [`VarStatus`]); `None` when the
    /// line was never reached.
    pub fn var_at(&self, line: u32, name: &str) -> Option<VarStatus> {
        let stop = self.stop_at(line)?;
        Some(
            stop.variables
                .iter()
                .find(|v| &*v.name == name)
                .map(|v| match v.availability {
                    Availability::Available(value) => VarStatus::Available(value),
                    Availability::OptimizedOut => VarStatus::OptimizedOut,
                })
                .unwrap_or(VarStatus::NotVisible),
        )
    }

    /// Number of distinct lines reached.
    pub fn lines_reached(&self) -> usize {
        self.reached.len()
    }

    /// Number of available variables at a line (0 when not reached).
    pub fn available_count(&self, line: u32) -> usize {
        self.stop_at(line)
            .map(|s| {
                s.variables
                    .iter()
                    .filter(|v| matches!(v.availability, Availability::Available(_)))
                    .count()
            })
            .unwrap_or(0)
    }
}

/// A variable's pre-resolved location decision at one breakpoint address:
/// everything the debugger would derive from debug information, with only
/// the machine-state read left for stop time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValuePlan {
    /// The value is this compile-time constant (`DW_AT_const_value` or a
    /// `DW_OP_constu`-style location).
    Const(i64),
    /// The value comes from machine state, read as planned.
    Read(MachineRead),
    /// No resolvable location covers the address (or a personality quirk
    /// suppresses it): the variable is `<optimized out>` at this stop.
    OptimizedOut,
}

/// One variable of a precomputed frame plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarPlan {
    /// Interned source-level name, shared with every [`VarView`] built from
    /// this plan.
    pub name: Arc<str>,
    /// The pre-resolved location decision.
    pub value: ValuePlan,
}

/// The precomputed frame listing of one breakpoint address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FramePlan {
    /// The source line the breakpoint represents.
    pub line: u32,
    /// Interned name of the covering function (empty when none covers the
    /// address).
    pub function: Arc<str>,
    /// The visible variables, in frame-listing order.
    pub vars: Vec<VarPlan>,
}

/// A precomputed debugging session plan for one (executable, debugger
/// personality) pair.
///
/// Construction ([`StopPlan::compute`]) performs every address-dependent
/// piece of frame inspection **once per breakpoint address** — subprogram
/// lookup (via [`ScopeIndex`]), scope and inlined-subroutine walks,
/// abstract-origin chasing, location-list resolution, and the personality
/// quirks — and interns every name as an `Arc<str>`. Servicing a stop with
/// [`trace_with_plan`] is then a binary search over the address table plus
/// one batched machine read; nothing is re-derived and no per-stop strings
/// are allocated. Plans depend only on the executable's debug information,
/// so the evaluation pipeline caches them alongside traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StopPlan {
    kind: DebuggerKind,
    /// All steppable lines of the executable (the trace's line universe).
    steppable_lines: Vec<u32>,
    /// `(breakpoint address, frame plan)` sorted by address.
    frames: Vec<(u64, FramePlan)>,
}

impl StopPlan {
    /// Precompute the stop plan of an executable for one debugger
    /// personality.
    pub fn compute(executable: &Executable, kind: DebuggerKind) -> StopPlan {
        let debug = &executable.debug;
        let steppable_lines = debug.line_table.steppable_lines();
        let index = ScopeIndex::new(debug);
        let mut interner: HashMap<String, Arc<str>> = HashMap::new();
        // Steppable lines are ascending, so `or_insert` keeps the lowest
        // line when two lines share a first address — the same tie-break
        // the unplanned tracer applies.
        let mut frames: BTreeMap<u64, FramePlan> = BTreeMap::new();
        for (line, address) in debug.line_table.first_stmt_addresses() {
            frames
                .entry(address)
                .or_insert_with(|| plan_frame(debug, &index, kind, address, line, &mut interner));
        }
        StopPlan {
            kind,
            steppable_lines,
            frames: frames.into_iter().collect(),
        }
    }

    /// The debugger personality the plan was resolved for.
    pub fn kind(&self) -> DebuggerKind {
        self.kind
    }

    /// The precomputed frame for a breakpoint address, if the address hosts
    /// one.
    pub fn frame(&self, address: u64) -> Option<&FramePlan> {
        self.frames
            .binary_search_by_key(&address, |&(addr, _)| addr)
            .ok()
            .map(|i| &self.frames[i].1)
    }

    /// Number of planned breakpoint addresses.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the executable has no breakpoint address at all.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// Intern a name, returning the shared allocation for repeats.
fn intern(interner: &mut HashMap<String, Arc<str>>, name: &str) -> Arc<str> {
    if let Some(found) = interner.get(name) {
        return Arc::clone(found);
    }
    let shared: Arc<str> = Arc::from(name);
    interner.insert(name.to_owned(), Arc::clone(&shared));
    shared
}

/// Precompute the frame listing of one breakpoint address.
fn plan_frame(
    debug: &DebugInfo,
    index: &ScopeIndex,
    kind: DebuggerKind,
    address: u64,
    line: u32,
    interner: &mut HashMap<String, Arc<str>>,
) -> FramePlan {
    let mut vars = Vec::new();
    let mut function = intern(interner, "");
    if let Some(subprogram) = index.subprogram_at(address) {
        function = intern(interner, debug.die(subprogram).name().unwrap_or("?"));
        let mut dies: Vec<(DieId, bool)> = debug
            .data_dies_in_scope(subprogram, address)
            .into_iter()
            .map(|d| (d, false))
            .collect();
        if let Some(inlined) = debug.innermost_inlined_at(subprogram, address) {
            for die in debug.data_dies_in_scope(inlined, address) {
                dies.push((die, true));
            }
        }
        for (die, in_inlined) in dies {
            let entry = debug.die(die);
            let Some(name) = entry.name() else { continue };
            vars.push(VarPlan {
                name: intern(interner, name),
                value: plan_variable(debug, kind, die, in_inlined, address),
            });
        }
    }
    FramePlan {
        line,
        function,
        vars,
    }
}

/// Debug an executable: place one-shot breakpoints on every steppable line,
/// run to completion, and record the frame at each first hit.
///
/// The executable's backend decides which virtual machine is stepped: the
/// debugger drives it purely through the [`Vm`] trait, so the same
/// breakpoint-and-inspect protocol covers the register VM and the stack VM.
/// Frame inspection runs through a freshly computed [`StopPlan`]; callers
/// that trace the same executable repeatedly should compute (or cache) the
/// plan themselves and call [`trace_with_plan`].
pub fn trace(executable: &Executable, kind: DebuggerKind) -> DebugTrace {
    trace_with_plan(executable, &StopPlan::compute(executable, kind))
}

/// Debug an executable through a precomputed [`StopPlan`] — the
/// allocation-free hot path.
///
/// Each stop is a plan lookup plus one batched machine read
/// ([`Vm::read_batch`]); names are `Arc` clones of the plan's interned
/// strings. The plan must have been computed for this executable (plans
/// key on the executable's debug information); a foreign plan would
/// produce a trace for the wrong program.
pub fn trace_with_plan(executable: &Executable, plan: &StopPlan) -> DebugTrace {
    trace_with_plan_fuel(executable, plan, None).0
}

/// [`trace_with_plan`] with an explicit step budget, surfacing how the
/// session ended.
///
/// When `fuel` is `Some`, the machine is spawned with that budget instead of
/// its default; a program that exceeds it stops with
/// [`MachineError::OutOfFuel`]. The second component of the return value is
/// the terminal machine error, if the run ended in one (`None` for a normal
/// finish). [`trace_with_plan`] is this function with `fuel: None` and the
/// error discarded, which is the historical behavior.
pub fn trace_with_plan_fuel(
    executable: &Executable,
    plan: &StopPlan,
    fuel: Option<u64>,
) -> (DebugTrace, Option<MachineError>) {
    let mut breakpoints: BreakpointSet = plan.frames.iter().map(|&(address, _)| address).collect();
    let mut machine = match fuel {
        Some(budget) => executable.machine.spawn_with_fuel(budget),
        None => executable.machine.spawn(),
    };
    let mut trace = DebugTrace {
        stops: Vec::new(),
        steppable_lines: plan.steppable_lines.clone(),
        reached: BTreeMap::new(),
    };
    let mut reads: Vec<MachineRead> = Vec::new();
    let mut values: Vec<Option<i64>> = Vec::new();
    let error = loop {
        let address = match machine.run(&breakpoints) {
            StopReason::Breakpoint { address } => address,
            StopReason::Finished { .. } => break None,
            StopReason::Error(error) => break Some(error),
        };
        breakpoints.remove(address);
        let frame = plan
            .frame(address)
            .expect("breakpoints are placed only on planned addresses");
        reads.clear();
        for var in &frame.vars {
            if let ValuePlan::Read(read) = var.value {
                reads.push(read);
            }
        }
        values.clear();
        machine.read_batch(&reads, &mut values);
        let mut next_value = values.iter();
        let variables = frame
            .vars
            .iter()
            .map(|var| VarView {
                name: Arc::clone(&var.name),
                availability: match var.value {
                    ValuePlan::Const(c) => Availability::Available(c),
                    ValuePlan::OptimizedOut => Availability::OptimizedOut,
                    ValuePlan::Read(_) => next_value
                        .next()
                        .copied()
                        .flatten()
                        .map(Availability::Available)
                        .unwrap_or(Availability::OptimizedOut),
                },
            })
            .collect();
        let stop = LineStop {
            line: frame.line,
            address,
            function: Arc::clone(&frame.function),
            variables,
        };
        let index = trace.stops.len();
        trace.reached.entry(stop.line).or_insert(index);
        trace.stops.push(stop);
    };
    (trace, error)
}

/// The original per-stop tracer: re-resolves scope DIEs and locations from
/// scratch at every breakpoint hit. Kept as the reference implementation
/// the planned path is property-tested against ([`trace`] must produce an
/// equal [`DebugTrace`] for every executable and personality).
///
/// Both paths deliberately share the per-variable decision procedure
/// (`plan_variable`), so the differential property guards everything the
/// plan *adds* — breakpoint/address mapping, the indexed subprogram
/// lookup, scope-walk precomputation, interning, and batched reads — not
/// the leaf location semantics, which the personality-quirk unit tests
/// and the conjecture suites pin directly.
pub fn trace_unplanned(executable: &Executable, kind: DebuggerKind) -> DebugTrace {
    let steppable = executable.debug.line_table.steppable_lines();
    let mut breakpoints: BreakpointSet = steppable
        .iter()
        .filter_map(|&line| executable.debug.line_table.first_address_of_line(line))
        .collect();
    let mut address_to_line: BTreeMap<u64, u32> = BTreeMap::new();
    for &line in &steppable {
        if let Some(addr) = executable.debug.line_table.first_address_of_line(line) {
            address_to_line.entry(addr).or_insert(line);
        }
    }
    let mut machine = executable.machine.spawn();
    let mut trace = DebugTrace {
        stops: Vec::new(),
        steppable_lines: steppable,
        reached: BTreeMap::new(),
    };
    while let StopReason::Breakpoint { address } = machine.run(&breakpoints) {
        breakpoints.remove(address);
        let line = address_to_line
            .get(&address)
            .copied()
            .or_else(|| executable.debug.line_table.line_for_address(address))
            .unwrap_or(0);
        let stop = inspect_frame(&executable.debug, machine.as_ref(), kind, address, line);
        let index = trace.stops.len();
        trace.reached.entry(line).or_insert(index);
        trace.stops.push(stop);
    }
    trace
}

/// Build the frame listing at a stop (the unplanned reference path).
fn inspect_frame(
    debug: &DebugInfo,
    machine: &dyn Vm,
    kind: DebuggerKind,
    address: u64,
    line: u32,
) -> LineStop {
    let mut variables = Vec::new();
    let mut function: Arc<str> = Arc::from("");
    if let Some(subprogram) = debug.subprogram_at(address) {
        function = Arc::from(debug.die(subprogram).name().unwrap_or("?"));
        let mut dies: Vec<(DieId, bool)> = debug
            .data_dies_in_scope(subprogram, address)
            .into_iter()
            .map(|d| (d, false))
            .collect();
        if let Some(inlined) = debug.innermost_inlined_at(subprogram, address) {
            for die in debug.data_dies_in_scope(inlined, address) {
                dies.push((die, true));
            }
        }
        for (die, in_inlined) in dies {
            let entry = debug.die(die);
            let Some(name) = entry.name() else { continue };
            let availability = resolve_variable(debug, machine, kind, die, in_inlined, address);
            variables.push(VarView {
                name: Arc::from(name),
                availability,
            });
        }
    }
    LineStop {
        line,
        address,
        function,
        variables,
    }
}

/// Resolve one variable DIE to a value at stop time (the unplanned
/// reference path): decide the location, then read the machine.
fn resolve_variable(
    debug: &DebugInfo,
    machine: &dyn Vm,
    kind: DebuggerKind,
    die: DieId,
    in_inlined_scope: bool,
    address: u64,
) -> Availability {
    match plan_variable(debug, kind, die, in_inlined_scope, address) {
        ValuePlan::Const(c) => Availability::Available(c),
        ValuePlan::OptimizedOut => Availability::OptimizedOut,
        ValuePlan::Read(read) => machine
            .read_one(read)
            .map(Availability::Available)
            .unwrap_or(Availability::OptimizedOut),
    }
}

/// Decide how one variable DIE resolves at an address, honouring the
/// personality quirks. This is the shared decision procedure of both trace
/// paths: the planned path runs it once per breakpoint address, the
/// unplanned path at every stop.
fn plan_variable(
    debug: &DebugInfo,
    kind: DebuggerKind,
    die: DieId,
    in_inlined_scope: bool,
    address: u64,
) -> ValuePlan {
    let entry = debug.die(die);
    if let Some(AttrValue::Signed(c)) = entry.attr(Attr::ConstValue) {
        return ValuePlan::Const(*c);
    }
    let mut loclist = entry.attr(Attr::Location).and_then(AttrValue::as_loclist);
    // Follow the abstract origin when the concrete DIE has no location of its
    // own — unless we are the lldb-like debugger looking at an inlined
    // variable (the paper's lldb bug 50076).
    let origin_entry;
    if loclist.is_none() {
        if let Some(AttrValue::Ref(origin)) = entry.attr(Attr::AbstractOrigin) {
            if kind == DebuggerKind::LldbLike && in_inlined_scope {
                return ValuePlan::OptimizedOut;
            }
            origin_entry = debug.die(*origin);
            if let Some(AttrValue::Signed(c)) = origin_entry.attr(Attr::ConstValue) {
                return ValuePlan::Const(*c);
            }
            loclist = origin_entry
                .attr(Attr::Location)
                .and_then(AttrValue::as_loclist);
        }
    }
    let Some(entries) = loclist else {
        return ValuePlan::OptimizedOut;
    };
    let location = match kind {
        DebuggerKind::LldbLike => holes_debuginfo::location::lookup(entries, address),
        DebuggerKind::GdbLike => gdb_lookup(entries, address),
    };
    match location {
        Some(Location::ConstValue(c)) => ValuePlan::Const(c),
        Some(Location::Register(r)) => ValuePlan::Read(MachineRead::Reg(r)),
        Some(Location::FrameSlot(s)) => ValuePlan::Read(MachineRead::FrameSlot(s)),
        Some(Location::GlobalAddress(addr)) => ValuePlan::Read(MachineRead::Address(addr as i64)),
        // Frame-base-relative (`DW_OP_fbreg`-style) locations only resolve
        // on backends that maintain a frame base; on the register VM the
        // description is inexpressible and the variable stays unavailable.
        Some(Location::FrameBase { offset }) => {
            ValuePlan::Read(MachineRead::FrameBaseSlot { offset })
        }
        // Composite expressions: register value + offset, optionally
        // dereferenced.
        Some(Location::Composite { reg, offset, deref }) => {
            ValuePlan::Read(MachineRead::RegOffset { reg, offset, deref })
        }
        Some(Location::Empty) | None => ValuePlan::OptimizedOut,
    }
}

/// The gdb-like location lookup: scanning stops at an empty range that
/// precedes the covering entry (models gdb bug 28987).
fn gdb_lookup(entries: &[LocListEntry], address: u64) -> Option<Location> {
    for entry in entries {
        if entry.is_empty_range() && entry.start <= address {
            return None;
        }
        if entry.covers(address) {
            return Some(entry.location);
        }
    }
    None
}

/// Convenience: trace with the native debugger of the executable's compiler
/// personality.
pub fn native_trace(executable: &Executable) -> DebugTrace {
    trace(
        executable,
        DebuggerKind::native_for(executable.config.personality),
    )
}

/// List the variables whose DIEs exist somewhere in the executable's debug
/// information (regardless of location); used by tests and examples.
pub fn die_variable_names(debug: &DebugInfo) -> Vec<String> {
    debug
        .iter()
        .filter(|(_, d)| d.tag == DieTag::Variable || d.tag == DieTag::FormalParameter)
        .filter_map(|(_, d)| d.name().map(str::to_owned))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use holes_compiler::{compile, CompilerConfig, OptLevel, Personality};
    use holes_minic::ast::{BinOp, Expr, LValue, Program, Stmt, Ty, VarRef};
    use holes_minic::build::ProgramBuilder;

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let arr = b.global_array("a", Ty::I32, false, vec![3], vec![5, 6, 7]);
        let main = b.function("main", Ty::I32);
        let x = b.local(main, "x", Ty::I32);
        let i = b.local(main, "i", Ty::I32);
        b.push(main, Stmt::decl(x, Some(Expr::lit(4))));
        b.push(
            main,
            Stmt::for_loop(
                Some(Stmt::assign(LValue::local(i), Expr::lit(0))),
                Some(Expr::binary(BinOp::Lt, Expr::local(i), Expr::lit(3))),
                Some(Stmt::assign(
                    LValue::local(i),
                    Expr::binary(BinOp::Add, Expr::local(i), Expr::lit(1)),
                )),
                vec![Stmt::assign(
                    LValue::global(g),
                    Expr::index(VarRef::Global(arr), vec![Expr::local(i)]),
                )],
            ),
        );
        b.push(
            main,
            Stmt::call_opaque(vec![Expr::local(x), Expr::local(i)]),
        );
        b.push(main, Stmt::ret(Some(Expr::lit(0))));
        let mut p = b.finish();
        p.assign_lines();
        p
    }

    #[test]
    fn o0_trace_reaches_lines_and_shows_all_variables() {
        let p = sample_program();
        let exe = compile(&p, &CompilerConfig::new(Personality::Ccg, OptLevel::O0));
        let t = trace(&exe, DebuggerKind::GdbLike);
        assert!(t.lines_reached() >= 4);
        // At the sink call line, both x and i must be available.
        let sink_line = *t.reached.keys().max().unwrap();
        let x = t.var_at(sink_line, "x");
        assert!(matches!(x, Some(VarStatus::Available(4))), "{x:?}");
        assert!(t.var_at(sink_line, "i").unwrap().is_available());
    }

    #[test]
    fn defect_free_optimized_trace_keeps_conjecture_variables_available() {
        let p = sample_program();
        for personality in [Personality::Ccg, Personality::Lcc] {
            for level in personality.levels() {
                let cfg = CompilerConfig::new(personality, *level).without_defects();
                let exe = compile(&p, &cfg);
                let t = trace(&exe, DebuggerKind::native_for(personality));
                let sink_line = *t.reached.keys().max().unwrap();
                assert!(
                    t.var_at(sink_line, "x").unwrap().is_available(),
                    "{personality} {level}: x not available at the call"
                );
            }
        }
    }

    #[test]
    fn traces_differ_between_o0_and_optimized_for_line_counts() {
        let p = sample_program();
        let o0 = compile(&p, &CompilerConfig::new(Personality::Ccg, OptLevel::O0));
        let o3 = compile(&p, &CompilerConfig::new(Personality::Ccg, OptLevel::O3));
        let t0 = trace(&o0, DebuggerKind::GdbLike);
        let t3 = trace(&o3, DebuggerKind::GdbLike);
        assert!(t3.lines_reached() <= t0.lines_reached());
    }

    #[test]
    fn var_status_ranks_are_ordered() {
        assert!(VarStatus::Available(1).rank() > VarStatus::OptimizedOut.rank());
        assert!(VarStatus::OptimizedOut.rank() > VarStatus::NotVisible.rank());
    }

    #[test]
    fn gdb_lookup_stops_at_empty_ranges() {
        let entries = vec![
            LocListEntry::new(10, 10, Location::Register(0)),
            LocListEntry::new(10, 20, Location::Register(1)),
        ];
        assert_eq!(gdb_lookup(&entries, 12), None);
        assert_eq!(
            holes_debuginfo::location::lookup(&entries, 12),
            Some(Location::Register(1))
        );
    }

    #[test]
    fn native_debugger_pairing() {
        assert_eq!(
            DebuggerKind::native_for(Personality::Ccg),
            DebuggerKind::GdbLike
        );
        assert_eq!(
            DebuggerKind::native_for(Personality::Lcc),
            DebuggerKind::LldbLike
        );
    }

    #[test]
    fn planned_trace_equals_the_unplanned_reference() {
        use holes_compiler::BackendKind;
        let p = sample_program();
        for personality in [Personality::Ccg, Personality::Lcc] {
            for &level in personality.levels().iter().chain([&OptLevel::O0]) {
                for backend in BackendKind::ALL {
                    let config = CompilerConfig::new(personality, level).with_backend(backend);
                    let exe = compile(&p, &config);
                    for kind in [DebuggerKind::GdbLike, DebuggerKind::LldbLike] {
                        let plan = StopPlan::compute(&exe, kind);
                        assert_eq!(plan.kind(), kind);
                        assert!(!plan.is_empty(), "sample program plans a breakpoint");
                        let planned = trace_with_plan(&exe, &plan);
                        assert!(plan.len() >= planned.reached.len());
                        let reference = trace_unplanned(&exe, kind);
                        assert_eq!(
                            planned, reference,
                            "planned trace diverged: {personality} {level} {backend} {kind:?}"
                        );
                        assert_eq!(trace(&exe, kind), reference);
                    }
                }
            }
        }
    }

    #[test]
    fn stop_plans_intern_names_across_stops() {
        let p = sample_program();
        let exe = compile(&p, &CompilerConfig::new(Personality::Ccg, OptLevel::O0));
        let plan = StopPlan::compute(&exe, DebuggerKind::GdbLike);
        let t = trace_with_plan(&exe, &plan);
        // Every occurrence of a variable name across all stops shares one
        // allocation with the plan (and therefore with every other stop).
        let mut by_name: std::collections::HashMap<&str, &Arc<str>> =
            std::collections::HashMap::new();
        let mut occurrences = 0usize;
        for stop in &t.stops {
            for var in &stop.variables {
                occurrences += 1;
                let first = by_name.entry(var.name.as_ref()).or_insert(&var.name);
                assert!(
                    Arc::ptr_eq(*first, &var.name),
                    "`{}` was re-allocated instead of interned",
                    var.name
                );
            }
        }
        assert!(
            occurrences > by_name.len(),
            "sample trace never repeats a variable; interning is unexercised"
        );
    }

    #[test]
    fn unreached_lines_have_no_stop() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let main = b.function("main", Ty::I32);
        b.push(
            main,
            Stmt::if_stmt(
                Expr::lit(0),
                vec![Stmt::assign(LValue::global(g), Expr::lit(1))],
                vec![],
            ),
        );
        b.push(main, Stmt::ret(Some(Expr::lit(0))));
        let mut p = b.finish();
        p.assign_lines();
        let exe = compile(&p, &CompilerConfig::new(Personality::Ccg, OptLevel::O0));
        let t = trace(&exe, DebuggerKind::GdbLike);
        // The then-branch line exists in the line table but is never reached.
        assert!(t.steppable_lines.len() > t.lines_reached());
    }
}
