//! A source-level debugger for compiled MiniC executables.
//!
//! This is the reproduction's substitute for gdb and lldb. Following the
//! paper's methodology (§4.2), [`trace`] places a **one-shot breakpoint on
//! the first address of every steppable source line**, runs the program, and
//! records — for each line the execution actually reaches — the variables
//! visible in the current frame and, when debug information permits, their
//! values.
//!
//! Two debugger personalities are provided, reproducing the debugger-side
//! bugs of the paper:
//!
//! * [`DebuggerKind::GdbLike`] mishandles location lists that contain
//!   empty (`start == end`) ranges before the covering entry (gdb bug 28987);
//! * [`DebuggerKind::LldbLike`] cannot display variables of inlined
//!   subroutines whose location lives only in the abstract origin
//!   (lldb bug 50076).
//!
//! Cross-checking the two personalities is how the campaign pipeline decides
//! whether a violation is a compiler or a debugger issue, exactly as the
//! paper repeats each test "in a different debugger".

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

use holes_compiler::Executable;
use holes_debuginfo::{Attr, AttrValue, DebugInfo, DieId, DieTag, LocListEntry, Location};
use holes_machine::{BreakpointSet, StopReason, Vm};

/// The debugger personality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DebuggerKind {
    /// Mishandles empty location-list ranges (models gdb).
    GdbLike,
    /// Ignores abstract-origin-only locations of inlined variables
    /// (models lldb).
    LldbLike,
}

impl DebuggerKind {
    /// The debugger a compiler personality's users would reach for, as in the
    /// paper (gdb for gcc, lldb for clang).
    pub fn native_for(personality: holes_compiler::Personality) -> DebuggerKind {
        match personality {
            holes_compiler::Personality::Ccg => DebuggerKind::GdbLike,
            holes_compiler::Personality::Lcc => DebuggerKind::LldbLike,
        }
    }
}

/// How a variable shows up in the frame at a stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Availability {
    /// The variable is listed and its value can be displayed.
    Available(i64),
    /// The variable is listed but its value cannot be produced
    /// (`<optimized out>`).
    OptimizedOut,
}

/// One variable of a frame listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarView {
    /// Source-level name.
    pub name: String,
    /// Whether a value could be displayed.
    pub availability: Availability,
}

/// One debugger stop: the first time a source line is reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineStop {
    /// The source line.
    pub line: u32,
    /// The breakpoint address.
    pub address: u64,
    /// Name of the function whose frame is shown.
    pub function: String,
    /// The frame's variable listing.
    pub variables: Vec<VarView>,
}

/// Status of a named variable at a line, as the conjecture checkers consume
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarStatus {
    /// The variable is not listed in the frame at all.
    NotVisible,
    /// Listed but `<optimized out>`.
    OptimizedOut,
    /// Listed with a value.
    Available(i64),
}

impl VarStatus {
    /// Rank used by Conjecture 3: availability may only decay.
    pub fn rank(self) -> u8 {
        match self {
            VarStatus::NotVisible => 0,
            VarStatus::OptimizedOut => 1,
            VarStatus::Available(_) => 2,
        }
    }

    /// Whether a value is displayed.
    pub fn is_available(self) -> bool {
        matches!(self, VarStatus::Available(_))
    }
}

/// A whole debugging session: one stop per executed steppable line.
#[derive(Debug, Clone, Default)]
pub struct DebugTrace {
    /// Stops in execution order.
    pub stops: Vec<LineStop>,
    /// All steppable lines of the executable (whether executed or not).
    pub steppable_lines: Vec<u32>,
    /// Lines that were actually reached, mapped to their stop index.
    pub reached: BTreeMap<u32, usize>,
}

impl DebugTrace {
    /// The stop for a line, if the line was reached.
    pub fn stop_at(&self, line: u32) -> Option<&LineStop> {
        self.reached.get(&line).map(|&i| &self.stops[i])
    }

    /// Status of a variable at a line (see [`VarStatus`]); `None` when the
    /// line was never reached.
    pub fn var_at(&self, line: u32, name: &str) -> Option<VarStatus> {
        let stop = self.stop_at(line)?;
        Some(
            stop.variables
                .iter()
                .find(|v| v.name == name)
                .map(|v| match v.availability {
                    Availability::Available(value) => VarStatus::Available(value),
                    Availability::OptimizedOut => VarStatus::OptimizedOut,
                })
                .unwrap_or(VarStatus::NotVisible),
        )
    }

    /// Number of distinct lines reached.
    pub fn lines_reached(&self) -> usize {
        self.reached.len()
    }

    /// Number of available variables at a line (0 when not reached).
    pub fn available_count(&self, line: u32) -> usize {
        self.stop_at(line)
            .map(|s| {
                s.variables
                    .iter()
                    .filter(|v| matches!(v.availability, Availability::Available(_)))
                    .count()
            })
            .unwrap_or(0)
    }
}

/// Debug an executable: place one-shot breakpoints on every steppable line,
/// run to completion, and record the frame at each first hit.
///
/// The executable's backend decides which virtual machine is stepped: the
/// debugger drives it purely through the [`Vm`] trait, so the same
/// breakpoint-and-inspect protocol covers the register VM and the stack VM.
pub fn trace(executable: &Executable, kind: DebuggerKind) -> DebugTrace {
    let steppable = executable.debug.line_table.steppable_lines();
    let mut breakpoints: BreakpointSet = steppable
        .iter()
        .filter_map(|&line| executable.debug.line_table.first_address_of_line(line))
        .collect();
    let mut address_to_line: BTreeMap<u64, u32> = BTreeMap::new();
    for &line in &steppable {
        if let Some(addr) = executable.debug.line_table.first_address_of_line(line) {
            address_to_line.entry(addr).or_insert(line);
        }
    }
    let mut machine = executable.machine.spawn();
    let mut trace = DebugTrace {
        stops: Vec::new(),
        steppable_lines: steppable,
        reached: BTreeMap::new(),
    };
    while let StopReason::Breakpoint { address } = machine.run(&breakpoints) {
        breakpoints.remove(address);
        let line = address_to_line
            .get(&address)
            .copied()
            .or_else(|| executable.debug.line_table.line_for_address(address))
            .unwrap_or(0);
        let stop = inspect_frame(&executable.debug, machine.as_ref(), kind, address, line);
        let index = trace.stops.len();
        trace.reached.entry(line).or_insert(index);
        trace.stops.push(stop);
    }
    trace
}

/// Build the frame listing at a stop.
fn inspect_frame(
    debug: &DebugInfo,
    machine: &dyn Vm,
    kind: DebuggerKind,
    address: u64,
    line: u32,
) -> LineStop {
    let mut variables = Vec::new();
    let mut function = String::new();
    if let Some(subprogram) = debug.subprogram_at(address) {
        function = debug.die(subprogram).name().unwrap_or("?").to_owned();
        let mut dies: Vec<(DieId, bool)> = debug
            .data_dies_in_scope(subprogram, address)
            .into_iter()
            .map(|d| (d, false))
            .collect();
        if let Some(inlined) = debug.innermost_inlined_at(subprogram, address) {
            for die in debug.data_dies_in_scope(inlined, address) {
                dies.push((die, true));
            }
        }
        for (die, in_inlined) in dies {
            let entry = debug.die(die);
            let Some(name) = entry.name() else { continue };
            let availability = resolve_variable(debug, machine, kind, die, in_inlined, address);
            variables.push(VarView {
                name: name.to_owned(),
                availability,
            });
        }
    }
    LineStop {
        line,
        address,
        function,
        variables,
    }
}

/// Resolve one variable DIE to a value, honouring the personality quirks.
fn resolve_variable(
    debug: &DebugInfo,
    machine: &dyn Vm,
    kind: DebuggerKind,
    die: DieId,
    in_inlined_scope: bool,
    address: u64,
) -> Availability {
    let entry = debug.die(die);
    if let Some(AttrValue::Signed(c)) = entry.attr(Attr::ConstValue) {
        return Availability::Available(*c);
    }
    let mut loclist = entry.attr(Attr::Location).and_then(AttrValue::as_loclist);
    // Follow the abstract origin when the concrete DIE has no location of its
    // own — unless we are the lldb-like debugger looking at an inlined
    // variable (the paper's lldb bug 50076).
    let origin_entry;
    if loclist.is_none() {
        if let Some(AttrValue::Ref(origin)) = entry.attr(Attr::AbstractOrigin) {
            if kind == DebuggerKind::LldbLike && in_inlined_scope {
                return Availability::OptimizedOut;
            }
            origin_entry = debug.die(*origin);
            if let Some(AttrValue::Signed(c)) = origin_entry.attr(Attr::ConstValue) {
                return Availability::Available(*c);
            }
            loclist = origin_entry
                .attr(Attr::Location)
                .and_then(AttrValue::as_loclist);
        }
    }
    let Some(entries) = loclist else {
        return Availability::OptimizedOut;
    };
    let location = match kind {
        DebuggerKind::LldbLike => holes_debuginfo::location::lookup(entries, address),
        DebuggerKind::GdbLike => gdb_lookup(entries, address),
    };
    match location {
        Some(Location::ConstValue(c)) => Availability::Available(c),
        Some(Location::Register(r)) => Availability::Available(machine.read_reg(r)),
        Some(Location::FrameSlot(s)) => machine
            .read_frame_slot(s)
            .map(Availability::Available)
            .unwrap_or(Availability::OptimizedOut),
        Some(Location::GlobalAddress(addr)) => machine
            .read_address(addr as i64)
            .map(Availability::Available)
            .unwrap_or(Availability::OptimizedOut),
        // Frame-base-relative (`DW_OP_fbreg`-style) locations only resolve
        // on backends that maintain a frame base; on the register VM the
        // description is inexpressible and the variable stays unavailable.
        Some(Location::FrameBase { offset }) => machine
            .frame_base()
            .and_then(|base| machine.read_address(base + i64::from(offset) * 8))
            .map(Availability::Available)
            .unwrap_or(Availability::OptimizedOut),
        // Composite expressions: register value + offset, optionally
        // dereferenced.
        Some(Location::Composite { reg, offset, deref }) => {
            let computed = machine.read_reg(reg).wrapping_add(offset);
            if deref {
                machine
                    .read_address(computed)
                    .map(Availability::Available)
                    .unwrap_or(Availability::OptimizedOut)
            } else {
                Availability::Available(computed)
            }
        }
        Some(Location::Empty) | None => Availability::OptimizedOut,
    }
}

/// The gdb-like location lookup: scanning stops at an empty range that
/// precedes the covering entry (models gdb bug 28987).
fn gdb_lookup(entries: &[LocListEntry], address: u64) -> Option<Location> {
    for entry in entries {
        if entry.is_empty_range() && entry.start <= address {
            return None;
        }
        if entry.covers(address) {
            return Some(entry.location);
        }
    }
    None
}

/// Convenience: trace with the native debugger of the executable's compiler
/// personality.
pub fn native_trace(executable: &Executable) -> DebugTrace {
    trace(
        executable,
        DebuggerKind::native_for(executable.config.personality),
    )
}

/// List the variables whose DIEs exist somewhere in the executable's debug
/// information (regardless of location); used by tests and examples.
pub fn die_variable_names(debug: &DebugInfo) -> Vec<String> {
    debug
        .iter()
        .filter(|(_, d)| d.tag == DieTag::Variable || d.tag == DieTag::FormalParameter)
        .filter_map(|(_, d)| d.name().map(str::to_owned))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use holes_compiler::{compile, CompilerConfig, OptLevel, Personality};
    use holes_minic::ast::{BinOp, Expr, LValue, Program, Stmt, Ty, VarRef};
    use holes_minic::build::ProgramBuilder;

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let arr = b.global_array("a", Ty::I32, false, vec![3], vec![5, 6, 7]);
        let main = b.function("main", Ty::I32);
        let x = b.local(main, "x", Ty::I32);
        let i = b.local(main, "i", Ty::I32);
        b.push(main, Stmt::decl(x, Some(Expr::lit(4))));
        b.push(
            main,
            Stmt::for_loop(
                Some(Stmt::assign(LValue::local(i), Expr::lit(0))),
                Some(Expr::binary(BinOp::Lt, Expr::local(i), Expr::lit(3))),
                Some(Stmt::assign(
                    LValue::local(i),
                    Expr::binary(BinOp::Add, Expr::local(i), Expr::lit(1)),
                )),
                vec![Stmt::assign(
                    LValue::global(g),
                    Expr::index(VarRef::Global(arr), vec![Expr::local(i)]),
                )],
            ),
        );
        b.push(
            main,
            Stmt::call_opaque(vec![Expr::local(x), Expr::local(i)]),
        );
        b.push(main, Stmt::ret(Some(Expr::lit(0))));
        let mut p = b.finish();
        p.assign_lines();
        p
    }

    #[test]
    fn o0_trace_reaches_lines_and_shows_all_variables() {
        let p = sample_program();
        let exe = compile(&p, &CompilerConfig::new(Personality::Ccg, OptLevel::O0));
        let t = trace(&exe, DebuggerKind::GdbLike);
        assert!(t.lines_reached() >= 4);
        // At the sink call line, both x and i must be available.
        let sink_line = *t.reached.keys().max().unwrap();
        let x = t.var_at(sink_line, "x");
        assert!(matches!(x, Some(VarStatus::Available(4))), "{x:?}");
        assert!(t.var_at(sink_line, "i").unwrap().is_available());
    }

    #[test]
    fn defect_free_optimized_trace_keeps_conjecture_variables_available() {
        let p = sample_program();
        for personality in [Personality::Ccg, Personality::Lcc] {
            for level in personality.levels() {
                let cfg = CompilerConfig::new(personality, *level).without_defects();
                let exe = compile(&p, &cfg);
                let t = trace(&exe, DebuggerKind::native_for(personality));
                let sink_line = *t.reached.keys().max().unwrap();
                assert!(
                    t.var_at(sink_line, "x").unwrap().is_available(),
                    "{personality} {level}: x not available at the call"
                );
            }
        }
    }

    #[test]
    fn traces_differ_between_o0_and_optimized_for_line_counts() {
        let p = sample_program();
        let o0 = compile(&p, &CompilerConfig::new(Personality::Ccg, OptLevel::O0));
        let o3 = compile(&p, &CompilerConfig::new(Personality::Ccg, OptLevel::O3));
        let t0 = trace(&o0, DebuggerKind::GdbLike);
        let t3 = trace(&o3, DebuggerKind::GdbLike);
        assert!(t3.lines_reached() <= t0.lines_reached());
    }

    #[test]
    fn var_status_ranks_are_ordered() {
        assert!(VarStatus::Available(1).rank() > VarStatus::OptimizedOut.rank());
        assert!(VarStatus::OptimizedOut.rank() > VarStatus::NotVisible.rank());
    }

    #[test]
    fn gdb_lookup_stops_at_empty_ranges() {
        let entries = vec![
            LocListEntry::new(10, 10, Location::Register(0)),
            LocListEntry::new(10, 20, Location::Register(1)),
        ];
        assert_eq!(gdb_lookup(&entries, 12), None);
        assert_eq!(
            holes_debuginfo::location::lookup(&entries, 12),
            Some(Location::Register(1))
        );
    }

    #[test]
    fn native_debugger_pairing() {
        assert_eq!(
            DebuggerKind::native_for(Personality::Ccg),
            DebuggerKind::GdbLike
        );
        assert_eq!(
            DebuggerKind::native_for(Personality::Lcc),
            DebuggerKind::LldbLike
        );
    }

    #[test]
    fn unreached_lines_have_no_stop() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let main = b.function("main", Ty::I32);
        b.push(
            main,
            Stmt::if_stmt(
                Expr::lit(0),
                vec![Stmt::assign(LValue::global(g), Expr::lit(1))],
                vec![],
            ),
        );
        b.push(main, Stmt::ret(Some(Expr::lit(0))));
        let mut p = b.finish();
        p.assign_lines();
        let exe = compile(&p, &CompilerConfig::new(Personality::Ccg, OptLevel::O0));
        let t = trace(&exe, DebuggerKind::GdbLike);
        // The then-branch line exists in the line table but is never reached.
        assert!(t.steppable_lines.len() > t.lines_reached());
    }
}
