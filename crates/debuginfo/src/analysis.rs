//! DIE-level completeness analysis.
//!
//! §5.3 of the paper divides its 35 compiler-related issues into four
//! categories according to how the variable's DIE looks at the violating
//! program point: *Missing DIE*, *Hollow DIE*, *Incomplete DIE* and
//! *Incorrect DIE*. [`categorize_variable`] reproduces that classification;
//! the campaign pipeline uses it to generate the "DWARF analysis" column of
//! Table 3.

use crate::die::{Attr, AttrValue, DebugInfo, DieId, DieTag};
use crate::location::{self, Location};

/// The DIE-level manifestation of a completeness problem (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DieCategory {
    /// No DIE for the variable exists in the scope at the program point.
    MissingDie,
    /// A DIE exists but carries neither a location nor a constant value.
    HollowDie,
    /// A DIE with a location exists but the location list does not cover the
    /// program point's address.
    IncompleteDie,
    /// A DIE with a covering location exists: the information is there, so if
    /// the debugger still cannot display the value, either the DIE content or
    /// the debugger's interpretation of it is wrong.
    Covered,
}

impl std::fmt::Display for DieCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            DieCategory::MissingDie => "Missing DIE",
            DieCategory::HollowDie => "Hollow DIE",
            DieCategory::IncompleteDie => "Incomplete DIE",
            DieCategory::Covered => "Covered DIE",
        };
        f.write_str(text)
    }
}

/// Classify the DIE of variable `name` at address `address`.
///
/// The lookup searches the subprogram covering `address`, its lexical blocks
/// covering the address, and any inlined subroutines covering it (both the
/// concrete instance's children and — like gdb does — the abstract origin's
/// children).
pub fn categorize_variable(info: &DebugInfo, name: &str, address: u64) -> DieCategory {
    let Some(subprogram) = info.subprogram_at(address) else {
        return DieCategory::MissingDie;
    };
    let mut candidates: Vec<DieId> = info
        .data_dies_in_scope(subprogram, address)
        .into_iter()
        .filter(|id| info.die(*id).name() == Some(name))
        .collect();
    // Search inlined instances covering the address, merging abstract and
    // concrete children (the most permissive, gdb-and-lldb union view).
    if let Some(inlined) = info.innermost_inlined_at(subprogram, address) {
        for id in info.data_dies_in_scope(inlined, address) {
            if info.die(id).name() == Some(name) {
                candidates.push(id);
            }
        }
        if let Some(AttrValue::Ref(origin)) = info.die(inlined).attr(Attr::AbstractOrigin) {
            for id in info.data_dies_in_scope(*origin, address) {
                if info.die(id).name() == Some(name) {
                    candidates.push(id);
                }
            }
        }
    }
    if candidates.is_empty() {
        return DieCategory::MissingDie;
    }
    let mut best = DieCategory::MissingDie;
    for id in candidates {
        let category = categorize_die(info, id, address);
        if rank(category) > rank(best) {
            best = category;
        }
    }
    best
}

/// Classify one specific data DIE at an address.
pub fn categorize_die(info: &DebugInfo, die: DieId, address: u64) -> DieCategory {
    let entry = info.die(die);
    debug_assert!(entry.tag.is_data() || entry.tag == DieTag::Variable);
    if entry.attr(Attr::ConstValue).is_some() {
        return DieCategory::Covered;
    }
    let mut resolved = entry.attr(Attr::Location).and_then(AttrValue::as_loclist);
    // A concrete inlined variable may omit its own location and defer to the
    // abstract origin.
    let origin_die;
    if resolved.is_none() {
        if let Some(AttrValue::Ref(origin)) = entry.attr(Attr::AbstractOrigin) {
            origin_die = info.die(*origin);
            if origin_die.attr(Attr::ConstValue).is_some() {
                return DieCategory::Covered;
            }
            resolved = origin_die
                .attr(Attr::Location)
                .and_then(AttrValue::as_loclist);
        }
    }
    match resolved {
        None | Some([]) => DieCategory::HollowDie,
        Some(entries) => match location::lookup(entries, address) {
            Some(Location::Empty) | None => DieCategory::IncompleteDie,
            Some(_) => DieCategory::Covered,
        },
    }
}

fn rank(category: DieCategory) -> u8 {
    match category {
        DieCategory::MissingDie => 0,
        DieCategory::HollowDie => 1,
        DieCategory::IncompleteDie => 2,
        DieCategory::Covered => 3,
    }
}

/// An address-indexed view of a DIE tree's subprogram ranges.
///
/// [`DebugInfo::subprogram_at`] scans every DIE of the tree for each lookup,
/// which is fine for one-off queries but quadratic when a consumer resolves
/// *every* breakpoint address of an executable — exactly what the
/// debugger's stop-plan precomputation does. `ScopeIndex` sorts the
/// subprogram pc ranges once and answers each lookup with a binary search,
/// returning the same DIE the linear scan would (the lowest-id covering
/// subprogram, should ranges ever overlap).
#[derive(Debug, Clone)]
pub struct ScopeIndex {
    /// `(low, high, die)` triples sorted by `low`, then by DIE id.
    subprograms: Vec<(u64, u64, DieId)>,
    /// `prefix_max_high[i]` is the largest `high` among `subprograms[..=i]`
    /// — the classic interval-stabbing bound that lets a lookup stop
    /// scanning backwards as soon as no earlier range can still cover the
    /// address.
    prefix_max_high: Vec<u64>,
}

impl ScopeIndex {
    /// Build the index for a DIE tree. Abstract subprograms (no pc range)
    /// are not indexed — they cover no address, as in
    /// [`crate::die::Die::covers`].
    pub fn new(info: &DebugInfo) -> ScopeIndex {
        let mut subprograms: Vec<(u64, u64, DieId)> = info
            .iter()
            .filter(|(_, die)| die.tag == DieTag::Subprogram)
            .filter_map(|(id, die)| die.pc_range().map(|(low, high)| (low, high, id)))
            .collect();
        subprograms.sort_unstable();
        let mut prefix_max_high = Vec::with_capacity(subprograms.len());
        let mut max_high = 0u64;
        for &(_, high, _) in &subprograms {
            max_high = max_high.max(high);
            prefix_max_high.push(max_high);
        }
        ScopeIndex {
            subprograms,
            prefix_max_high,
        }
    }

    /// The subprogram DIE whose pc range covers `address`, if any —
    /// identical to [`DebugInfo::subprogram_at`], in logarithmic time for
    /// the disjoint ranges the compiler emits.
    pub fn subprogram_at(&self, address: u64) -> Option<DieId> {
        let upper = self
            .subprograms
            .partition_point(|&(low, _, _)| low <= address);
        // Walk backwards over candidates with `low <= address`; the prefix
        // maximum bounds the walk (one step for disjoint ranges). Should
        // ranges ever overlap, the linear scan's answer is the lowest DIE
        // id, so keep the minimum among covering candidates.
        let mut found: Option<DieId> = None;
        for i in (0..upper).rev() {
            if self.prefix_max_high[i] <= address {
                break;
            }
            let (low, high, die) = self.subprograms[i];
            if low <= address && address < high {
                found = Some(found.map_or(die, |best| best.min(die)));
            }
        }
        found
    }

    /// Number of indexed (concrete) subprograms.
    pub fn len(&self) -> usize {
        self.subprograms.len()
    }

    /// Whether the tree has no concrete subprogram at all.
    pub fn is_empty(&self) -> bool {
        self.subprograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::LocListEntry;

    fn base_info() -> (DebugInfo, DieId) {
        let mut info = DebugInfo::new("t.c");
        let sub = info.add_die(info.root(), DieTag::Subprogram);
        info.set_attr(sub, Attr::Name, AttrValue::Text("main".into()));
        info.set_attr(sub, Attr::LowPc, AttrValue::Addr(0x100));
        info.set_attr(sub, Attr::HighPc, AttrValue::Addr(0x200));
        (info, sub)
    }

    #[test]
    fn missing_die_when_variable_absent() {
        let (info, _) = base_info();
        assert_eq!(
            categorize_variable(&info, "x", 0x110),
            DieCategory::MissingDie
        );
    }

    #[test]
    fn missing_die_when_no_subprogram_covers_pc() {
        let (info, _) = base_info();
        assert_eq!(
            categorize_variable(&info, "x", 0x900),
            DieCategory::MissingDie
        );
    }

    #[test]
    fn hollow_die_without_location_or_const() {
        let (mut info, sub) = base_info();
        let var = info.add_die(sub, DieTag::Variable);
        info.set_attr(var, Attr::Name, AttrValue::Text("x".into()));
        assert_eq!(
            categorize_variable(&info, "x", 0x110),
            DieCategory::HollowDie
        );
    }

    #[test]
    fn incomplete_die_when_range_does_not_cover() {
        let (mut info, sub) = base_info();
        let var = info.add_die(sub, DieTag::Variable);
        info.set_attr(var, Attr::Name, AttrValue::Text("x".into()));
        info.set_attr(
            var,
            Attr::Location,
            AttrValue::LocList(vec![LocListEntry::new(0x100, 0x108, Location::Register(1))]),
        );
        assert_eq!(
            categorize_variable(&info, "x", 0x150),
            DieCategory::IncompleteDie
        );
        assert_eq!(categorize_variable(&info, "x", 0x104), DieCategory::Covered);
    }

    #[test]
    fn const_value_attribute_is_covered() {
        let (mut info, sub) = base_info();
        let var = info.add_die(sub, DieTag::Variable);
        info.set_attr(var, Attr::Name, AttrValue::Text("k".into()));
        info.set_attr(var, Attr::ConstValue, AttrValue::Signed(3));
        assert_eq!(categorize_variable(&info, "k", 0x110), DieCategory::Covered);
    }

    #[test]
    fn abstract_origin_location_is_honoured() {
        let (mut info, sub) = base_info();
        // Abstract instance of an inlined callee with the variable's location.
        let abstract_sub = info.add_die(info.root(), DieTag::Subprogram);
        info.set_attr(abstract_sub, Attr::Name, AttrValue::Text("callee".into()));
        let abstract_var = info.add_die(abstract_sub, DieTag::Variable);
        info.set_attr(abstract_var, Attr::Name, AttrValue::Text("a".into()));
        info.set_attr(abstract_var, Attr::ConstValue, AttrValue::Signed(4));
        // Concrete inlined instance inside main, whose child refers to the
        // abstract origin but has no location of its own.
        let inlined = info.add_die(sub, DieTag::InlinedSubroutine);
        info.set_attr(inlined, Attr::LowPc, AttrValue::Addr(0x140));
        info.set_attr(inlined, Attr::HighPc, AttrValue::Addr(0x150));
        info.set_attr(inlined, Attr::AbstractOrigin, AttrValue::Ref(abstract_sub));
        let concrete_var = info.add_die(inlined, DieTag::Variable);
        info.set_attr(concrete_var, Attr::Name, AttrValue::Text("a".into()));
        info.set_attr(
            concrete_var,
            Attr::AbstractOrigin,
            AttrValue::Ref(abstract_var),
        );
        assert_eq!(categorize_variable(&info, "a", 0x145), DieCategory::Covered);
    }

    #[test]
    fn scope_index_agrees_with_the_linear_subprogram_scan() {
        let (mut info, _) = base_info();
        // A second, later subprogram plus an abstract (rangeless) one.
        let second = info.add_die(info.root(), DieTag::Subprogram);
        info.set_attr(second, Attr::Name, AttrValue::Text("f".into()));
        info.set_attr(second, Attr::LowPc, AttrValue::Addr(0x300));
        info.set_attr(second, Attr::HighPc, AttrValue::Addr(0x340));
        let abstract_sub = info.add_die(info.root(), DieTag::Subprogram);
        info.set_attr(abstract_sub, Attr::Name, AttrValue::Text("inlinee".into()));
        let index = ScopeIndex::new(&info);
        assert_eq!(index.len(), 2);
        assert!(!index.is_empty());
        for address in [
            0x0, 0xff, 0x100, 0x150, 0x1ff, 0x200, 0x2ff, 0x300, 0x33f, 0x340, 0x900,
        ] {
            assert_eq!(
                index.subprogram_at(address),
                info.subprogram_at(address),
                "index diverges from the linear scan at {address:#x}"
            );
        }
    }

    #[test]
    fn scope_index_handles_overlapping_ranges_like_the_scan() {
        // Overlap never comes out of the compiler, but the index must not
        // silently change the tie-break if it ever did.
        let (mut info, _) = base_info();
        let nested = info.add_die(info.root(), DieTag::Subprogram);
        info.set_attr(nested, Attr::Name, AttrValue::Text("overlap".into()));
        info.set_attr(nested, Attr::LowPc, AttrValue::Addr(0x140));
        info.set_attr(nested, Attr::HighPc, AttrValue::Addr(0x160));
        let index = ScopeIndex::new(&info);
        for address in [0x120, 0x140, 0x150, 0x15f, 0x160, 0x1f0] {
            assert_eq!(index.subprogram_at(address), info.subprogram_at(address));
        }
    }

    #[test]
    fn empty_location_range_is_incomplete() {
        let (mut info, sub) = base_info();
        let var = info.add_die(sub, DieTag::Variable);
        info.set_attr(var, Attr::Name, AttrValue::Text("x".into()));
        info.set_attr(
            var,
            Attr::Location,
            AttrValue::LocList(vec![LocListEntry::new(0x100, 0x180, Location::Empty)]),
        );
        assert_eq!(
            categorize_variable(&info, "x", 0x110),
            DieCategory::IncompleteDie
        );
    }
}
