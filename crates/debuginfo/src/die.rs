//! Debug information entries (DIEs) and the DIE tree.

use crate::line_table::LineTable;
use crate::location::LocListEntry;

/// Identifier of a DIE within a [`DebugInfo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DieId(pub usize);

/// DIE tags — the subset of DWARF tags the reproduction needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DieTag {
    /// `DW_TAG_compile_unit` — the root of the tree.
    CompileUnit,
    /// `DW_TAG_subprogram` — a function. Subprograms without a low/high pc
    /// serve as *abstract* representations of inlined functions.
    Subprogram,
    /// `DW_TAG_inlined_subroutine` — the concrete instance of an inlined
    /// call, pointing at its abstract origin.
    InlinedSubroutine,
    /// `DW_TAG_lexical_block` — an unnamed scope.
    LexicalBlock,
    /// `DW_TAG_variable` — a local variable or global.
    Variable,
    /// `DW_TAG_formal_parameter` — a function parameter.
    FormalParameter,
}

impl DieTag {
    /// Whether this tag describes something that holds a value a debugger
    /// would list in a frame (variable or parameter).
    pub fn is_data(self) -> bool {
        matches!(self, DieTag::Variable | DieTag::FormalParameter)
    }
}

/// Attributes — the subset of DWARF attributes the reproduction needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Attr {
    /// `DW_AT_name`.
    Name,
    /// `DW_AT_low_pc`.
    LowPc,
    /// `DW_AT_high_pc` (stored as an absolute end address here).
    HighPc,
    /// `DW_AT_decl_line`.
    DeclLine,
    /// `DW_AT_const_value` — the variable holds this constant everywhere.
    ConstValue,
    /// `DW_AT_location` — a location list.
    Location,
    /// `DW_AT_abstract_origin` — for inlined subroutines and their variables.
    AbstractOrigin,
    /// `DW_AT_call_line` — source line of the inlined call site.
    CallLine,
    /// `DW_AT_external` — the variable is a global.
    External,
    /// `DW_AT_frame_base` — modelled as the subprogram's total frame size in
    /// slots. Its presence records that the function lays out a real frame
    /// (callee-saved save area, spill slots) whose frame-base-relative
    /// location descriptions ([`crate::Location::FrameBase`]) are meaningful.
    FrameBase,
}

/// Attribute values.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string (names).
    Text(String),
    /// An address.
    Addr(u64),
    /// An unsigned integer.
    Unsigned(u64),
    /// A signed integer (constant values).
    Signed(i64),
    /// A boolean flag.
    Flag(bool),
    /// A reference to another DIE.
    Ref(DieId),
    /// A location list.
    LocList(Vec<LocListEntry>),
}

impl AttrValue {
    /// The address payload, if this value is an address.
    pub fn as_addr(&self) -> Option<u64> {
        match self {
            AttrValue::Addr(a) => Some(*a),
            _ => None,
        }
    }

    /// The signed payload, if this value is a signed integer.
    pub fn as_signed(&self) -> Option<i64> {
        match self {
            AttrValue::Signed(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this value is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttrValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The DIE reference payload, if this value is a reference.
    pub fn as_ref_die(&self) -> Option<DieId> {
        match self {
            AttrValue::Ref(d) => Some(*d),
            _ => None,
        }
    }

    /// The location list payload, if this value is a location list.
    pub fn as_loclist(&self) -> Option<&[LocListEntry]> {
        match self {
            AttrValue::LocList(l) => Some(l),
            _ => None,
        }
    }
}

/// One debug information entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Die {
    /// The tag.
    pub tag: DieTag,
    /// Attribute list (at most one value per attribute).
    pub attrs: Vec<(Attr, AttrValue)>,
    /// Child DIEs.
    pub children: Vec<DieId>,
    /// Parent DIE (`None` only for the compile unit).
    pub parent: Option<DieId>,
}

impl Die {
    /// Look up an attribute.
    pub fn attr(&self, attr: Attr) -> Option<&AttrValue> {
        self.attrs.iter().find(|(a, _)| *a == attr).map(|(_, v)| v)
    }

    /// The DIE's name, if it has one.
    pub fn name(&self) -> Option<&str> {
        self.attr(Attr::Name).and_then(AttrValue::as_text)
    }

    /// The `[low_pc, high_pc)` range, if both attributes are present.
    pub fn pc_range(&self) -> Option<(u64, u64)> {
        let low = self.attr(Attr::LowPc)?.as_addr()?;
        let high = self.attr(Attr::HighPc)?.as_addr()?;
        Some((low, high))
    }

    /// Whether the DIE's pc range covers an address. DIEs without a range
    /// (abstract instances) cover nothing.
    pub fn covers(&self, address: u64) -> bool {
        self.pc_range()
            .map(|(lo, hi)| lo <= address && address < hi)
            .unwrap_or(false)
    }
}

/// The complete debug information of an executable: a DIE tree plus the line
/// table.
#[derive(Debug, Clone, PartialEq)]
pub struct DebugInfo {
    dies: Vec<Die>,
    /// The line table.
    pub line_table: LineTable,
    /// Name of the (synthetic) source file.
    pub source_name: String,
}

impl DebugInfo {
    /// Create debug information containing only a compile-unit root.
    pub fn new(source_name: &str) -> DebugInfo {
        DebugInfo {
            dies: vec![Die {
                tag: DieTag::CompileUnit,
                attrs: vec![(Attr::Name, AttrValue::Text(source_name.to_owned()))],
                children: Vec::new(),
                parent: None,
            }],
            line_table: LineTable::new(),
            source_name: source_name.to_owned(),
        }
    }

    /// The compile-unit root DIE.
    pub fn root(&self) -> DieId {
        DieId(0)
    }

    /// Reassemble debug information from its parts — the deserialization
    /// seam of the on-disk artifact store, which spills whole executables
    /// (machine code plus this tree) per compiler configuration.
    ///
    /// The tree's structural invariants are validated: there must be a
    /// parentless compile-unit root at index 0, every other DIE must name a
    /// parent, and the parent/children edges must mirror each other exactly
    /// (in order, since child order is meaningful for scope walks). Returns
    /// `None` when any invariant fails, so a corrupted store file degrades
    /// into a cache miss instead of a malformed tree.
    pub fn from_raw_parts(
        dies: Vec<Die>,
        line_table: LineTable,
        source_name: String,
    ) -> Option<DebugInfo> {
        let root = dies.first()?;
        if root.tag != DieTag::CompileUnit || root.parent.is_some() {
            return None;
        }
        for (index, die) in dies.iter().enumerate().skip(1) {
            let parent = die.parent?;
            if parent.0 >= dies.len() || !dies[parent.0].children.contains(&DieId(index)) {
                return None;
            }
        }
        for (index, die) in dies.iter().enumerate() {
            for &child in &die.children {
                if child.0 >= dies.len() || dies[child.0].parent != Some(DieId(index)) {
                    return None;
                }
            }
        }
        Some(DebugInfo {
            dies,
            line_table,
            source_name,
        })
    }

    /// Add a child DIE under `parent` and return its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range.
    pub fn add_die(&mut self, parent: DieId, tag: DieTag) -> DieId {
        let id = DieId(self.dies.len());
        self.dies.push(Die {
            tag,
            attrs: Vec::new(),
            children: Vec::new(),
            parent: Some(parent),
        });
        self.dies[parent.0].children.push(id);
        id
    }

    /// Set (or replace) an attribute on a DIE.
    pub fn set_attr(&mut self, die: DieId, attr: Attr, value: AttrValue) {
        let entry = &mut self.dies[die.0];
        if let Some(slot) = entry.attrs.iter_mut().find(|(a, _)| *a == attr) {
            slot.1 = value;
        } else {
            entry.attrs.push((attr, value));
        }
    }

    /// Remove an attribute from a DIE, returning its previous value.
    pub fn remove_attr(&mut self, die: DieId, attr: Attr) -> Option<AttrValue> {
        let entry = &mut self.dies[die.0];
        let pos = entry.attrs.iter().position(|(a, _)| *a == attr)?;
        Some(entry.attrs.remove(pos).1)
    }

    /// Access a DIE.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn die(&self, id: DieId) -> &Die {
        &self.dies[id.0]
    }

    /// Number of DIEs.
    pub fn len(&self) -> usize {
        self.dies.len()
    }

    /// Whether the tree holds only the compile unit.
    pub fn is_empty(&self) -> bool {
        self.dies.len() <= 1
    }

    /// Iterate over `(id, die)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DieId, &Die)> {
        self.dies.iter().enumerate().map(|(i, d)| (DieId(i), d))
    }

    /// The subprogram DIE whose pc range covers `address`, if any.
    pub fn subprogram_at(&self, address: u64) -> Option<DieId> {
        self.iter()
            .find(|(_, d)| d.tag == DieTag::Subprogram && d.covers(address))
            .map(|(id, _)| id)
    }

    /// Innermost inlined subroutine covering `address` within `subprogram`,
    /// if any (walks nested inlined subroutines).
    pub fn innermost_inlined_at(&self, subprogram: DieId, address: u64) -> Option<DieId> {
        let mut found = None;
        let mut stack = vec![subprogram];
        while let Some(id) = stack.pop() {
            for &child in &self.die(id).children {
                let die = self.die(child);
                if die.tag == DieTag::InlinedSubroutine && die.covers(address) {
                    found = Some(child);
                    stack.push(child);
                } else if die.tag == DieTag::LexicalBlock {
                    stack.push(child);
                }
            }
        }
        found
    }

    /// Direct and lexically nested data DIEs (variables/parameters) of a
    /// scope, *not* descending into inlined subroutines or nested
    /// subprograms. Lexical blocks are descended into only when they cover
    /// `address` or have no pc range.
    pub fn data_dies_in_scope(&self, scope: DieId, address: u64) -> Vec<DieId> {
        let mut out = Vec::new();
        let mut stack = vec![scope];
        while let Some(id) = stack.pop() {
            for &child in &self.die(id).children {
                let die = self.die(child);
                match die.tag {
                    DieTag::Variable | DieTag::FormalParameter => out.push(child),
                    DieTag::LexicalBlock if (die.pc_range().is_none() || die.covers(address)) => {
                        stack.push(child);
                    }
                    _ => {}
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Find a child data DIE (variable or parameter) of `scope` by name,
    /// searching lexical blocks as well.
    pub fn find_variable(&self, scope: DieId, name: &str, address: u64) -> Option<DieId> {
        self.data_dies_in_scope(scope, address)
            .into_iter()
            .find(|id| self.die(*id).name() == Some(name))
    }

    /// Total number of data DIEs (variables/parameters) in the tree.
    pub fn variable_count(&self) -> usize {
        self.dies.iter().filter(|d| d.tag.is_data()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::Location;

    fn sample() -> (DebugInfo, DieId, DieId, DieId) {
        let mut info = DebugInfo::new("t.c");
        let sub = info.add_die(info.root(), DieTag::Subprogram);
        info.set_attr(sub, Attr::Name, AttrValue::Text("main".into()));
        info.set_attr(sub, Attr::LowPc, AttrValue::Addr(0x100));
        info.set_attr(sub, Attr::HighPc, AttrValue::Addr(0x200));
        let var = info.add_die(sub, DieTag::Variable);
        info.set_attr(var, Attr::Name, AttrValue::Text("x".into()));
        info.set_attr(
            var,
            Attr::Location,
            AttrValue::LocList(vec![LocListEntry::new(0x100, 0x180, Location::Register(2))]),
        );
        let block = info.add_die(sub, DieTag::LexicalBlock);
        info.set_attr(block, Attr::LowPc, AttrValue::Addr(0x140));
        info.set_attr(block, Attr::HighPc, AttrValue::Addr(0x160));
        let inner = info.add_die(block, DieTag::Variable);
        info.set_attr(inner, Attr::Name, AttrValue::Text("y".into()));
        info.set_attr(inner, Attr::ConstValue, AttrValue::Signed(9));
        (info, sub, var, inner)
    }

    #[test]
    fn subprogram_lookup_by_pc() {
        let (info, sub, _, _) = sample();
        assert_eq!(info.subprogram_at(0x100), Some(sub));
        assert_eq!(info.subprogram_at(0x1ff), Some(sub));
        assert_eq!(info.subprogram_at(0x200), None);
    }

    #[test]
    fn scope_variables_respect_lexical_block_ranges() {
        let (info, sub, var, inner) = sample();
        // Outside the block: only x.
        let outside = info.data_dies_in_scope(sub, 0x110);
        assert!(outside.contains(&var));
        assert!(!outside.contains(&inner));
        // Inside the block: both.
        let inside = info.data_dies_in_scope(sub, 0x150);
        assert!(inside.contains(&var));
        assert!(inside.contains(&inner));
    }

    #[test]
    fn find_variable_by_name() {
        let (info, sub, var, _) = sample();
        assert_eq!(info.find_variable(sub, "x", 0x110), Some(var));
        assert_eq!(info.find_variable(sub, "nope", 0x110), None);
        assert!(info.find_variable(sub, "y", 0x150).is_some());
        assert_eq!(info.find_variable(sub, "y", 0x110), None);
    }

    #[test]
    fn attributes_can_be_replaced_and_removed() {
        let (mut info, _, var, _) = sample();
        info.set_attr(var, Attr::Name, AttrValue::Text("renamed".into()));
        assert_eq!(info.die(var).name(), Some("renamed"));
        let removed = info.remove_attr(var, Attr::Location);
        assert!(removed.is_some());
        assert!(info.die(var).attr(Attr::Location).is_none());
    }

    #[test]
    fn inlined_subroutine_lookup() {
        let (mut info, sub, _, _) = sample();
        let inlined = info.add_die(sub, DieTag::InlinedSubroutine);
        info.set_attr(inlined, Attr::LowPc, AttrValue::Addr(0x150));
        info.set_attr(inlined, Attr::HighPc, AttrValue::Addr(0x158));
        assert_eq!(info.innermost_inlined_at(sub, 0x152), Some(inlined));
        assert_eq!(info.innermost_inlined_at(sub, 0x120), None);
    }

    #[test]
    fn variable_count_counts_data_dies() {
        let (info, _, _, _) = sample();
        assert_eq!(info.variable_count(), 2);
    }

    #[test]
    fn from_raw_parts_round_trips_and_rejects_broken_trees() {
        let (info, _, _, _) = sample();
        let dies: Vec<Die> = info.iter().map(|(_, d)| d.clone()).collect();
        let rebuilt = DebugInfo::from_raw_parts(
            dies.clone(),
            info.line_table.clone(),
            info.source_name.clone(),
        )
        .expect("a well-formed tree must reassemble");
        assert_eq!(rebuilt, info);

        assert!(
            DebugInfo::from_raw_parts(Vec::new(), LineTable::new(), "t.c".into()).is_none(),
            "empty tree"
        );
        let mut orphaned = dies.clone();
        orphaned[1].parent = None;
        assert!(
            DebugInfo::from_raw_parts(orphaned, LineTable::new(), "t.c".into()).is_none(),
            "orphaned non-root DIE"
        );
        let mut dangling = dies.clone();
        dangling[0].children.push(DieId(999));
        assert!(
            DebugInfo::from_raw_parts(dangling, LineTable::new(), "t.c".into()).is_none(),
            "dangling child edge"
        );
        let mut mismatched = dies;
        mismatched[1].parent = Some(DieId(2));
        assert!(
            DebugInfo::from_raw_parts(mismatched, LineTable::new(), "t.c".into()).is_none(),
            "parent/children edges must mirror"
        );
    }
}
