//! A DWARF-modelled debug information format.
//!
//! The paper analyses real DWARF: debug information entries (DIEs) with
//! `DW_AT_location` location lists and `DW_AT_const_value` attributes, the
//! line table, and the abstract/concrete representations of inlined
//! subroutines. This crate reproduces exactly those entities so that:
//!
//! * the compiler (`holes-compiler`) can *emit* them,
//! * the debugger (`holes-debugger`) can *consume* them, including the
//!   personality quirks behind the paper's gdb and lldb bugs,
//! * the analysis in [`analysis`] can classify a variable's DIE at a program
//!   point into the paper's four completeness categories (*Missing*,
//!   *Hollow*, *Incomplete*, *Incorrect* — Table 3).
//!
//! # Example
//!
//! ```
//! use holes_debuginfo::{Attr, AttrValue, DebugInfo, DieTag, LineRow, Location};
//!
//! let mut info = DebugInfo::new("example.c");
//! let sub = info.add_die(info.root(), DieTag::Subprogram);
//! info.set_attr(sub, Attr::Name, AttrValue::Text("main".into()));
//! info.set_attr(sub, Attr::LowPc, AttrValue::Addr(0x1000));
//! info.set_attr(sub, Attr::HighPc, AttrValue::Addr(0x1040));
//! let var = info.add_die(sub, DieTag::Variable);
//! info.set_attr(var, Attr::Name, AttrValue::Text("x".into()));
//! info.set_attr(var, Attr::ConstValue, AttrValue::Signed(7));
//! info.line_table.push(LineRow { address: 0x1000, line: 3, is_stmt: true });
//! assert_eq!(info.subprogram_at(0x1002), Some(sub));
//! let _ = Location::Register(0);
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod die;
pub mod line_table;
pub mod location;

pub use analysis::{categorize_variable, DieCategory, ScopeIndex};
pub use die::{Attr, AttrValue, DebugInfo, Die, DieId, DieTag};
pub use line_table::{LineRow, LineTable};
pub use location::{LocListEntry, Location};
