//! The line table: the mapping from machine addresses to source lines.

/// One row of the line table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineRow {
    /// Machine instruction address.
    pub address: u64,
    /// Source line the instruction belongs to.
    pub line: u32,
    /// Whether the address is a recommended breakpoint location for the line
    /// (the DWARF `is_stmt` flag). Debuggers place line breakpoints only at
    /// `is_stmt` addresses.
    pub is_stmt: bool,
}

/// The line table of an executable: a list of rows sorted by address.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LineTable {
    rows: Vec<LineRow>,
}

impl LineTable {
    /// Create an empty line table.
    pub fn new() -> LineTable {
        LineTable::default()
    }

    /// Append a row. Rows may be pushed in any order; they are kept sorted by
    /// address internally.
    pub fn push(&mut self, row: LineRow) {
        let pos = self.rows.partition_point(|r| r.address <= row.address);
        self.rows.insert(pos, row);
    }

    /// All rows, sorted by address.
    pub fn rows(&self) -> &[LineRow] {
        &self.rows
    }

    /// The source line mapped to an address, if any (the row with the
    /// greatest address less than or equal to `address`).
    pub fn line_for_address(&self, address: u64) -> Option<u32> {
        let idx = self.rows.partition_point(|r| r.address <= address);
        idx.checked_sub(1).map(|i| self.rows[i].line)
    }

    /// The set of distinct source lines that have at least one `is_stmt`
    /// address — the lines a debugger can step on.
    pub fn steppable_lines(&self) -> Vec<u32> {
        let mut lines: Vec<u32> = self
            .rows
            .iter()
            .filter(|r| r.is_stmt)
            .map(|r| r.line)
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    }

    /// The first `is_stmt` address of a line, if the line is steppable. This
    /// is where the paper's methodology places its one-shot breakpoints.
    pub fn first_address_of_line(&self, line: u32) -> Option<u64> {
        self.rows
            .iter()
            .filter(|r| r.is_stmt && r.line == line)
            .map(|r| r.address)
            .min()
    }

    /// The first `is_stmt` address of *every* steppable line, in one pass —
    /// the bulk form of [`LineTable::first_address_of_line`] used when a
    /// consumer (the debugger's breakpoint placement and stop-plan
    /// precomputation) needs the whole mapping rather than one line.
    pub fn first_stmt_addresses(&self) -> std::collections::BTreeMap<u32, u64> {
        let mut map = std::collections::BTreeMap::new();
        for row in self.rows.iter().filter(|r| r.is_stmt) {
            map.entry(row.line)
                .and_modify(|first: &mut u64| *first = (*first).min(row.address))
                .or_insert(row.address);
        }
        map
    }

    /// All `is_stmt` addresses of a line (loop unrolling can produce several).
    pub fn addresses_of_line(&self, line: u32) -> Vec<u64> {
        self.rows
            .iter()
            .filter(|r| r.is_stmt && r.line == line)
            .map(|r| r.address)
            .collect()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> LineTable {
        let mut t = LineTable::new();
        t.push(LineRow {
            address: 0x100,
            line: 5,
            is_stmt: true,
        });
        t.push(LineRow {
            address: 0x104,
            line: 5,
            is_stmt: false,
        });
        t.push(LineRow {
            address: 0x108,
            line: 6,
            is_stmt: true,
        });
        t.push(LineRow {
            address: 0x110,
            line: 5,
            is_stmt: true,
        });
        t
    }

    #[test]
    fn rows_are_kept_sorted() {
        let mut t = LineTable::new();
        t.push(LineRow {
            address: 0x20,
            line: 2,
            is_stmt: true,
        });
        t.push(LineRow {
            address: 0x10,
            line: 1,
            is_stmt: true,
        });
        t.push(LineRow {
            address: 0x30,
            line: 3,
            is_stmt: true,
        });
        let addrs: Vec<u64> = t.rows().iter().map(|r| r.address).collect();
        assert_eq!(addrs, vec![0x10, 0x20, 0x30]);
    }

    #[test]
    fn line_for_address_uses_preceding_row() {
        let t = table();
        assert_eq!(t.line_for_address(0x100), Some(5));
        assert_eq!(t.line_for_address(0x106), Some(5));
        assert_eq!(t.line_for_address(0x108), Some(6));
        assert_eq!(t.line_for_address(0x0ff), None);
    }

    #[test]
    fn steppable_lines_are_unique_and_sorted() {
        let t = table();
        assert_eq!(t.steppable_lines(), vec![5, 6]);
    }

    #[test]
    fn first_address_of_line_is_minimum_stmt_address() {
        let t = table();
        assert_eq!(t.first_address_of_line(5), Some(0x100));
        assert_eq!(t.first_address_of_line(6), Some(0x108));
        assert_eq!(t.first_address_of_line(7), None);
    }

    #[test]
    fn addresses_of_line_lists_all_stmt_rows() {
        let t = table();
        assert_eq!(t.addresses_of_line(5), vec![0x100, 0x110]);
    }

    #[test]
    fn bulk_first_addresses_agree_with_the_per_line_lookup() {
        let t = table();
        let bulk = t.first_stmt_addresses();
        assert_eq!(bulk.len(), t.steppable_lines().len());
        for line in t.steppable_lines() {
            assert_eq!(bulk.get(&line).copied(), t.first_address_of_line(line));
        }
        assert!(LineTable::new().first_stmt_addresses().is_empty());
    }
}
