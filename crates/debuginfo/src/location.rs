//! Variable locations and location lists (the model of `DW_AT_location`).

/// Where a variable's value can be found at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Location {
    /// The value lives in a machine register of the current frame.
    Register(u8),
    /// The value lives in a stack slot of the current frame.
    FrameSlot(u32),
    /// The value lives at an absolute (global) memory address.
    GlobalAddress(u64),
    /// The value is the given compile-time constant (models a
    /// `DW_OP_constu`-style location expression; distinct from the
    /// `DW_AT_const_value` attribute but equivalent for availability).
    ConstValue(i64),
    /// The location expression is present but empty: the variable is
    /// explicitly optimized out over this range.
    Empty,
    /// The value lives `offset` slots (8 bytes each) past the frame base —
    /// the model of a `DW_OP_fbreg` expression, resolved against
    /// `Vm::frame_base` at stop time. This is the location class of
    /// stack-VM spill slots and of the frame-ABI backend's spilled and
    /// callee-saved variables; default register-backend code never emits
    /// it.
    FrameBase {
        /// Slot offset from the frame base (may be negative in principle;
        /// the stack backend only emits non-negative offsets).
        offset: i32,
    },
    /// A composite location expression: take the value of register `reg`,
    /// add `offset` bytes, and — when `deref` — load through the resulting
    /// address (the model of `DW_OP_breg<N> + DW_OP_deref`). The stack
    /// backend describes address-taken locals this way, anchored to its
    /// frame-pointer register.
    Composite {
        /// Base register of the expression.
        reg: u8,
        /// Byte offset added to the register value.
        offset: i64,
        /// Whether the computed address is dereferenced.
        deref: bool,
    },
}

impl Location {
    /// Whether a debugger can produce a value from this location.
    pub fn yields_value(self) -> bool {
        !matches!(self, Location::Empty)
    }
}

/// One entry of a location list: a half-open address range `[start, end)`
/// during which the variable can be found at `location`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocListEntry {
    /// First address covered.
    pub start: u64,
    /// One past the last address covered.
    pub end: u64,
    /// Where the variable lives over the range.
    pub location: Location,
}

impl LocListEntry {
    /// Create an entry.
    pub fn new(start: u64, end: u64, location: Location) -> LocListEntry {
        LocListEntry {
            start,
            end,
            location,
        }
    }

    /// Whether the entry covers an address. Entries with `start == end` are
    /// empty ranges; real DWARF permits them and the paper's gdb bug 28987
    /// came from a debugger mishandling exactly that case.
    pub fn covers(&self, address: u64) -> bool {
        self.start <= address && address < self.end
    }

    /// Whether the entry is an empty range.
    pub fn is_empty_range(&self) -> bool {
        self.start >= self.end
    }
}

/// Find the location covering `address` in a location list, if any.
pub fn lookup(entries: &[LocListEntry], address: u64) -> Option<Location> {
    entries
        .iter()
        .find(|e| e.covers(address))
        .map(|e| e.location)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_is_half_open() {
        let e = LocListEntry::new(10, 20, Location::Register(1));
        assert!(e.covers(10));
        assert!(e.covers(19));
        assert!(!e.covers(20));
        assert!(!e.covers(9));
    }

    #[test]
    fn empty_ranges_cover_nothing() {
        let e = LocListEntry::new(10, 10, Location::Register(1));
        assert!(e.is_empty_range());
        assert!(!e.covers(10));
    }

    #[test]
    fn lookup_finds_first_covering_entry() {
        let entries = vec![
            LocListEntry::new(0, 10, Location::Register(0)),
            LocListEntry::new(10, 20, Location::ConstValue(5)),
            LocListEntry::new(20, 30, Location::Empty),
        ];
        assert_eq!(lookup(&entries, 5), Some(Location::Register(0)));
        assert_eq!(lookup(&entries, 15), Some(Location::ConstValue(5)));
        assert_eq!(lookup(&entries, 25), Some(Location::Empty));
        assert_eq!(lookup(&entries, 35), None);
    }

    #[test]
    fn yields_value_distinguishes_empty() {
        assert!(Location::Register(3).yields_value());
        assert!(Location::ConstValue(0).yields_value());
        assert!(Location::FrameBase { offset: 2 }.yields_value());
        assert!(Location::Composite {
            reg: 3,
            offset: 16,
            deref: true
        }
        .yields_value());
        assert!(!Location::Empty.yields_value());
    }
}
