//! Backend selection: which simulated machine model an executable targets.
//!
//! The reproduction originally had a single execution target (the register
//! VM of [`crate::exec`]). The paper's methodology, however, is about what
//! the *location description* language can and cannot express — and a
//! register ISA can never exercise stack-relative or composite location
//! descriptions. [`BackendKind`] names the available machine models;
//! [`MachineCode`] holds a compiled program for either one and spawns the
//! matching stepper ([`crate::Vm`]) for the debugger.

use crate::exec::{Machine, MachineError, RunOutcome};
use crate::isa::MachineProgram;
use crate::stack::{StackMachine, StackProgram};
use crate::Vm;

/// The simulated machine models a program can be compiled for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum BackendKind {
    /// The register VM: [`crate::isa::NUM_REGS`] general-purpose registers
    /// per frame, three-address instructions. The default backend; its
    /// location descriptions are registers, frame slots, constants and
    /// global addresses.
    #[default]
    Reg,
    /// The stack VM: an operand-stack ISA with a small register file
    /// ([`crate::stack::STACK_NUM_REGS`] registers, one of which is the
    /// frame pointer) plus spill slots. Its codegen must describe most
    /// variables with stack-relative (`FrameBase`) and composite
    /// (register + offset + dereference) location descriptions that the
    /// register ISA never produces.
    Stack,
    /// The register ISA under a callee-saved calling convention: the same
    /// instruction set and VM as [`BackendKind::Reg`], but code generation
    /// lays out a real frame — a callee-saved register set with
    /// prologue/epilogue save/restore — and describes spilled and saved
    /// variables with frame-base-relative locations
    /// (`DW_OP_fbreg`-style). This is the only backend whose frame layout
    /// can express the `DW_CFA`-style defect class (stale frame-base and
    /// clobbered callee-saved descriptions).
    Frame,
}

impl BackendKind {
    /// Every backend, in default-first order.
    pub const ALL: [BackendKind; 3] = [BackendKind::Reg, BackendKind::Stack, BackendKind::Frame];

    /// The stable spelling used by CLI flags and file formats
    /// (`reg` / `stack` / `frame`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Reg => "reg",
            BackendKind::Stack => "stack",
            BackendKind::Frame => "frame",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Failed parse of a [`BackendKind`] spelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError(String);

impl std::fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown backend: `{}` (expected `reg`, `stack`, or `frame`)",
            self.0
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl std::str::FromStr for BackendKind {
    type Err = ParseBackendError;

    /// Parse a backend name as spelled in CLI flags and shard headers
    /// (`reg`, `stack`, or `frame`, case-insensitive).
    fn from_str(s: &str) -> Result<BackendKind, ParseBackendError> {
        match s.to_ascii_lowercase().as_str() {
            "reg" => Ok(BackendKind::Reg),
            "stack" => Ok(BackendKind::Stack),
            "frame" => Ok(BackendKind::Frame),
            other => Err(ParseBackendError(other.to_owned())),
        }
    }
}

/// A compiled program for either backend: the machine-code half of an
/// executable. Spawns the matching stepper for the debugger via
/// [`MachineCode::spawn`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineCode {
    /// A register-VM program.
    Reg(MachineProgram),
    /// A stack-VM program.
    Stack(StackProgram),
    /// A register-VM program compiled under the callee-saved frame ABI.
    /// Runs on the same [`Machine`] stepper as [`MachineCode::Reg`]; the
    /// distinction matters to the *debug information* (frame-base-relative
    /// locations) and to file formats, not to execution.
    Frame(MachineProgram),
}

impl MachineCode {
    /// Which backend this code targets.
    pub fn backend(&self) -> BackendKind {
        match self {
            MachineCode::Reg(_) => BackendKind::Reg,
            MachineCode::Stack(_) => BackendKind::Stack,
            MachineCode::Frame(_) => BackendKind::Frame,
        }
    }

    /// Total number of instructions.
    pub fn instruction_count(&self) -> usize {
        match self {
            MachineCode::Reg(p) | MachineCode::Frame(p) => p.instruction_count(),
            MachineCode::Stack(p) => p.instruction_count(),
        }
    }

    /// Spawn a fresh stepper for this program, ready to run from its entry
    /// function.
    pub fn spawn(&self) -> Box<dyn Vm + '_> {
        match self {
            MachineCode::Reg(p) | MachineCode::Frame(p) => Box::new(Machine::new(p)),
            MachineCode::Stack(p) => Box::new(StackMachine::new(p)),
        }
    }

    /// Spawn a fresh stepper with an explicit step budget instead of the
    /// default fuel. Containment layers use this to bound non-terminating
    /// subjects deterministically: the same program and fuel always stop at
    /// the same step.
    pub fn spawn_with_fuel(&self, fuel: u64) -> Box<dyn Vm + '_> {
        match self {
            MachineCode::Reg(p) | MachineCode::Frame(p) => Box::new(Machine::with_fuel(p, fuel)),
            MachineCode::Stack(p) => Box::new(StackMachine::with_fuel(p, fuel)),
        }
    }

    /// Run the program to completion and return the observable outcome.
    ///
    /// # Errors
    ///
    /// Returns the machine error if execution faults or exceeds its budget.
    pub fn run_to_completion(&self) -> Result<RunOutcome, MachineError> {
        match self {
            MachineCode::Reg(p) | MachineCode::Frame(p) => Machine::new(p).run_to_completion(),
            MachineCode::Stack(p) => StackMachine::new(p).run_to_completion(),
        }
    }

    /// The register-VM program, if this is register code (either ABI).
    pub fn as_reg(&self) -> Option<&MachineProgram> {
        match self {
            MachineCode::Reg(p) | MachineCode::Frame(p) => Some(p),
            MachineCode::Stack(_) => None,
        }
    }

    /// The stack-VM program, if this is stack code.
    pub fn as_stack(&self) -> Option<&StackProgram> {
        match self {
            MachineCode::Reg(_) | MachineCode::Frame(_) => None,
            MachineCode::Stack(p) => Some(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for backend in BackendKind::ALL {
            assert_eq!(backend.name().parse(), Ok(backend));
        }
        assert_eq!("STACK".parse(), Ok(BackendKind::Stack));
        assert_eq!("Frame".parse(), Ok(BackendKind::Frame));
        assert!("gcc".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::default(), BackendKind::Reg);
        let err = "x86".parse::<BackendKind>().unwrap_err();
        assert!(err.to_string().contains("x86"));
    }
}
