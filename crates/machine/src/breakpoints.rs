//! Breakpoint sets tuned for the VM's per-instruction probe.
//!
//! The machine asks "is the next pc a breakpoint?" before **every**
//! instruction it executes, so the probe sits on the hottest path of the
//! whole oracle (the debugger places one breakpoint per steppable source
//! line and runs the program to completion). A `HashSet<u64>` answers that
//! question by hashing eight bytes per step; this set instead keeps the
//! addresses sorted and answers with a bounds check — which rejects almost
//! every probe, since code addresses outside `[first, last]` cannot be
//! breakpoints — followed by a binary search over what is typically a
//! handful of entries.
//!
//! Mutation is O(n) per call, which is irrelevant here: the debugger inserts
//! each one-shot breakpoint once before the run and removes it once when it
//! is hit, while `contains` runs millions of times in between.

/// A set of code addresses the VM stops at, stored sorted for a cheap
/// hot-path membership probe (see the module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BreakpointSet {
    /// Sorted, deduplicated breakpoint addresses.
    addrs: Vec<u64>,
}

impl BreakpointSet {
    /// An empty set.
    pub const fn new() -> BreakpointSet {
        BreakpointSet { addrs: Vec::new() }
    }

    /// Add an address; inserting an existing address is a no-op.
    pub fn insert(&mut self, address: u64) {
        if let Err(pos) = self.addrs.binary_search(&address) {
            self.addrs.insert(pos, address);
        }
    }

    /// Remove an address, returning whether it was present.
    pub fn remove(&mut self, address: u64) -> bool {
        match self.addrs.binary_search(&address) {
            Ok(pos) => {
                self.addrs.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Whether the set contains an address. Bounds-rejects first, so probes
    /// outside the covered address range cost two comparisons.
    #[inline]
    pub fn contains(&self, address: u64) -> bool {
        match (self.addrs.first(), self.addrs.last()) {
            (Some(&lo), Some(&hi)) if lo <= address && address <= hi => {
                self.addrs.binary_search(&address).is_ok()
            }
            _ => false,
        }
    }

    /// Whether the set is empty (lets the VM skip the probe entirely).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Number of addresses in the set.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// The addresses, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.addrs.iter().copied()
    }
}

impl FromIterator<u64> for BreakpointSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> BreakpointSet {
        let mut addrs: Vec<u64> = iter.into_iter().collect();
        addrs.sort_unstable();
        addrs.dedup();
        BreakpointSet { addrs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut set = BreakpointSet::new();
        assert!(set.is_empty());
        assert!(!set.contains(10));
        set.insert(10);
        set.insert(30);
        set.insert(20);
        set.insert(20); // duplicate is a no-op
        assert_eq!(set.len(), 3);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![10, 20, 30]);
        for hit in [10, 20, 30] {
            assert!(set.contains(hit));
        }
        for miss in [0, 11, 25, 31, u64::MAX] {
            assert!(!set.contains(miss));
        }
        assert!(set.remove(20));
        assert!(!set.remove(20));
        assert!(!set.contains(20));
        assert!(set.contains(10) && set.contains(30));
    }

    #[test]
    fn from_iterator_sorts_and_dedups() {
        let set: BreakpointSet = [5u64, 1, 5, 3].into_iter().collect();
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
        assert!(set.contains(1) && set.contains(3) && set.contains(5));
        assert!(!set.contains(2));
    }

    #[test]
    fn empty_set_is_the_fast_path() {
        let set = BreakpointSet::new();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        // The probe bounds-rejects without searching: any address misses.
        for probe in [0, 1, u64::MAX] {
            assert!(!set.contains(probe));
        }
        assert_eq!(set.iter().count(), 0);
        // An emptied set regains the fast path.
        let mut set = set;
        set.insert(7);
        assert!(!set.is_empty());
        assert!(set.remove(7));
        assert!(set.is_empty());
        assert!(!set.contains(7));
    }

    #[test]
    fn duplicate_insertion_is_idempotent() {
        let mut set = BreakpointSet::new();
        for _ in 0..3 {
            set.insert(42);
        }
        assert_eq!(set.len(), 1);
        // One remove consumes the address entirely — duplicates never pile
        // up behind it.
        assert!(set.remove(42));
        assert!(!set.contains(42));
        assert!(!set.remove(42));
    }

    #[test]
    fn one_shot_breakpoints_are_consumed_in_execution_order() {
        // The debugger's protocol: insert every address up front, remove
        // each one the first time it is hit. The machine must report the
        // hits in execution order — not in address order — and never stop
        // at a consumed address again.
        use crate::exec::{Machine, StopReason};
        use crate::isa::{MFunction, MInst, MachineProgram, Operand, TEXT_BASE};
        let prog = MachineProgram {
            functions: vec![MFunction {
                name: "main".into(),
                code: vec![
                    MInst::Jump { target: 3 },           // 0
                    MInst::LoadImm { dst: 0, value: 1 }, /* 1 */
                    MInst::Jump { target: 5 },           // 2
                    MInst::Jump { target: 1 },           // 3 (hit before 1)
                    MInst::Nop,                          // 4 (never reached)
                    MInst::Ret {
                        value: Some(Operand::Reg(0)),
                    }, // 5
                ],
                frame_slots: 0,
                base_address: TEXT_BASE,
            }],
            globals: vec![],
            entry: 0,
        };
        let mut machine = Machine::new(&prog);
        let mut breaks: BreakpointSet = [1u64, 3, 4].iter().map(|o| TEXT_BASE + o).collect();
        let mut hits = Vec::new();
        loop {
            match machine.run(&breaks) {
                StopReason::Breakpoint { address } => {
                    assert!(breaks.remove(address), "stopped at a consumed address");
                    hits.push(address - TEXT_BASE);
                }
                StopReason::Finished { return_value } => {
                    assert_eq!(return_value, 1);
                    break;
                }
                other => panic!("unexpected stop: {other:?}"),
            }
        }
        // Execution order (3 before 1), not address order; 4 never fires.
        assert_eq!(hits, vec![3, 1]);
        assert_eq!(breaks.iter().collect::<Vec<_>>(), vec![TEXT_BASE + 4]);
    }

    #[test]
    fn matches_a_hash_set_on_random_probes() {
        use std::collections::HashSet;
        // Deterministic pseudo-random addresses (no RNG dependency).
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut reference = HashSet::new();
        let mut set = BreakpointSet::new();
        for _ in 0..200 {
            let addr = next() % 512;
            reference.insert(addr);
            set.insert(addr);
        }
        for probe in 0..512 {
            assert_eq!(set.contains(probe), reference.contains(&probe), "{probe}");
        }
    }
}
