//! The virtual machine: execution, stepping, breakpoints and state
//! inspection.

use holes_minic::interp::{ExecOutcome, STACK_BASE};

use crate::breakpoints::BreakpointSet;
use crate::isa::{CallTarget, MAddr, MInst, MachineProgram, Operand, Reg, NUM_REGS};

/// Default step budget; mirrors the reference interpreter's purpose of making
/// non-termination observable.
pub const DEFAULT_FUEL: u64 = 20_000_000;

/// Why the machine stopped running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// A breakpoint address was reached (before executing the instruction).
    Breakpoint {
        /// The address that was hit.
        address: u64,
    },
    /// The program finished; `main` returned the given value.
    Finished {
        /// Return value of the entry function.
        return_value: i64,
    },
    /// Execution failed.
    Error(MachineError),
}

/// Errors raised by the VM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The step budget was exhausted.
    OutOfFuel,
    /// A memory access hit an address outside every segment.
    BadAddress(i64),
    /// A branch target was outside the current function.
    BadBranchTarget(u32),
    /// A global element index was out of range.
    GlobalIndexOutOfRange {
        /// Global index.
        global: u32,
        /// Offending element index.
        element: i64,
    },
    /// A frame slot index was out of range.
    BadFrameSlot(u32),
    /// Execution continued past the end of a function without a return.
    FellOffEnd {
        /// The function that ended without `Ret`.
        function: String,
    },
    /// A stack-VM instruction popped from an empty operand stack (never
    /// produced by the compiler's stack backend, whose emission is
    /// balanced per statement; guards hand-written programs).
    EvalStackUnderflow,
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::OutOfFuel => write!(f, "machine exceeded its step budget"),
            MachineError::BadAddress(a) => write!(f, "access to unmapped address {a:#x}"),
            MachineError::BadBranchTarget(t) => write!(f, "branch to invalid target {t}"),
            MachineError::GlobalIndexOutOfRange { global, element } => {
                write!(
                    f,
                    "global {global} indexed out of range at element {element}"
                )
            }
            MachineError::BadFrameSlot(s) => write!(f, "frame slot {s} out of range"),
            MachineError::FellOffEnd { function } => {
                write!(f, "function {function} ended without returning")
            }
            MachineError::EvalStackUnderflow => {
                write!(f, "operand stack underflow")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// Outcome of running a program to completion, convertible to the reference
/// interpreter's [`ExecOutcome`] for differential testing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Arguments of each sink call, in call order.
    pub sink_calls: Vec<Vec<i64>>,
    /// Final value of every global, flattened, indexed by global id.
    pub final_globals: Vec<Vec<i64>>,
    /// Return value of the entry function.
    pub return_value: i64,
    /// Number of instructions executed.
    pub steps: u64,
}

impl RunOutcome {
    /// Compare against the reference interpreter's outcome (steps are not
    /// compared: the instruction count legitimately differs from the
    /// statement count).
    pub fn matches(&self, reference: &ExecOutcome) -> bool {
        self.sink_calls == reference.sink_calls
            && self.final_globals == reference.final_globals
            && self.return_value == reference.return_value
    }
}

/// One call frame.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Index of the executing function.
    pub function: u32,
    /// Local instruction index (the next instruction to execute).
    pub pc: u32,
    /// Register file.
    pub regs: [i64; NUM_REGS],
    /// Base index of this frame's slots within the machine's stack memory.
    pub slot_base: usize,
    /// Number of slots owned by this frame.
    pub slot_count: u32,
    /// Caller register that receives the return value.
    ret_reg: Option<Reg>,
}

/// The virtual machine.
#[derive(Debug)]
pub struct Machine<'p> {
    program: &'p MachineProgram,
    global_mem: Vec<i64>,
    global_offsets: Vec<usize>,
    stack_mem: Vec<i64>,
    frames: Vec<Frame>,
    sink_calls: Vec<Vec<i64>>,
    steps: u64,
    fuel: u64,
    finished: Option<i64>,
    error: Option<MachineError>,
}

impl<'p> Machine<'p> {
    /// Create a machine ready to execute `program` from its entry function.
    pub fn new(program: &'p MachineProgram) -> Machine<'p> {
        Machine::with_fuel(program, DEFAULT_FUEL)
    }

    /// Create a machine with an explicit step budget.
    pub fn with_fuel(program: &'p MachineProgram, fuel: u64) -> Machine<'p> {
        let mut global_mem = Vec::new();
        let mut global_offsets = Vec::with_capacity(program.globals.len());
        for g in &program.globals {
            global_offsets.push(global_mem.len());
            global_mem.extend_from_slice(&g.init);
        }
        let mut machine = Machine {
            program,
            global_mem,
            global_offsets,
            stack_mem: Vec::new(),
            frames: Vec::new(),
            sink_calls: Vec::new(),
            steps: 0,
            fuel,
            finished: None,
            error: None,
        };
        machine.push_frame(program.entry, &[], None);
        machine
    }

    fn push_frame(&mut self, function: u32, args: &[i64], ret_reg: Option<Reg>) {
        let func = &self.program.functions[function as usize];
        let slot_base = self.stack_mem.len();
        self.stack_mem
            .extend(std::iter::repeat_n(0, func.frame_slots as usize));
        let mut regs = [0i64; NUM_REGS];
        for (i, a) in args.iter().enumerate().take(NUM_REGS) {
            regs[i] = *a;
        }
        self.frames.push(Frame {
            function,
            pc: 0,
            regs,
            slot_base,
            slot_count: func.frame_slots,
            ret_reg,
        });
    }

    /// The current frame.
    ///
    /// # Panics
    ///
    /// Panics if the program already finished (no frame exists).
    pub fn current_frame(&self) -> &Frame {
        self.frames.last().expect("machine has no active frame")
    }

    /// Depth of the call stack.
    pub fn frame_depth(&self) -> usize {
        self.frames.len()
    }

    /// The code address about to be executed, if the machine is still
    /// running.
    pub fn pc_address(&self) -> Option<u64> {
        let frame = self.frames.last()?;
        let func = &self.program.functions[frame.function as usize];
        Some(func.address_of(frame.pc as usize))
    }

    /// Whether the program finished.
    pub fn is_finished(&self) -> bool {
        self.finished.is_some() || self.error.is_some()
    }

    /// Read a register of the current frame.
    pub fn read_reg(&self, reg: Reg) -> i64 {
        self.current_frame().regs[reg as usize]
    }

    /// Read a frame slot of the current frame.
    pub fn read_frame_slot(&self, slot: u32) -> Option<i64> {
        let frame = self.frames.last()?;
        if slot >= frame.slot_count {
            return None;
        }
        self.stack_mem.get(frame.slot_base + slot as usize).copied()
    }

    /// Read one element of a global.
    pub fn read_global(&self, global: u32, element: usize) -> Option<i64> {
        let offset = *self.global_offsets.get(global as usize)?;
        let size = self.program.globals[global as usize].elements;
        if element >= size {
            return None;
        }
        self.global_mem.get(offset + element).copied()
    }

    /// Read an absolute memory address (global segment or stack segment).
    pub fn read_address(&self, address: i64) -> Option<i64> {
        if address >= STACK_BASE {
            let slot = ((address - STACK_BASE) / 8) as usize;
            self.stack_mem.get(slot).copied()
        } else if address >= holes_minic::interp::GLOBAL_BASE {
            let elem = ((address - holes_minic::interp::GLOBAL_BASE) / 8) as usize;
            self.global_mem.get(elem).copied()
        } else {
            None
        }
    }

    /// Arguments recorded by sink calls so far.
    pub fn sink_calls(&self) -> &[Vec<i64>] {
        &self.sink_calls
    }

    /// Run until a breakpoint, completion or error.
    ///
    /// When the set is empty (or becomes irrelevant because every one-shot
    /// breakpoint was already consumed) the per-instruction probe is skipped
    /// entirely — the fast path the debugger falls onto once all steppable
    /// lines have been hit.
    pub fn run(&mut self, breakpoints: &BreakpointSet) -> StopReason {
        if breakpoints.is_empty() {
            return self.run_unchecked();
        }
        loop {
            if let Some(err) = &self.error {
                return StopReason::Error(err.clone());
            }
            if let Some(ret) = self.finished {
                return StopReason::Finished { return_value: ret };
            }
            if let Some(pc) = self.pc_address() {
                if breakpoints.contains(pc) {
                    return StopReason::Breakpoint { address: pc };
                }
            }
            if let Err(err) = self.step() {
                self.error = Some(err.clone());
                return StopReason::Error(err);
            }
        }
    }

    /// Run to completion or error without probing for breakpoints.
    fn run_unchecked(&mut self) -> StopReason {
        loop {
            if let Some(err) = &self.error {
                return StopReason::Error(err.clone());
            }
            if let Some(ret) = self.finished {
                return StopReason::Finished { return_value: ret };
            }
            if let Err(err) = self.step() {
                self.error = Some(err.clone());
                return StopReason::Error(err);
            }
        }
    }

    /// Run to completion ignoring breakpoints and produce the outcome.
    ///
    /// # Errors
    ///
    /// Returns the machine error if execution fails.
    pub fn run_to_completion(mut self) -> Result<RunOutcome, MachineError> {
        match self.run_unchecked() {
            StopReason::Finished { return_value } => {
                let final_globals = self.final_globals();
                Ok(RunOutcome {
                    sink_calls: self.sink_calls,
                    final_globals,
                    return_value,
                    steps: self.steps,
                })
            }
            StopReason::Error(err) => Err(err),
            StopReason::Breakpoint { .. } => unreachable!("no breakpoints were set"),
        }
    }

    /// Snapshot of all globals, per global id.
    pub fn final_globals(&self) -> Vec<Vec<i64>> {
        self.program
            .globals
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let offset = self.global_offsets[i];
                self.global_mem[offset..offset + g.elements].to_vec()
            })
            .collect()
    }

    /// Execute a single instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`MachineError`] if the instruction faults.
    pub fn step(&mut self) -> Result<(), MachineError> {
        self.steps += 1;
        if self.steps > self.fuel {
            return Err(MachineError::OutOfFuel);
        }
        let Some(frame) = self.frames.last() else {
            return Ok(());
        };
        let func_index = frame.function as usize;
        let pc = frame.pc as usize;
        // `program` outlives `self`'s borrows, so the instruction is read by
        // reference here instead of being cloned every step — a `Call`'s
        // operand vector alone made the old clone an allocation per call.
        let program = self.program;
        let func = &program.functions[func_index];
        let Some(inst) = func.code.get(pc) else {
            return Err(MachineError::FellOffEnd {
                function: func.name.clone(),
            });
        };
        let code_len = func.code.len();
        // Default: advance to next instruction; control flow overrides.
        self.frames.last_mut().expect("frame exists").pc = (pc + 1) as u32;
        match inst {
            MInst::Nop => {}
            MInst::LoadImm { dst, value } => self.write_reg(*dst, *value),
            MInst::Mov { dst, src } => {
                let v = self.operand(*src);
                self.write_reg(*dst, v);
            }
            MInst::Bin { op, dst, lhs, rhs } => {
                let l = self.operand(*lhs);
                let r = self.operand(*rhs);
                self.write_reg(*dst, op.eval(l, r));
            }
            MInst::Un { op, dst, src } => {
                let v = self.operand(*src);
                self.write_reg(*dst, op.eval(v));
            }
            MInst::Trunc { dst, bits, signed } => {
                let ty = width_to_ty(*bits, *signed);
                let v = self.read_reg_raw(*dst);
                self.write_reg(*dst, ty.wrap(v));
            }
            MInst::Load { dst, addr } => {
                let v = self.load(*addr)?;
                self.write_reg(*dst, v);
            }
            MInst::Store { addr, src } => {
                let v = self.operand(*src);
                self.store(*addr, v)?;
            }
            MInst::Lea { dst, addr } => {
                let a = self.effective_address(*addr)?;
                self.write_reg(*dst, a);
            }
            MInst::Jump { target } => self.branch(*target, code_len)?,
            MInst::BranchZero { cond, target } => {
                if self.read_reg_raw(*cond) == 0 {
                    self.branch(*target, code_len)?;
                }
            }
            MInst::BranchNonZero { cond, target } => {
                if self.read_reg_raw(*cond) != 0 {
                    self.branch(*target, code_len)?;
                }
            }
            MInst::Call { target, args, ret } => match target {
                CallTarget::Sink => {
                    // The recorded argument vector is the observable effect,
                    // so this allocation is the one the semantics require.
                    let values: Vec<i64> = args.iter().map(|a| self.operand(*a)).collect();
                    self.sink_calls.push(values);
                    if let Some(r) = ret {
                        self.write_reg(*r, 0);
                    }
                }
                CallTarget::Function(f) => {
                    // The callee receives at most NUM_REGS register
                    // arguments, so a fixed buffer replaces the old per-call
                    // Vec; operand reads are pure, so not evaluating excess
                    // arguments (which `push_frame` always dropped) is
                    // unobservable.
                    let count = args.len().min(NUM_REGS);
                    let mut values = [0i64; NUM_REGS];
                    for (slot, arg) in values.iter_mut().zip(args.iter()) {
                        *slot = self.operand(*arg);
                    }
                    self.push_frame(*f, &values[..count], *ret);
                }
            },
            MInst::Ret { value } => {
                let v = value.map_or(0, |op| self.operand(op));
                let frame = self.frames.pop().expect("ret with no frame");
                if let Some(caller) = self.frames.last_mut() {
                    if let Some(r) = frame.ret_reg {
                        caller.regs[r as usize] = v;
                    }
                } else {
                    self.finished = Some(v);
                }
            }
        }
        Ok(())
    }

    fn branch(&mut self, target: u32, code_len: usize) -> Result<(), MachineError> {
        if (target as usize) > code_len {
            return Err(MachineError::BadBranchTarget(target));
        }
        self.frames.last_mut().expect("branch with no frame").pc = target;
        Ok(())
    }

    fn operand(&self, op: Operand) -> i64 {
        match op {
            Operand::Reg(r) => self.read_reg_raw(r),
            Operand::Imm(v) => v,
            Operand::Slot(slot) => {
                let frame = self.frames.last().expect("no frame");
                self.stack_mem
                    .get(frame.slot_base + slot as usize)
                    .copied()
                    .unwrap_or(0)
            }
        }
    }

    fn read_reg_raw(&self, reg: Reg) -> i64 {
        self.frames.last().expect("no frame").regs[reg as usize]
    }

    fn write_reg(&mut self, reg: Reg, value: i64) {
        self.frames.last_mut().expect("no frame").regs[reg as usize] = value;
    }

    fn effective_address(&self, addr: MAddr) -> Result<i64, MachineError> {
        match addr {
            MAddr::Global {
                global,
                index,
                disp,
            } => {
                let base = self.program.global_base_address(global);
                let idx = index.map(|r| self.read_reg_raw(r)).unwrap_or(0);
                Ok(base + (idx + disp as i64) * 8)
            }
            MAddr::Frame { slot } => {
                let frame = self.frames.last().expect("no frame");
                if slot >= frame.slot_count {
                    return Err(MachineError::BadFrameSlot(slot));
                }
                Ok(STACK_BASE + (frame.slot_base + slot as usize) as i64 * 8)
            }
            MAddr::Indirect { reg } => Ok(self.read_reg_raw(reg)),
        }
    }

    fn load(&self, addr: MAddr) -> Result<i64, MachineError> {
        match addr {
            MAddr::Global {
                global,
                index,
                disp,
            } => {
                let idx = index.map(|r| self.read_reg_raw(r)).unwrap_or(0) + disp as i64;
                let size = self
                    .program
                    .globals
                    .get(global as usize)
                    .map(|g| g.elements)
                    .unwrap_or(0);
                if idx < 0 || idx as usize >= size {
                    return Err(MachineError::GlobalIndexOutOfRange {
                        global,
                        element: idx,
                    });
                }
                Ok(self.global_mem[self.global_offsets[global as usize] + idx as usize])
            }
            MAddr::Frame { slot } => {
                let frame = self.frames.last().expect("no frame");
                if slot >= frame.slot_count {
                    return Err(MachineError::BadFrameSlot(slot));
                }
                Ok(self.stack_mem[frame.slot_base + slot as usize])
            }
            MAddr::Indirect { reg } => {
                let address = self.read_reg_raw(reg);
                self.read_address(address)
                    .ok_or(MachineError::BadAddress(address))
            }
        }
    }

    fn store(&mut self, addr: MAddr, value: i64) -> Result<(), MachineError> {
        match addr {
            MAddr::Global {
                global,
                index,
                disp,
            } => {
                let idx = index.map(|r| self.read_reg_raw(r)).unwrap_or(0) + disp as i64;
                let slot = &self.program.globals[global as usize];
                if idx < 0 || idx as usize >= slot.elements {
                    return Err(MachineError::GlobalIndexOutOfRange {
                        global,
                        element: idx,
                    });
                }
                let ty = width_to_ty(slot.bits, slot.signed);
                self.global_mem[self.global_offsets[global as usize] + idx as usize] =
                    ty.wrap(value);
                Ok(())
            }
            MAddr::Frame { slot } => {
                let frame = self.frames.last().expect("no frame");
                if slot >= frame.slot_count {
                    return Err(MachineError::BadFrameSlot(slot));
                }
                let index = frame.slot_base + slot as usize;
                self.stack_mem[index] = value;
                Ok(())
            }
            MAddr::Indirect { reg } => {
                let address = self.read_reg_raw(reg);
                self.store_address(address, value)
            }
        }
    }

    fn store_address(&mut self, address: i64, value: i64) -> Result<(), MachineError> {
        if address >= STACK_BASE {
            let slot = ((address - STACK_BASE) / 8) as usize;
            if let Some(cell) = self.stack_mem.get_mut(slot) {
                *cell = value;
                return Ok(());
            }
            return Err(MachineError::BadAddress(address));
        }
        if address >= holes_minic::interp::GLOBAL_BASE {
            let elem = ((address - holes_minic::interp::GLOBAL_BASE) / 8) as usize;
            // Find which global owns the element so the store wraps correctly.
            for (i, g) in self.program.globals.iter().enumerate() {
                let offset = self.global_offsets[i];
                if elem >= offset && elem < offset + g.elements {
                    let ty = width_to_ty(g.bits, g.signed);
                    self.global_mem[elem] = ty.wrap(value);
                    return Ok(());
                }
            }
        }
        Err(MachineError::BadAddress(address))
    }
}

impl crate::vm::Vm for Machine<'_> {
    fn run(&mut self, breakpoints: &BreakpointSet) -> StopReason {
        Machine::run(self, breakpoints)
    }

    fn read_reg(&self, reg: Reg) -> i64 {
        Machine::read_reg(self, reg)
    }

    fn read_frame_slot(&self, slot: u32) -> Option<i64> {
        Machine::read_frame_slot(self, slot)
    }

    fn read_address(&self, address: i64) -> Option<i64> {
        Machine::read_address(self, address)
    }

    /// The active frame's base address: the stack address of its slot 0.
    /// Frame-base-relative location descriptions (`DW_OP_fbreg`-style, as the
    /// frame-ABI backend emits for spilled and callee-saved variables)
    /// resolve against this; default register-backend code never emits such
    /// descriptions, so for it the value is simply unused.
    fn frame_base(&self) -> Option<i64> {
        let frame = self.frames.last()?;
        Some(STACK_BASE + (frame.slot_base as i64) * 8)
    }
}

pub(crate) fn width_to_ty(bits: u32, signed: bool) -> holes_minic::ast::Ty {
    use holes_minic::ast::Ty;
    match (bits, signed) {
        (8, true) => Ty::I8,
        (16, true) => Ty::I16,
        (32, true) => Ty::I32,
        (8, false) => Ty::U8,
        (16, false) => Ty::U16,
        (32, false) => Ty::U32,
        (64, false) => Ty::U64,
        _ => Ty::I64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{GlobalSlot, MFunction, MachineProgram, TEXT_BASE};
    use holes_minic::ast::BinOp;

    fn one_function_program(code: Vec<MInst>, globals: Vec<GlobalSlot>) -> MachineProgram {
        MachineProgram {
            functions: vec![MFunction {
                name: "main".into(),
                code,
                frame_slots: 2,
                base_address: TEXT_BASE,
            }],
            globals,
            entry: 0,
        }
    }

    fn int_global(name: &str, init: i64) -> GlobalSlot {
        GlobalSlot {
            name: name.into(),
            elements: 1,
            init: vec![init],
            bits: 32,
            signed: true,
            volatile: false,
        }
    }

    #[test]
    fn arithmetic_and_return() {
        let prog = one_function_program(
            vec![
                MInst::LoadImm { dst: 0, value: 20 },
                MInst::LoadImm { dst: 1, value: 22 },
                MInst::Bin {
                    op: BinOp::Add,
                    dst: 2,
                    lhs: Operand::Reg(0),
                    rhs: Operand::Reg(1),
                },
                MInst::Ret {
                    value: Some(Operand::Reg(2)),
                },
            ],
            vec![],
        );
        let outcome = Machine::new(&prog).run_to_completion().unwrap();
        assert_eq!(outcome.return_value, 42);
        assert_eq!(outcome.steps, 4);
    }

    #[test]
    fn global_load_store_and_wrapping() {
        let prog = one_function_program(
            vec![
                MInst::LoadImm { dst: 0, value: 300 },
                MInst::Store {
                    addr: MAddr::Global {
                        global: 0,
                        index: None,
                        disp: 0,
                    },
                    src: Operand::Reg(0),
                },
                MInst::Load {
                    dst: 1,
                    addr: MAddr::Global {
                        global: 0,
                        index: None,
                        disp: 0,
                    },
                },
                MInst::Ret {
                    value: Some(Operand::Reg(1)),
                },
            ],
            vec![GlobalSlot {
                name: "g".into(),
                elements: 1,
                init: vec![0],
                bits: 8,
                signed: false,
                volatile: false,
            }],
        );
        let outcome = Machine::new(&prog).run_to_completion().unwrap();
        assert_eq!(outcome.return_value, 44);
        assert_eq!(outcome.final_globals, vec![vec![44]]);
    }

    #[test]
    fn loops_with_branches() {
        // sum = 0; for (i = 0; i < 5; i++) sum += i; return sum;
        let prog = one_function_program(
            vec![
                MInst::LoadImm { dst: 0, value: 0 }, // i
                MInst::LoadImm { dst: 1, value: 0 }, // sum
                // header (index 2)
                MInst::Bin {
                    op: BinOp::Lt,
                    dst: 2,
                    lhs: Operand::Reg(0),
                    rhs: Operand::Imm(5),
                },
                MInst::BranchZero { cond: 2, target: 7 },
                MInst::Bin {
                    op: BinOp::Add,
                    dst: 1,
                    lhs: Operand::Reg(1),
                    rhs: Operand::Reg(0),
                },
                MInst::Bin {
                    op: BinOp::Add,
                    dst: 0,
                    lhs: Operand::Reg(0),
                    rhs: Operand::Imm(1),
                },
                MInst::Jump { target: 2 },
                MInst::Ret {
                    value: Some(Operand::Reg(1)),
                },
            ],
            vec![],
        );
        let outcome = Machine::new(&prog).run_to_completion().unwrap();
        assert_eq!(outcome.return_value, 10);
    }

    #[test]
    fn sink_calls_are_recorded() {
        let prog = one_function_program(
            vec![
                MInst::LoadImm { dst: 0, value: 7 },
                MInst::Call {
                    target: CallTarget::Sink,
                    args: vec![Operand::Reg(0), Operand::Imm(9)],
                    ret: None,
                },
                MInst::Ret { value: None },
            ],
            vec![],
        );
        let outcome = Machine::new(&prog).run_to_completion().unwrap();
        assert_eq!(outcome.sink_calls, vec![vec![7, 9]]);
    }

    #[test]
    fn function_calls_pass_arguments_and_return() {
        let callee = MFunction {
            name: "add1".into(),
            code: vec![
                MInst::Bin {
                    op: BinOp::Add,
                    dst: 0,
                    lhs: Operand::Reg(0),
                    rhs: Operand::Imm(1),
                },
                MInst::Ret {
                    value: Some(Operand::Reg(0)),
                },
            ],
            frame_slots: 0,
            base_address: MachineProgram::default_base_address(1),
        };
        let main = MFunction {
            name: "main".into(),
            code: vec![
                MInst::Call {
                    target: CallTarget::Function(1),
                    args: vec![Operand::Imm(41)],
                    ret: Some(3),
                },
                MInst::Ret {
                    value: Some(Operand::Reg(3)),
                },
            ],
            frame_slots: 0,
            base_address: MachineProgram::default_base_address(0),
        };
        let prog = MachineProgram {
            functions: vec![main, callee],
            globals: vec![],
            entry: 0,
        };
        let outcome = Machine::new(&prog).run_to_completion().unwrap();
        assert_eq!(outcome.return_value, 42);
    }

    #[test]
    fn breakpoints_stop_before_execution() {
        let prog = one_function_program(
            vec![
                MInst::LoadImm { dst: 0, value: 1 },
                MInst::LoadImm { dst: 1, value: 2 },
                MInst::Ret {
                    value: Some(Operand::Reg(1)),
                },
            ],
            vec![],
        );
        let mut machine = Machine::new(&prog);
        let mut breaks = BreakpointSet::new();
        breaks.insert(TEXT_BASE + 1);
        match machine.run(&breaks) {
            StopReason::Breakpoint { address } => assert_eq!(address, TEXT_BASE + 1),
            other => panic!("expected breakpoint, got {other:?}"),
        }
        assert_eq!(machine.read_reg(0), 1);
        assert_eq!(
            machine.read_reg(1),
            0,
            "instruction at breakpoint not yet executed"
        );
        // Resume without the breakpoint.
        breaks.remove(TEXT_BASE + 1);
        match machine.run(&breaks) {
            StopReason::Finished { return_value } => assert_eq!(return_value, 2),
            other => panic!("expected finish, got {other:?}"),
        }
    }

    #[test]
    fn lea_and_indirect_access() {
        let prog = one_function_program(
            vec![
                MInst::Lea {
                    dst: 0,
                    addr: MAddr::Global {
                        global: 0,
                        index: None,
                        disp: 0,
                    },
                },
                MInst::Store {
                    addr: MAddr::Indirect { reg: 0 },
                    src: Operand::Imm(55),
                },
                MInst::Load {
                    dst: 1,
                    addr: MAddr::Indirect { reg: 0 },
                },
                MInst::Ret {
                    value: Some(Operand::Reg(1)),
                },
            ],
            vec![int_global("g", 3)],
        );
        let outcome = Machine::new(&prog).run_to_completion().unwrap();
        assert_eq!(outcome.return_value, 55);
        assert_eq!(outcome.final_globals, vec![vec![55]]);
    }

    #[test]
    fn frame_slots_are_addressable() {
        let prog = one_function_program(
            vec![
                MInst::Store {
                    addr: MAddr::Frame { slot: 1 },
                    src: Operand::Imm(13),
                },
                MInst::Lea {
                    dst: 0,
                    addr: MAddr::Frame { slot: 1 },
                },
                MInst::Load {
                    dst: 2,
                    addr: MAddr::Indirect { reg: 0 },
                },
                MInst::Ret {
                    value: Some(Operand::Reg(2)),
                },
            ],
            vec![],
        );
        let outcome = Machine::new(&prog).run_to_completion().unwrap();
        assert_eq!(outcome.return_value, 13);
    }

    #[test]
    fn out_of_fuel_is_reported() {
        let prog = one_function_program(vec![MInst::Jump { target: 0 }], vec![]);
        let err = Machine::with_fuel(&prog, 100)
            .run_to_completion()
            .unwrap_err();
        assert_eq!(err, MachineError::OutOfFuel);
    }

    #[test]
    fn out_of_bounds_global_index_is_reported() {
        let prog = one_function_program(
            vec![
                MInst::LoadImm { dst: 0, value: 5 },
                MInst::Load {
                    dst: 1,
                    addr: MAddr::Global {
                        global: 0,
                        index: Some(0),
                        disp: 0,
                    },
                },
                MInst::Ret { value: None },
            ],
            vec![int_global("g", 0)],
        );
        let err = Machine::new(&prog).run_to_completion().unwrap_err();
        assert!(matches!(err, MachineError::GlobalIndexOutOfRange { .. }));
    }
}
