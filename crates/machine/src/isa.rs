//! Instruction set and program container for the register VM.

use holes_minic::ast::{BinOp, UnOp};

/// Number of general-purpose registers in a frame.
pub const NUM_REGS: usize = 12;

/// Base address of the text (code) segment.
pub const TEXT_BASE: u64 = 0x0040_0000;

/// Address stride between consecutive functions: each function occupies at
/// most this many instruction slots.
pub const FUNCTION_STRIDE: u64 = 0x1000;

/// A register index (0 .. [`NUM_REGS`]).
pub type Reg = u8;

/// Either a register, an immediate, or a frame-slot operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Register operand.
    Reg(Reg),
    /// Immediate operand.
    Imm(i64),
    /// Frame-slot operand (spilled values, mostly used for call arguments).
    Slot(u32),
}

/// A memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MAddr {
    /// Element of a global: the address is
    /// `global_base(index) + (index_reg? * 8) + disp * 8`.
    Global {
        /// Index of the global in the program's global table.
        global: u32,
        /// Optional register holding a flattened element index.
        index: Option<Reg>,
        /// Constant element displacement.
        disp: u32,
    },
    /// A slot of the current frame (address-taken locals and spills).
    Frame {
        /// Slot index within the frame.
        slot: u32,
    },
    /// The address is held in a register (pointer dereference).
    Indirect {
        /// Register holding the absolute address.
        reg: Reg,
    },
}

/// Target of a call instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallTarget {
    /// A function of the same program, by index.
    Function(u32),
    /// The opaque external sink: records its arguments as an observable
    /// effect and returns 0.
    Sink,
}

/// One machine instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MInst {
    /// `dst <- imm`.
    LoadImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: i64,
    },
    /// `dst <- src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst <- lhs <op> rhs` (wrapping arithmetic, comparisons yield 0/1).
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst <- <op> src`.
    Un {
        /// Operator.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Operand.
        src: Operand,
    },
    /// Truncate `dst` in place to `bits`, sign- or zero-extending.
    Trunc {
        /// Register truncated in place.
        dst: Reg,
        /// Width in bits.
        bits: u32,
        /// Whether to sign-extend.
        signed: bool,
    },
    /// `dst <- memory[addr]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Memory address.
        addr: MAddr,
    },
    /// `memory[addr] <- src`.
    Store {
        /// Memory address.
        addr: MAddr,
        /// Stored operand.
        src: Operand,
    },
    /// `dst <- address-of(addr)`.
    Lea {
        /// Destination register.
        dst: Reg,
        /// Memory address whose absolute value is computed.
        addr: MAddr,
    },
    /// Unconditional branch to a local instruction index.
    Jump {
        /// Target instruction index within the same function.
        target: u32,
    },
    /// Branch to `target` when the register is zero.
    BranchZero {
        /// Condition register.
        cond: Reg,
        /// Target instruction index within the same function.
        target: u32,
    },
    /// Branch to `target` when the register is non-zero.
    BranchNonZero {
        /// Condition register.
        cond: Reg,
        /// Target instruction index within the same function.
        target: u32,
    },
    /// Call a function or the sink. Arguments are passed as operands and
    /// received by the callee in registers `0..args.len()`.
    Call {
        /// Call target.
        target: CallTarget,
        /// Argument operands, evaluated in the caller's frame.
        args: Vec<Operand>,
        /// Register receiving the return value, if used.
        ret: Option<Reg>,
    },
    /// Return from the current function.
    Ret {
        /// Returned operand, if any.
        value: Option<Operand>,
    },
    /// No operation (used by passes to blank out instructions without
    /// renumbering).
    Nop,
}

/// A compiled function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MFunction {
    /// Function name.
    pub name: String,
    /// Instructions.
    pub code: Vec<MInst>,
    /// Number of frame slots (address-taken locals and spills).
    pub frame_slots: u32,
    /// Base code address of the function.
    pub base_address: u64,
}

impl MFunction {
    /// The code address of instruction `index`.
    pub fn address_of(&self, index: usize) -> u64 {
        self.base_address + index as u64
    }

    /// The `[low, high)` address range of the function.
    pub fn pc_range(&self) -> (u64, u64) {
        (
            self.base_address,
            self.base_address + self.code.len() as u64,
        )
    }
}

/// A global variable as laid out in the VM's data segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalSlot {
    /// Name (for diagnostics).
    pub name: String,
    /// Number of scalar elements.
    pub elements: usize,
    /// Initial values (length `elements`).
    pub init: Vec<i64>,
    /// Bit width of each element.
    pub bits: u32,
    /// Whether elements are signed.
    pub signed: bool,
    /// Whether the global is volatile.
    pub volatile: bool,
}

/// Base data address of global `index` in a global table laid out flat, as
/// both backends and the MiniC reference interpreter lay it out (so pointer
/// values observable through the opaque sink agree everywhere).
pub fn global_base_address(globals: &[GlobalSlot], index: u32) -> i64 {
    let mut offset = 0i64;
    for g in &globals[..index as usize] {
        offset += g.elements as i64;
    }
    holes_minic::interp::GLOBAL_BASE + offset * 8
}

/// A complete machine program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineProgram {
    /// Functions; `entry` indexes into this vector.
    pub functions: Vec<MFunction>,
    /// Globals.
    pub globals: Vec<GlobalSlot>,
    /// Index of the entry function (`main`).
    pub entry: u32,
}

impl MachineProgram {
    /// Compute the default base address for function `index`.
    pub fn default_base_address(index: usize) -> u64 {
        TEXT_BASE + index as u64 * FUNCTION_STRIDE
    }

    /// Find the function containing a code address.
    pub fn function_at(&self, address: u64) -> Option<(u32, &MFunction)> {
        self.functions.iter().enumerate().find_map(|(i, f)| {
            let (lo, hi) = f.pc_range();
            if lo <= address && address < hi {
                Some((i as u32, f))
            } else {
                None
            }
        })
    }

    /// Base data address of global `index` (shares the scheme of the MiniC
    /// reference interpreter so pointer values agree).
    pub fn global_base_address(&self, index: u32) -> i64 {
        global_base_address(&self.globals, index)
    }

    /// Total number of instructions.
    pub fn instruction_count(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_address_ranges() {
        let f = MFunction {
            name: "main".into(),
            code: vec![MInst::Nop, MInst::Ret { value: None }],
            frame_slots: 0,
            base_address: TEXT_BASE,
        };
        assert_eq!(f.address_of(1), TEXT_BASE + 1);
        assert_eq!(f.pc_range(), (TEXT_BASE, TEXT_BASE + 2));
    }

    #[test]
    fn function_lookup_by_address() {
        let prog = MachineProgram {
            functions: vec![
                MFunction {
                    name: "a".into(),
                    code: vec![MInst::Ret { value: None }],
                    frame_slots: 0,
                    base_address: MachineProgram::default_base_address(0),
                },
                MFunction {
                    name: "b".into(),
                    code: vec![MInst::Nop, MInst::Ret { value: None }],
                    frame_slots: 0,
                    base_address: MachineProgram::default_base_address(1),
                },
            ],
            globals: vec![],
            entry: 0,
        };
        assert_eq!(prog.function_at(TEXT_BASE).map(|(i, _)| i), Some(0));
        assert_eq!(
            prog.function_at(TEXT_BASE + FUNCTION_STRIDE + 1)
                .map(|(i, _)| i),
            Some(1)
        );
        assert_eq!(prog.function_at(TEXT_BASE + 500), None);
    }

    #[test]
    fn global_base_addresses_are_cumulative() {
        let prog = MachineProgram {
            functions: vec![],
            globals: vec![
                GlobalSlot {
                    name: "g0".into(),
                    elements: 3,
                    init: vec![0, 0, 0],
                    bits: 32,
                    signed: true,
                    volatile: false,
                },
                GlobalSlot {
                    name: "g1".into(),
                    elements: 1,
                    init: vec![0],
                    bits: 32,
                    signed: true,
                    volatile: false,
                },
            ],
            entry: 0,
        };
        let base0 = prog.global_base_address(0);
        let base1 = prog.global_base_address(1);
        assert_eq!(base1 - base0, 24);
        assert_eq!(base0, holes_minic::interp::GLOBAL_BASE);
    }
}
