//! The reproduction's simulated execution targets: a register VM and a
//! stack VM behind one stepper interface.
//!
//! The paper compiles its test programs for x86_64 and runs them under a
//! debugger. Our optimizing compiler targets one of two simulated machine
//! models instead ([`BackendKind`] selects; [`MachineCode`] holds either
//! program and spawns the matching [`Vm`] stepper):
//!
//! * the **register VM** ([`exec`]) — the default backend, a register
//!   machine as described below;
//! * the **stack VM** ([`stack`]) — an operand-stack ISA with a small
//!   register file plus spill slots, whose codegen must describe most
//!   variables through stack-relative and composite location descriptions
//!   the register ISA cannot express.
//!
//! The register machine has
//!
//! * [`NUM_REGS`] general-purpose registers per frame,
//! * per-function stack frames with addressable slots,
//! * a flat global memory segment shared with the MiniC reference
//!   interpreter's address scheme (so pointer values observable through the
//!   opaque `sink` call agree between the two),
//! * a `sink` pseudo-call that records its arguments (the opaque external
//!   function the paper links against its test programs).
//!
//! The VM supports single-stepping, address-based breakpoints and full state
//! inspection, which is what the source-level debugger in `holes-debugger`
//! drives.

#![forbid(unsafe_code)]

pub mod backend;
pub mod breakpoints;
pub mod exec;
pub mod isa;
pub mod stack;
pub mod vm;

pub use backend::{BackendKind, MachineCode};
pub use breakpoints::BreakpointSet;
pub use exec::{Machine, MachineError, RunOutcome, StopReason};
pub use isa::{
    CallTarget, GlobalSlot, MAddr, MFunction, MInst, MachineProgram, Operand, Reg, FUNCTION_STRIDE,
    NUM_REGS, TEXT_BASE,
};
pub use stack::{SFunction, SInst, StackMachine, StackProgram, FP_REG, STACK_NUM_REGS};
pub use vm::{MachineRead, Vm};
