//! A small register virtual machine — the reproduction's execution target.
//!
//! The paper compiles its test programs for x86_64 and runs them under a
//! debugger. Our optimizing compiler targets this VM instead: a register
//! machine with
//!
//! * [`NUM_REGS`] general-purpose registers per frame,
//! * per-function stack frames with addressable slots,
//! * a flat global memory segment shared with the MiniC reference
//!   interpreter's address scheme (so pointer values observable through the
//!   opaque `sink` call agree between the two),
//! * a `sink` pseudo-call that records its arguments (the opaque external
//!   function the paper links against its test programs).
//!
//! The VM supports single-stepping, address-based breakpoints and full state
//! inspection, which is what the source-level debugger in `holes-debugger`
//! drives.

#![forbid(unsafe_code)]

pub mod breakpoints;
pub mod exec;
pub mod isa;

pub use breakpoints::BreakpointSet;
pub use exec::{Machine, MachineError, RunOutcome, StopReason};
pub use isa::{
    CallTarget, GlobalSlot, MAddr, MFunction, MInst, MachineProgram, Operand, Reg, FUNCTION_STRIDE,
    NUM_REGS, TEXT_BASE,
};
