//! The stack VM: the second simulated backend.
//!
//! Where the register VM ([`crate::exec`]) models a three-address machine
//! with a comfortable register file, this machine models the opposite end
//! of the design space: expressions are evaluated on a per-frame **operand
//! stack**, and the register file is tiny — [`STACK_NUM_REGS`] registers,
//! one of which ([`FP_REG`]) is the frame pointer maintained by the machine
//! itself. Almost every named value therefore lives in a **frame slot**
//! reached through the frame pointer, which is exactly what forces the
//! compiler's stack backend to emit stack-relative (`FrameBase`) and
//! composite (register + offset + dereference) location descriptions that
//! the register ISA can never produce — the new defect surface this
//! backend exists to open (spill-induced "variable went missing" holes,
//! per the paper's §2 taxonomy).
//!
//! The memory model is shared with the register VM and the MiniC reference
//! interpreter: the same global segment layout and the same
//! `STACK_BASE`-relative frame-slot addresses, so pointer values observable
//! through the opaque sink agree across all three.

use holes_minic::interp::{ExecOutcome, STACK_BASE};

use crate::breakpoints::BreakpointSet;
use crate::exec::{width_to_ty, MachineError, RunOutcome, StopReason, DEFAULT_FUEL};
use crate::isa::{global_base_address, CallTarget, GlobalSlot, FUNCTION_STRIDE, TEXT_BASE};
use crate::vm::Vm;
use holes_minic::ast::{BinOp, UnOp};

/// Number of registers in a stack-VM frame (including the frame pointer).
pub const STACK_NUM_REGS: usize = 4;

/// The frame-pointer register: holds the absolute address of the current
/// frame's slot 0. Maintained by the machine on every frame push; no
/// instruction ever writes it.
pub const FP_REG: u8 = (STACK_NUM_REGS - 1) as u8;

/// One stack-VM instruction. The operand stack grows rightward in the
/// comments: `a b -- a+b` pops `b` then `a` and pushes the sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SInst {
    /// `-- imm`.
    PushImm(i64),
    /// `-- reg`.
    PushReg(u8),
    /// `v --` into a register.
    PopReg(u8),
    /// `-- slot` (frame slot value).
    PushSlot(u32),
    /// `v --` into a frame slot.
    PopSlot(u32),
    /// `v --` discarded.
    Drop,
    /// `a b -- a<op>b` (wrapping arithmetic, comparisons yield 0/1).
    Bin(BinOp),
    /// `a -- <op>a`.
    Un(UnOp),
    /// `a -- wrap(a)` to the given width, in place.
    Trunc {
        /// Width in bits.
        bits: u32,
        /// Whether the wrap sign-extends.
        signed: bool,
    },
    /// `[index] -- value`: load a global element (index popped when
    /// `indexed`, else element 0).
    LoadGlobal {
        /// Index of the global in the program's global table.
        global: u32,
        /// Whether an element index is popped from the stack.
        indexed: bool,
    },
    /// `[index] value --`: store to a global element (value popped first,
    /// then the index when `indexed`).
    StoreGlobal {
        /// Index of the global in the program's global table.
        global: u32,
        /// Whether an element index is popped from the stack.
        indexed: bool,
    },
    /// `addr -- mem[addr]` (pointer dereference).
    LoadInd,
    /// `addr value --`: store through a pointer (value popped first).
    StoreInd,
    /// `-- &global` (absolute data address of element 0).
    PushGlobalAddr {
        /// Index of the global in the program's global table.
        global: u32,
    },
    /// `-- &slot` (absolute address of a frame slot).
    PushSlotAddr(u32),
    /// Unconditional branch to a local instruction index.
    Jump {
        /// Target instruction index within the same function.
        target: u32,
    },
    /// `cond --`; branch when zero.
    BranchZero {
        /// Target instruction index within the same function.
        target: u32,
    },
    /// `cond --`; branch when non-zero.
    BranchNonZero {
        /// Target instruction index within the same function.
        target: u32,
    },
    /// `arg0 .. argN-1 -- [ret]`: pop `argc` arguments (pushed in order),
    /// call a function or the sink; when `has_ret`, the return value is
    /// pushed onto the caller's operand stack.
    Call {
        /// Call target.
        target: CallTarget,
        /// Number of arguments popped.
        argc: u32,
        /// Whether the caller consumes the return value.
        has_ret: bool,
    },
    /// Return from the current function (`value --` when `has_value`).
    Ret {
        /// Whether a return value is popped.
        has_value: bool,
    },
    /// No operation.
    Nop,
}

/// A compiled stack-VM function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SFunction {
    /// Function name.
    pub name: String,
    /// Instructions.
    pub code: Vec<SInst>,
    /// Number of frame slots (named slots, the parameter area, and spills).
    pub frame_slots: u32,
    /// First slot of the parameter area: the machine deposits argument `i`
    /// into slot `param_base + i` (and, for `i < FP_REG`, also into
    /// register `i`).
    pub param_base: u32,
    /// Base code address of the function.
    pub base_address: u64,
}

impl SFunction {
    /// The code address of instruction `index`.
    pub fn address_of(&self, index: usize) -> u64 {
        self.base_address + index as u64
    }

    /// The `[low, high)` address range of the function.
    pub fn pc_range(&self) -> (u64, u64) {
        (
            self.base_address,
            self.base_address + self.code.len() as u64,
        )
    }
}

/// A complete stack-VM program. Shares the code- and data-address scheme of
/// the register VM ([`crate::isa::MachineProgram`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackProgram {
    /// Functions; `entry` indexes into this vector.
    pub functions: Vec<SFunction>,
    /// Globals (same layout as the register VM and the reference
    /// interpreter).
    pub globals: Vec<GlobalSlot>,
    /// Index of the entry function (`main`).
    pub entry: u32,
}

impl StackProgram {
    /// Compute the default base address for function `index` (same scheme
    /// as the register VM).
    pub fn default_base_address(index: usize) -> u64 {
        TEXT_BASE + index as u64 * FUNCTION_STRIDE
    }

    /// Base data address of global `index`.
    pub fn global_base_address(&self, index: u32) -> i64 {
        global_base_address(&self.globals, index)
    }

    /// Total number of instructions.
    pub fn instruction_count(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }
}

/// One stack-VM call frame.
#[derive(Debug, Clone)]
struct SFrame {
    function: u32,
    pc: u32,
    regs: [i64; STACK_NUM_REGS],
    /// The per-frame operand (evaluation) stack. Statement boundaries leave
    /// it empty, so breakpoints never observe a value in flight.
    eval: Vec<i64>,
    slot_base: usize,
    slot_count: u32,
    /// Whether the caller's `Call` consumes the return value.
    ret_push: bool,
}

/// The stack virtual machine.
#[derive(Debug)]
pub struct StackMachine<'p> {
    program: &'p StackProgram,
    global_mem: Vec<i64>,
    global_offsets: Vec<usize>,
    stack_mem: Vec<i64>,
    frames: Vec<SFrame>,
    sink_calls: Vec<Vec<i64>>,
    steps: u64,
    fuel: u64,
    finished: Option<i64>,
    error: Option<MachineError>,
}

impl<'p> StackMachine<'p> {
    /// Create a machine ready to execute `program` from its entry function.
    pub fn new(program: &'p StackProgram) -> StackMachine<'p> {
        StackMachine::with_fuel(program, DEFAULT_FUEL)
    }

    /// Create a machine with an explicit step budget.
    pub fn with_fuel(program: &'p StackProgram, fuel: u64) -> StackMachine<'p> {
        let mut global_mem = Vec::new();
        let mut global_offsets = Vec::with_capacity(program.globals.len());
        for g in &program.globals {
            global_offsets.push(global_mem.len());
            global_mem.extend_from_slice(&g.init);
        }
        let mut machine = StackMachine {
            program,
            global_mem,
            global_offsets,
            stack_mem: Vec::new(),
            frames: Vec::new(),
            sink_calls: Vec::new(),
            steps: 0,
            fuel,
            finished: None,
            error: None,
        };
        machine.push_frame(program.entry, &[], false);
        machine
    }

    fn push_frame(&mut self, function: u32, args: &[i64], ret_push: bool) {
        let func = &self.program.functions[function as usize];
        let slot_base = self.stack_mem.len();
        self.stack_mem
            .extend(std::iter::repeat_n(0, func.frame_slots as usize));
        let mut regs = [0i64; STACK_NUM_REGS];
        regs[FP_REG as usize] = STACK_BASE + slot_base as i64 * 8;
        for (i, &arg) in args.iter().enumerate() {
            if i < FP_REG as usize {
                regs[i] = arg;
            }
            let slot = func.param_base as usize + i;
            if slot < func.frame_slots as usize {
                self.stack_mem[slot_base + slot] = arg;
            }
        }
        self.frames.push(SFrame {
            function,
            pc: 0,
            regs,
            eval: Vec::new(),
            slot_base,
            slot_count: func.frame_slots,
            ret_push,
        });
    }

    /// The code address about to be executed, if the machine is still
    /// running.
    pub fn pc_address(&self) -> Option<u64> {
        let frame = self.frames.last()?;
        let func = &self.program.functions[frame.function as usize];
        Some(func.address_of(frame.pc as usize))
    }

    /// Whether the program finished.
    pub fn is_finished(&self) -> bool {
        self.finished.is_some() || self.error.is_some()
    }

    /// Depth of the call stack.
    pub fn frame_depth(&self) -> usize {
        self.frames.len()
    }

    /// Depth of the current frame's operand stack (statement boundaries
    /// leave it at zero).
    pub fn eval_depth(&self) -> usize {
        self.frames.last().map_or(0, |f| f.eval.len())
    }

    /// Arguments recorded by sink calls so far.
    pub fn sink_calls(&self) -> &[Vec<i64>] {
        &self.sink_calls
    }

    /// Run to completion ignoring breakpoints and produce the outcome.
    ///
    /// # Errors
    ///
    /// Returns the machine error if execution fails.
    pub fn run_to_completion(mut self) -> Result<RunOutcome, MachineError> {
        match self.run_unchecked() {
            StopReason::Finished { return_value } => {
                let final_globals = self.final_globals();
                Ok(RunOutcome {
                    sink_calls: self.sink_calls,
                    final_globals,
                    return_value,
                    steps: self.steps,
                })
            }
            StopReason::Error(err) => Err(err),
            StopReason::Breakpoint { .. } => unreachable!("no breakpoints were set"),
        }
    }

    /// Run to completion and compare against the reference interpreter's
    /// outcome (convenience for differential tests).
    ///
    /// # Errors
    ///
    /// Returns the machine error if execution fails.
    pub fn matches_reference(self, reference: &ExecOutcome) -> Result<bool, MachineError> {
        Ok(self.run_to_completion()?.matches(reference))
    }

    /// Snapshot of all globals, per global id.
    pub fn final_globals(&self) -> Vec<Vec<i64>> {
        self.program
            .globals
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let offset = self.global_offsets[i];
                self.global_mem[offset..offset + g.elements].to_vec()
            })
            .collect()
    }

    fn run_unchecked(&mut self) -> StopReason {
        loop {
            if let Some(err) = &self.error {
                return StopReason::Error(err.clone());
            }
            if let Some(ret) = self.finished {
                return StopReason::Finished { return_value: ret };
            }
            if let Err(err) = self.step() {
                self.error = Some(err.clone());
                return StopReason::Error(err);
            }
        }
    }

    fn frame(&self) -> &SFrame {
        self.frames.last().expect("stack machine has no frame")
    }

    fn frame_mut(&mut self) -> &mut SFrame {
        self.frames.last_mut().expect("stack machine has no frame")
    }

    fn pop(&mut self) -> Result<i64, MachineError> {
        self.frame_mut()
            .eval
            .pop()
            .ok_or(MachineError::EvalStackUnderflow)
    }

    fn push(&mut self, value: i64) {
        self.frame_mut().eval.push(value);
    }

    fn slot_index(&self, slot: u32) -> Result<usize, MachineError> {
        let frame = self.frame();
        if slot >= frame.slot_count {
            return Err(MachineError::BadFrameSlot(slot));
        }
        Ok(frame.slot_base + slot as usize)
    }

    fn read_memory(&self, address: i64) -> Option<i64> {
        if address >= STACK_BASE {
            let slot = ((address - STACK_BASE) / 8) as usize;
            self.stack_mem.get(slot).copied()
        } else if address >= holes_minic::interp::GLOBAL_BASE {
            let elem = ((address - holes_minic::interp::GLOBAL_BASE) / 8) as usize;
            self.global_mem.get(elem).copied()
        } else {
            None
        }
    }

    fn store_memory(&mut self, address: i64, value: i64) -> Result<(), MachineError> {
        if address >= STACK_BASE {
            let slot = ((address - STACK_BASE) / 8) as usize;
            if let Some(cell) = self.stack_mem.get_mut(slot) {
                *cell = value;
                return Ok(());
            }
            return Err(MachineError::BadAddress(address));
        }
        if address >= holes_minic::interp::GLOBAL_BASE {
            let elem = ((address - holes_minic::interp::GLOBAL_BASE) / 8) as usize;
            for (i, g) in self.program.globals.iter().enumerate() {
                let offset = self.global_offsets[i];
                if elem >= offset && elem < offset + g.elements {
                    let ty = width_to_ty(g.bits, g.signed);
                    self.global_mem[elem] = ty.wrap(value);
                    return Ok(());
                }
            }
        }
        Err(MachineError::BadAddress(address))
    }

    fn global_element(&mut self, global: u32, indexed: bool) -> Result<(usize, u32), MachineError> {
        let idx = if indexed { self.pop()? } else { 0 };
        let size = self
            .program
            .globals
            .get(global as usize)
            .map(|g| g.elements)
            .unwrap_or(0);
        if idx < 0 || idx as usize >= size {
            return Err(MachineError::GlobalIndexOutOfRange {
                global,
                element: idx,
            });
        }
        Ok((self.global_offsets[global as usize] + idx as usize, global))
    }

    fn branch(&mut self, target: u32, code_len: usize) -> Result<(), MachineError> {
        if (target as usize) > code_len {
            return Err(MachineError::BadBranchTarget(target));
        }
        self.frame_mut().pc = target;
        Ok(())
    }

    /// Execute a single instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`MachineError`] if the instruction faults.
    pub fn step(&mut self) -> Result<(), MachineError> {
        self.steps += 1;
        if self.steps > self.fuel {
            return Err(MachineError::OutOfFuel);
        }
        let Some(frame) = self.frames.last() else {
            return Ok(());
        };
        let func = &self.program.functions[frame.function as usize];
        let pc = frame.pc as usize;
        let Some(&inst) = func.code.get(pc) else {
            return Err(MachineError::FellOffEnd {
                function: func.name.clone(),
            });
        };
        let code_len = func.code.len();
        self.frame_mut().pc = (pc + 1) as u32;
        match inst {
            SInst::Nop => {}
            SInst::PushImm(v) => self.push(v),
            SInst::PushReg(r) => {
                let v = self.frame().regs[r as usize];
                self.push(v);
            }
            SInst::PopReg(r) => {
                let v = self.pop()?;
                self.frame_mut().regs[r as usize] = v;
            }
            SInst::PushSlot(slot) => {
                let index = self.slot_index(slot)?;
                let v = self.stack_mem[index];
                self.push(v);
            }
            SInst::PopSlot(slot) => {
                let index = self.slot_index(slot)?;
                let v = self.pop()?;
                self.stack_mem[index] = v;
            }
            SInst::Drop => {
                self.pop()?;
            }
            SInst::Bin(op) => {
                let rhs = self.pop()?;
                let lhs = self.pop()?;
                self.push(op.eval(lhs, rhs));
            }
            SInst::Un(op) => {
                let v = self.pop()?;
                self.push(op.eval(v));
            }
            SInst::Trunc { bits, signed } => {
                let v = self.pop()?;
                self.push(width_to_ty(bits, signed).wrap(v));
            }
            SInst::LoadGlobal { global, indexed } => {
                let (element, _) = self.global_element(global, indexed)?;
                let v = self.global_mem[element];
                self.push(v);
            }
            SInst::StoreGlobal { global, indexed } => {
                let value = self.pop()?;
                let (element, global) = self.global_element(global, indexed)?;
                let slot = &self.program.globals[global as usize];
                let ty = width_to_ty(slot.bits, slot.signed);
                self.global_mem[element] = ty.wrap(value);
            }
            SInst::LoadInd => {
                let address = self.pop()?;
                let v = self
                    .read_memory(address)
                    .ok_or(MachineError::BadAddress(address))?;
                self.push(v);
            }
            SInst::StoreInd => {
                let value = self.pop()?;
                let address = self.pop()?;
                self.store_memory(address, value)?;
            }
            SInst::PushGlobalAddr { global } => {
                let address = self.program.global_base_address(global);
                self.push(address);
            }
            SInst::PushSlotAddr(slot) => {
                let index = self.slot_index(slot)?;
                self.push(STACK_BASE + index as i64 * 8);
            }
            SInst::Jump { target } => self.branch(target, code_len)?,
            SInst::BranchZero { target } => {
                if self.pop()? == 0 {
                    self.branch(target, code_len)?;
                }
            }
            SInst::BranchNonZero { target } => {
                if self.pop()? != 0 {
                    self.branch(target, code_len)?;
                }
            }
            SInst::Call {
                target,
                argc,
                has_ret,
            } => {
                let mut args = vec![0i64; argc as usize];
                for slot in args.iter_mut().rev() {
                    *slot = self.pop()?;
                }
                match target {
                    CallTarget::Sink => {
                        self.sink_calls.push(args);
                        if has_ret {
                            self.push(0);
                        }
                    }
                    CallTarget::Function(f) => self.push_frame(f, &args, has_ret),
                }
            }
            SInst::Ret { has_value } => {
                let value = if has_value { self.pop()? } else { 0 };
                let frame = self.frames.pop().expect("ret with no frame");
                if let Some(caller) = self.frames.last_mut() {
                    if frame.ret_push {
                        caller.eval.push(value);
                    }
                } else {
                    self.finished = Some(value);
                }
            }
        }
        Ok(())
    }
}

impl Vm for StackMachine<'_> {
    fn run(&mut self, breakpoints: &BreakpointSet) -> StopReason {
        if breakpoints.is_empty() {
            return self.run_unchecked();
        }
        loop {
            if let Some(err) = &self.error {
                return StopReason::Error(err.clone());
            }
            if let Some(ret) = self.finished {
                return StopReason::Finished { return_value: ret };
            }
            if let Some(pc) = self.pc_address() {
                if breakpoints.contains(pc) {
                    return StopReason::Breakpoint { address: pc };
                }
            }
            if let Err(err) = self.step() {
                self.error = Some(err.clone());
                return StopReason::Error(err);
            }
        }
    }

    fn read_reg(&self, reg: u8) -> i64 {
        self.frame().regs[reg as usize]
    }

    fn read_frame_slot(&self, slot: u32) -> Option<i64> {
        let frame = self.frames.last()?;
        if slot >= frame.slot_count {
            return None;
        }
        self.stack_mem.get(frame.slot_base + slot as usize).copied()
    }

    fn read_address(&self, address: i64) -> Option<i64> {
        self.read_memory(address)
    }

    fn frame_base(&self) -> Option<i64> {
        let frame = self.frames.last()?;
        Some(STACK_BASE + frame.slot_base as i64 * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_function_program(code: Vec<SInst>, globals: Vec<GlobalSlot>) -> StackProgram {
        StackProgram {
            functions: vec![SFunction {
                name: "main".into(),
                code,
                frame_slots: 4,
                param_base: 2,
                base_address: TEXT_BASE,
            }],
            globals,
            entry: 0,
        }
    }

    fn int_global(name: &str, init: i64) -> GlobalSlot {
        GlobalSlot {
            name: name.into(),
            elements: 1,
            init: vec![init],
            bits: 32,
            signed: true,
            volatile: false,
        }
    }

    #[test]
    fn arithmetic_on_the_operand_stack() {
        let prog = one_function_program(
            vec![
                SInst::PushImm(20),
                SInst::PushImm(22),
                SInst::Bin(BinOp::Add),
                SInst::Ret { has_value: true },
            ],
            vec![],
        );
        let outcome = StackMachine::new(&prog).run_to_completion().unwrap();
        assert_eq!(outcome.return_value, 42);
        assert_eq!(outcome.steps, 4);
    }

    #[test]
    fn globals_wrap_to_their_declared_width() {
        let prog = one_function_program(
            vec![
                SInst::PushImm(300),
                SInst::StoreGlobal {
                    global: 0,
                    indexed: false,
                },
                SInst::LoadGlobal {
                    global: 0,
                    indexed: false,
                },
                SInst::Ret { has_value: true },
            ],
            vec![GlobalSlot {
                name: "g".into(),
                elements: 1,
                init: vec![0],
                bits: 8,
                signed: false,
                volatile: false,
            }],
        );
        let outcome = StackMachine::new(&prog).run_to_completion().unwrap();
        assert_eq!(outcome.return_value, 44);
        assert_eq!(outcome.final_globals, vec![vec![44]]);
    }

    #[test]
    fn slots_registers_and_branches() {
        // slot0 = 0; r0 = 5; while (r0 != 0) { slot0 += r0; r0 -= 1 } — sums
        // 5..=1 into slot 0.
        let prog = one_function_program(
            vec![
                SInst::PushImm(5),
                SInst::PopReg(0),
                // header (index 2)
                SInst::PushReg(0),
                SInst::BranchZero { target: 13 },
                SInst::PushSlot(0),
                SInst::PushReg(0),
                SInst::Bin(BinOp::Add),
                SInst::PopSlot(0),
                SInst::PushReg(0),
                SInst::PushImm(1),
                SInst::Bin(BinOp::Sub),
                SInst::PopReg(0),
                SInst::Jump { target: 2 },
                SInst::PushSlot(0),
                SInst::Ret { has_value: true },
            ],
            vec![],
        );
        let outcome = StackMachine::new(&prog).run_to_completion().unwrap();
        assert_eq!(outcome.return_value, 15);
    }

    #[test]
    fn sink_calls_record_arguments_in_push_order() {
        let prog = one_function_program(
            vec![
                SInst::PushImm(7),
                SInst::PushImm(9),
                SInst::Call {
                    target: CallTarget::Sink,
                    argc: 2,
                    has_ret: false,
                },
                SInst::Ret { has_value: false },
            ],
            vec![],
        );
        let outcome = StackMachine::new(&prog).run_to_completion().unwrap();
        assert_eq!(outcome.sink_calls, vec![vec![7, 9]]);
    }

    #[test]
    fn calls_deposit_arguments_in_registers_and_param_slots() {
        let callee = SFunction {
            name: "add".into(),
            code: vec![
                SInst::PushReg(0),
                SInst::PushSlot(1), // param slot of argument 1
                SInst::Bin(BinOp::Add),
                SInst::Ret { has_value: true },
            ],
            frame_slots: 2,
            param_base: 0,
            base_address: StackProgram::default_base_address(1),
        };
        let main = SFunction {
            name: "main".into(),
            code: vec![
                SInst::PushImm(40),
                SInst::PushImm(2),
                SInst::Call {
                    target: CallTarget::Function(1),
                    argc: 2,
                    has_ret: true,
                },
                SInst::Ret { has_value: true },
            ],
            frame_slots: 0,
            param_base: 0,
            base_address: StackProgram::default_base_address(0),
        };
        let prog = StackProgram {
            functions: vec![main, callee],
            globals: vec![],
            entry: 0,
        };
        let outcome = StackMachine::new(&prog).run_to_completion().unwrap();
        assert_eq!(outcome.return_value, 42);
    }

    #[test]
    fn frame_pointer_addresses_slots_through_memory() {
        let prog = one_function_program(
            vec![
                SInst::PushImm(13),
                SInst::PopSlot(1),
                SInst::PushSlotAddr(1),
                SInst::LoadInd,
                SInst::Ret { has_value: true },
            ],
            vec![],
        );
        let mut machine = StackMachine::new(&prog);
        // FP holds the absolute address of slot 0; slot 1 is 8 bytes later.
        let fp = machine.read_reg(FP_REG);
        assert_eq!(machine.frame_base(), Some(fp));
        while !machine.is_finished() {
            machine.step().unwrap();
        }
        assert_eq!(machine.read_address(fp + 8), Some(13));
    }

    #[test]
    fn breakpoints_stop_before_execution() {
        let prog = one_function_program(
            vec![
                SInst::PushImm(1),
                SInst::PopReg(0),
                SInst::PushImm(2),
                SInst::PopReg(1),
                SInst::Ret { has_value: false },
            ],
            vec![],
        );
        let mut machine = StackMachine::new(&prog);
        let mut breaks = BreakpointSet::new();
        breaks.insert(TEXT_BASE + 2);
        match machine.run(&breaks) {
            StopReason::Breakpoint { address } => assert_eq!(address, TEXT_BASE + 2),
            other => panic!("expected breakpoint, got {other:?}"),
        }
        assert_eq!(machine.read_reg(0), 1);
        assert_eq!(machine.read_reg(1), 0, "not yet executed");
        breaks.remove(TEXT_BASE + 2);
        match machine.run(&breaks) {
            StopReason::Finished { return_value } => assert_eq!(return_value, 0),
            other => panic!("expected finish, got {other:?}"),
        }
    }

    #[test]
    fn underflow_fuel_and_bad_slots_are_reported() {
        let underflow = one_function_program(vec![SInst::Drop], vec![]);
        assert_eq!(
            StackMachine::new(&underflow)
                .run_to_completion()
                .unwrap_err(),
            MachineError::EvalStackUnderflow
        );
        let spin = one_function_program(vec![SInst::Jump { target: 0 }], vec![]);
        assert_eq!(
            StackMachine::with_fuel(&spin, 50)
                .run_to_completion()
                .unwrap_err(),
            MachineError::OutOfFuel
        );
        let bad_slot = one_function_program(vec![SInst::PushSlot(99)], vec![]);
        assert_eq!(
            StackMachine::new(&bad_slot)
                .run_to_completion()
                .unwrap_err(),
            MachineError::BadFrameSlot(99)
        );
        let oob = one_function_program(
            vec![
                SInst::PushImm(5),
                SInst::LoadGlobal {
                    global: 0,
                    indexed: true,
                },
            ],
            vec![int_global("g", 0)],
        );
        assert!(matches!(
            StackMachine::new(&oob).run_to_completion().unwrap_err(),
            MachineError::GlobalIndexOutOfRange { .. }
        ));
    }
}
