//! The stepper interface shared by every backend's virtual machine.
//!
//! The source-level debugger (`holes-debugger`) drives execution purely
//! through this trait: run until a breakpoint, then inspect the stopped
//! frame to resolve variable locations. Each backend implements it for its
//! machine ([`crate::Machine`] for the register VM, [`crate::StackMachine`]
//! for the stack VM), and [`crate::MachineCode::spawn`] hands the debugger
//! the right one.

use crate::breakpoints::BreakpointSet;
use crate::exec::StopReason;

/// A running virtual machine the debugger can step and inspect.
///
/// The inspection methods mirror the location description language of
/// `holes-debuginfo`: registers, frame slots, absolute addresses, and the
/// current frame's base address (what a DWARF `DW_OP_fbreg` expression
/// would be evaluated against). A backend without an active frame returns
/// `None` from [`Vm::frame_base`], and frame-base-relative locations
/// cannot resolve at such a stop — the debugger reports the variable as
/// optimized out.
pub trait Vm {
    /// Run until a breakpoint, completion or error.
    fn run(&mut self, breakpoints: &BreakpointSet) -> StopReason;

    /// Read a register of the current frame.
    fn read_reg(&self, reg: u8) -> i64;

    /// Read a frame slot of the current frame (`None` when out of range or
    /// no frame is active).
    fn read_frame_slot(&self, slot: u32) -> Option<i64>;

    /// Read an absolute memory address (global or stack segment).
    fn read_address(&self, address: i64) -> Option<i64>;

    /// The absolute address of the current frame's slot 0, on backends that
    /// maintain an explicit frame base; `None` otherwise.
    fn frame_base(&self) -> Option<i64>;

    /// Execute one pre-compiled machine read against the stopped frame.
    ///
    /// The variants of [`MachineRead`] mirror the resolvable location
    /// descriptions of `holes-debuginfo`, so a debugger that has already
    /// decided *where* a variable lives (a stop plan) only needs machine
    /// state at stop time. `None` means the read cannot be satisfied (slot
    /// out of range, address outside memory, no frame base) — the debugger
    /// reports such variables as optimized out.
    fn read_one(&self, read: MachineRead) -> Option<i64> {
        match read {
            MachineRead::Reg(reg) => Some(self.read_reg(reg)),
            MachineRead::FrameSlot(slot) => self.read_frame_slot(slot),
            MachineRead::Address(address) => self.read_address(address),
            MachineRead::FrameBaseSlot { offset } => self
                .frame_base()
                .and_then(|base| self.read_address(base + i64::from(offset) * 8)),
            MachineRead::RegOffset { reg, offset, deref } => {
                let computed = self.read_reg(reg).wrapping_add(offset);
                if deref {
                    self.read_address(computed)
                } else {
                    Some(computed)
                }
            }
        }
    }

    /// Execute a batch of machine reads against the stopped frame, appending
    /// one result per read to `out` (in input order).
    ///
    /// This is the debugger's stop-plan entry point: one virtual call per
    /// stop instead of one per variable, with the per-read work inlined in
    /// the implementing machine.
    fn read_batch(&self, reads: &[MachineRead], out: &mut Vec<Option<i64>>) {
        out.reserve(reads.len());
        for &read in reads {
            out.push(self.read_one(read));
        }
    }
}

/// One machine-state read a debugger performs at a breakpoint stop, with
/// every location-description decision already resolved.
///
/// A stop plan compiles a variable's DWARF-style location (register, frame
/// slot, global address, `DW_OP_fbreg`-style frame-base offset, or a
/// composite register + offset expression) down to one of these variants
/// once per executable; at stop time the debugger hands the batch to
/// [`Vm::read_batch`] and the machine answers from its current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineRead {
    /// The value of a register of the stopped frame.
    Reg(u8),
    /// The value of a frame slot of the stopped frame.
    FrameSlot(u32),
    /// The value at an absolute memory address.
    Address(i64),
    /// The value `offset` slots (8 bytes each) past the frame base, on
    /// backends that maintain one.
    FrameBaseSlot {
        /// Slot offset from the frame base.
        offset: i32,
    },
    /// The value of `reg + offset`, optionally loaded through as an address.
    RegOffset {
        /// Base register of the expression.
        reg: u8,
        /// Byte offset added to the register value.
        offset: i64,
        /// Whether the computed address is dereferenced.
        deref: bool,
    },
}
