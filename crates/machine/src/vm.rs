//! The stepper interface shared by every backend's virtual machine.
//!
//! The source-level debugger (`holes-debugger`) drives execution purely
//! through this trait: run until a breakpoint, then inspect the stopped
//! frame to resolve variable locations. Each backend implements it for its
//! machine ([`crate::Machine`] for the register VM, [`crate::StackMachine`]
//! for the stack VM), and [`crate::MachineCode::spawn`] hands the debugger
//! the right one.

use crate::breakpoints::BreakpointSet;
use crate::exec::StopReason;

/// A running virtual machine the debugger can step and inspect.
///
/// The inspection methods mirror the location description language of
/// `holes-debuginfo`: registers, frame slots, absolute addresses, and — for
/// backends that maintain one — the current frame's base address (what a
/// DWARF `DW_OP_fbreg` expression would be evaluated against). Backends
/// without a frame base (the register VM) return `None` from
/// [`Vm::frame_base`], so frame-base-relative locations can never resolve
/// there — exactly the expressiveness gap the stack backend exists to
/// exercise.
pub trait Vm {
    /// Run until a breakpoint, completion or error.
    fn run(&mut self, breakpoints: &BreakpointSet) -> StopReason;

    /// Read a register of the current frame.
    fn read_reg(&self, reg: u8) -> i64;

    /// Read a frame slot of the current frame (`None` when out of range or
    /// no frame is active).
    fn read_frame_slot(&self, slot: u32) -> Option<i64>;

    /// Read an absolute memory address (global or stack segment).
    fn read_address(&self, address: i64) -> Option<i64>;

    /// The absolute address of the current frame's slot 0, on backends that
    /// maintain an explicit frame base; `None` otherwise.
    fn frame_base(&self) -> Option<i64>;
}
