//! Detection of canonical loop induction variables.
//!
//! The paper's Conjecture 2 treats loop induction variables that index global
//! memory as "unalterable": the optimizer cannot change their value sequence
//! without changing which memory cells are touched. We recognize the
//! canonical `for (i = C0; i <cmp> C1; i = i + C2)` shape that both the
//! generator and the paper's examples use.

use crate::ast::{BinOp, ExprKind, FunctionId, LValue, LocalId, Program, Stmt, StmtKind};

/// A loop with a recognized induction variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopIv {
    /// Function containing the loop.
    pub function: FunctionId,
    /// Line of the `for (...)` header.
    pub header_line: u32,
    /// The induction variable.
    pub var: LocalId,
    /// Initial value, when the initializer is a literal.
    pub start: Option<i64>,
    /// Loop bound, when the condition compares against a literal.
    pub bound: Option<i64>,
    /// Step added each iteration, when the step is `i = i + literal`.
    pub step: Option<i64>,
    /// Lines of statements inside the loop body (recursively).
    pub body_lines: Vec<u32>,
    /// Nesting depth (0 for outermost loops).
    pub depth: usize,
}

impl LoopIv {
    /// Whether a line lies inside the loop body (header excluded).
    pub fn contains_line(&self, line: u32) -> bool {
        self.body_lines.contains(&line)
    }
}

/// Find every canonical induction variable in the program.
pub fn induction_variables(program: &Program) -> Vec<LoopIv> {
    let mut out = Vec::new();
    for (id, func) in program.functions_with_ids() {
        walk(id, &func.body, 0, &mut out);
    }
    out
}

fn walk(id: FunctionId, stmts: &[Stmt], depth: usize, out: &mut Vec<LoopIv>) {
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(iv) = recognize(
                    stmt.line,
                    id,
                    init.as_deref(),
                    cond.as_ref(),
                    step.as_deref(),
                    body,
                    depth,
                ) {
                    out.push(iv);
                }
                walk(id, body, depth + 1, out);
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                walk(id, then_branch, depth, out);
                walk(id, else_branch, depth, out);
            }
            StmtKind::Block(body) => walk(id, body, depth, out),
            _ => {}
        }
    }
}

fn assigned_local(stmt: &Stmt) -> Option<(LocalId, &crate::ast::Expr)> {
    match &stmt.kind {
        StmtKind::Assign {
            target: LValue::Var(crate::ast::VarRef::Local(l)),
            value,
        } => Some((*l, value)),
        StmtKind::Decl {
            local,
            init: Some(value),
        } => Some((*local, value)),
        _ => None,
    }
}

fn recognize(
    header_line: u32,
    function: FunctionId,
    init: Option<&Stmt>,
    cond: Option<&crate::ast::Expr>,
    step: Option<&Stmt>,
    body: &[Stmt],
    depth: usize,
) -> Option<LoopIv> {
    let (iv, init_expr) = assigned_local(init?)?;
    let start = match init_expr.kind {
        ExprKind::Lit(v) => Some(v),
        _ => None,
    };
    // Condition must compare the induction variable against something.
    let bound = match &cond?.kind {
        ExprKind::Binary(BinOp::Lt | BinOp::Le | BinOp::Ne | BinOp::Gt | BinOp::Ge, lhs, rhs) => {
            match (&lhs.kind, &rhs.kind) {
                (ExprKind::Var(crate::ast::VarRef::Local(l)), ExprKind::Lit(b)) if *l == iv => {
                    Some(*b)
                }
                (ExprKind::Var(crate::ast::VarRef::Local(l)), _) if *l == iv => None,
                _ => return None,
            }
        }
        _ => return None,
    };
    // Step must be `iv = iv + lit` (or `iv - lit`).
    let (step_var, step_expr) = assigned_local(step?)?;
    if step_var != iv {
        return None;
    }
    let step_val = match &step_expr.kind {
        ExprKind::Binary(BinOp::Add, lhs, rhs) => match (&lhs.kind, &rhs.kind) {
            (ExprKind::Var(crate::ast::VarRef::Local(l)), ExprKind::Lit(s)) if *l == iv => Some(*s),
            _ => None,
        },
        ExprKind::Binary(BinOp::Sub, lhs, rhs) => match (&lhs.kind, &rhs.kind) {
            (ExprKind::Var(crate::ast::VarRef::Local(l)), ExprKind::Lit(s)) if *l == iv => {
                Some(-*s)
            }
            _ => None,
        },
        _ => None,
    };
    let mut body_lines = Vec::new();
    collect_lines(body, &mut body_lines);
    Some(LoopIv {
        function,
        header_line,
        var: iv,
        start,
        bound,
        step: step_val,
        body_lines,
        depth,
    })
}

fn collect_lines(stmts: &[Stmt], out: &mut Vec<u32>) {
    for stmt in stmts {
        out.push(stmt.line);
        match &stmt.kind {
            StmtKind::For { body, .. } => collect_lines(body, out),
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_lines(then_branch, out);
                collect_lines(else_branch, out);
            }
            StmtKind::Block(body) => collect_lines(body, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Ty, VarRef};
    use crate::build::ProgramBuilder;

    fn canonical_loop_program() -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.global_array("a", Ty::I32, false, vec![4], vec![1, 2, 3, 4]);
        let c = b.global("c", Ty::I32, true, vec![0]);
        let main = b.function("main", Ty::I32);
        let i = b.local(main, "i", Ty::I32);
        b.push(
            main,
            Stmt::for_loop(
                Some(Stmt::assign(LValue::local(i), Expr::lit(0))),
                Some(Expr::binary(BinOp::Lt, Expr::local(i), Expr::lit(4))),
                Some(Stmt::assign(
                    LValue::local(i),
                    Expr::binary(BinOp::Add, Expr::local(i), Expr::lit(1)),
                )),
                vec![Stmt::assign(
                    LValue::global(c),
                    Expr::index(VarRef::Global(a), vec![Expr::local(i)]),
                )],
            ),
        );
        b.push(main, Stmt::ret(Some(Expr::lit(0))));
        let mut p = b.finish();
        p.assign_lines();
        p
    }

    #[test]
    fn canonical_loop_is_recognized() {
        let p = canonical_loop_program();
        let ivs = induction_variables(&p);
        assert_eq!(ivs.len(), 1);
        let iv = &ivs[0];
        assert_eq!(iv.var, LocalId(0));
        assert_eq!(iv.start, Some(0));
        assert_eq!(iv.bound, Some(4));
        assert_eq!(iv.step, Some(1));
        assert_eq!(iv.depth, 0);
        assert_eq!(iv.body_lines.len(), 1);
    }

    #[test]
    fn nested_loops_yield_multiple_ivs_with_depth() {
        let mut b = ProgramBuilder::new();
        let a = b.global_array("a", Ty::I32, false, vec![2, 3], vec![0; 6]);
        let c = b.global("c", Ty::I32, true, vec![0]);
        let main = b.function("main", Ty::I32);
        let i = b.local(main, "i", Ty::I32);
        let j = b.local(main, "j", Ty::I32);
        let inner = Stmt::for_loop(
            Some(Stmt::assign(LValue::local(j), Expr::lit(0))),
            Some(Expr::binary(BinOp::Lt, Expr::local(j), Expr::lit(3))),
            Some(Stmt::assign(
                LValue::local(j),
                Expr::binary(BinOp::Add, Expr::local(j), Expr::lit(1)),
            )),
            vec![Stmt::assign(
                LValue::global(c),
                Expr::index(VarRef::Global(a), vec![Expr::local(i), Expr::local(j)]),
            )],
        );
        b.push(
            main,
            Stmt::for_loop(
                Some(Stmt::assign(LValue::local(i), Expr::lit(0))),
                Some(Expr::binary(BinOp::Lt, Expr::local(i), Expr::lit(2))),
                Some(Stmt::assign(
                    LValue::local(i),
                    Expr::binary(BinOp::Add, Expr::local(i), Expr::lit(1)),
                )),
                vec![inner],
            ),
        );
        b.push(main, Stmt::ret(None));
        let mut p = b.finish();
        p.assign_lines();
        let ivs = induction_variables(&p);
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs.iter().filter(|iv| iv.depth == 0).count(), 1);
        assert_eq!(ivs.iter().filter(|iv| iv.depth == 1).count(), 1);
    }

    #[test]
    fn non_canonical_loop_is_ignored() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let main = b.function("main", Ty::I32);
        let i = b.local(main, "i", Ty::I32);
        // step multiplies instead of adding: not canonical
        b.push(
            main,
            Stmt::for_loop(
                Some(Stmt::assign(LValue::local(i), Expr::lit(1))),
                Some(Expr::binary(BinOp::Lt, Expr::local(i), Expr::lit(100))),
                Some(Stmt::assign(
                    LValue::local(i),
                    Expr::binary(BinOp::Mul, Expr::local(i), Expr::lit(2)),
                )),
                vec![Stmt::assign(LValue::global(g), Expr::local(i))],
            ),
        );
        b.push(main, Stmt::ret(None));
        let mut p = b.finish();
        p.assign_lines();
        let ivs = induction_variables(&p);
        assert_eq!(ivs.len(), 1);
        assert_eq!(
            ivs[0].step, None,
            "non-unit multiplicative step is not canonical"
        );
    }

    #[test]
    fn contains_line_matches_body() {
        let p = canonical_loop_program();
        let ivs = induction_variables(&p);
        let body_line = ivs[0].body_lines[0];
        assert!(ivs[0].contains_line(body_line));
        assert!(!ivs[0].contains_line(ivs[0].header_line));
    }
}
