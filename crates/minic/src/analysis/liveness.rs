//! Conservative source-level liveness ("used later") information.
//!
//! Conjecture 2 only expects an *unalterable* constituent variable to be
//! available if "the program may use it later" — otherwise the optimizer is
//! entitled to reuse its storage while computing the assignment. We compute a
//! conservative approximation: a local is *live after* line `L` when it has a
//! syntactic read at a line greater than `L`, or when `L` lies inside a loop
//! whose body (or header) also reads the variable — the loop back edge makes
//! earlier reads reachable again.

use std::collections::BTreeMap;

use crate::ast::{Expr, FunctionId, LValue, LocalId, Program, Stmt, StmtKind, VarRef};

/// Whether a use of a variable is a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseKind {
    /// The variable's value is read.
    Read,
    /// The variable is assigned.
    Write,
}

/// Read/write line information for every local of every function, plus loop
/// extents used to account for back edges.
#[derive(Debug, Clone, Default)]
pub struct LivenessInfo {
    reads: BTreeMap<(FunctionId, LocalId), Vec<u32>>,
    writes: BTreeMap<(FunctionId, LocalId), Vec<u32>>,
    /// `(header_line, body_lines)` of every loop, per function.
    loops: BTreeMap<FunctionId, Vec<(u32, Vec<u32>)>>,
}

impl LivenessInfo {
    /// Compute liveness information for a program with assigned lines.
    pub fn compute(program: &Program) -> LivenessInfo {
        let mut info = LivenessInfo::default();
        for (id, func) in program.functions_with_ids() {
            collect_stmts(id, &func.body, &mut info);
        }
        for lines in info.reads.values_mut().chain(info.writes.values_mut()) {
            lines.sort_unstable();
            lines.dedup();
        }
        info
    }

    /// Lines at which `local` is read in `function`.
    pub fn read_lines(&self, function: FunctionId, local: LocalId) -> &[u32] {
        self.reads
            .get(&(function, local))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Lines at which `local` is written (declarations with initializers and
    /// assignments) in `function`.
    pub fn write_lines(&self, function: FunctionId, local: LocalId) -> &[u32] {
        self.writes
            .get(&(function, local))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Conservative "may be used after `line`" check (see module docs).
    pub fn live_after(&self, function: FunctionId, local: LocalId, line: u32) -> bool {
        let reads = self.read_lines(function, local);
        if reads.iter().any(|&r| r > line) {
            return true;
        }
        // Back edges: if `line` is inside a loop that also reads the local
        // anywhere in its body or header, the value may be needed again.
        if let Some(loops) = self.loops.get(&function) {
            for (header, body) in loops {
                let in_loop = body.contains(&line) || *header == line;
                if in_loop && reads.iter().any(|r| body.contains(r) || r == header) {
                    return true;
                }
            }
        }
        false
    }
}

fn collect_stmts(func: FunctionId, stmts: &[Stmt], info: &mut LivenessInfo) {
    for stmt in stmts {
        collect_stmt(func, stmt, info);
    }
}

fn record(
    map: &mut BTreeMap<(FunctionId, LocalId), Vec<u32>>,
    func: FunctionId,
    local: LocalId,
    line: u32,
) {
    map.entry((func, local)).or_default().push(line);
}

fn record_expr_reads(func: FunctionId, expr: &Expr, line: u32, info: &mut LivenessInfo) {
    for var in expr.reads() {
        if let VarRef::Local(l) = var {
            record(&mut info.reads, func, l, line);
        }
    }
}

fn collect_stmt(func: FunctionId, stmt: &Stmt, info: &mut LivenessInfo) {
    match &stmt.kind {
        StmtKind::Decl { local, init } => {
            if let Some(e) = init {
                record_expr_reads(func, e, stmt.line, info);
                record(&mut info.writes, func, *local, stmt.line);
            }
        }
        StmtKind::Assign { target, value } => {
            record_expr_reads(func, value, stmt.line, info);
            match target {
                LValue::Var(VarRef::Local(l)) => record(&mut info.writes, func, *l, stmt.line),
                LValue::Var(VarRef::Global(_)) => {}
                LValue::Index { base, indices } => {
                    if let VarRef::Local(l) = base {
                        record(&mut info.reads, func, *l, stmt.line);
                    }
                    for idx in indices {
                        record_expr_reads(func, idx, stmt.line, info);
                    }
                }
                LValue::Deref(v) => {
                    if let VarRef::Local(l) = v {
                        record(&mut info.reads, func, *l, stmt.line);
                    }
                }
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(s) = init {
                collect_stmt(func, s, info);
            }
            if let Some(c) = cond {
                record_expr_reads(func, c, stmt.line, info);
            }
            if let Some(s) = step {
                collect_stmt(func, s, info);
            }
            collect_stmts(func, body, info);
            let mut body_lines = vec![stmt.line];
            collect_lines(body, &mut body_lines);
            info.loops
                .entry(func)
                .or_default()
                .push((stmt.line, body_lines));
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            record_expr_reads(func, cond, stmt.line, info);
            collect_stmts(func, then_branch, info);
            collect_stmts(func, else_branch, info);
        }
        StmtKind::Call { args, .. } => {
            for a in args {
                record_expr_reads(func, a, stmt.line, info);
            }
        }
        StmtKind::Return(Some(e)) => record_expr_reads(func, e, stmt.line, info),
        StmtKind::Block(body) => collect_stmts(func, body, info),
        StmtKind::Return(None) | StmtKind::Goto(_) | StmtKind::Label(_) | StmtKind::Empty => {}
    }
}

fn collect_lines(stmts: &[Stmt], out: &mut Vec<u32>) {
    for stmt in stmts {
        out.push(stmt.line);
        match &stmt.kind {
            StmtKind::For { body, .. } => collect_lines(body, out),
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_lines(then_branch, out);
                collect_lines(else_branch, out);
            }
            StmtKind::Block(body) => collect_lines(body, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Ty};
    use crate::build::ProgramBuilder;

    fn program_with_loop() -> (Program, FunctionId, LocalId, LocalId) {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, true, vec![0]);
        let main = b.function("main", Ty::I32);
        let i = b.local(main, "i", Ty::I32);
        let x = b.local(main, "x", Ty::I32);
        b.push(main, Stmt::decl(x, Some(Expr::lit(5))));
        b.push(
            main,
            Stmt::for_loop(
                Some(Stmt::assign(LValue::local(i), Expr::lit(0))),
                Some(Expr::binary(BinOp::Lt, Expr::local(i), Expr::lit(3))),
                Some(Stmt::assign(
                    LValue::local(i),
                    Expr::binary(BinOp::Add, Expr::local(i), Expr::lit(1)),
                )),
                vec![Stmt::assign(
                    LValue::global(g),
                    Expr::binary(BinOp::Add, Expr::local(i), Expr::local(x)),
                )],
            ),
        );
        b.push(main, Stmt::ret(Some(Expr::local(x))));
        let mut p = b.finish();
        p.assign_lines();
        (p, main, i, x)
    }

    #[test]
    fn reads_and_writes_are_collected() {
        let (p, main, i, x) = program_with_loop();
        let info = LivenessInfo::compute(&p);
        assert!(!info.read_lines(main, i).is_empty());
        assert!(!info.write_lines(main, i).is_empty());
        assert!(!info.read_lines(main, x).is_empty());
        assert_eq!(info.write_lines(main, x).len(), 1);
    }

    #[test]
    fn live_after_sees_later_reads() {
        let (p, main, _i, x) = program_with_loop();
        let info = LivenessInfo::compute(&p);
        let decl_line = info.write_lines(main, x)[0];
        // x is read in the loop and in the return statement.
        assert!(info.live_after(main, x, decl_line));
        let last_read = *info.read_lines(main, x).last().unwrap();
        assert!(!info.live_after(main, x, last_read));
    }

    #[test]
    fn live_after_accounts_for_loop_back_edges() {
        let (p, main, i, _x) = program_with_loop();
        let info = LivenessInfo::compute(&p);
        // The store inside the loop body reads i; at that very line, i is
        // still live because the loop iterates again.
        let body_read = *info
            .read_lines(main, i)
            .iter()
            .max()
            .expect("i is read somewhere");
        assert!(info.live_after(main, i, body_read));
    }

    #[test]
    fn unused_local_is_never_live() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", Ty::I32);
        let dead = b.local(main, "dead", Ty::I32);
        b.push(main, Stmt::decl(dead, Some(Expr::lit(1))));
        b.push(main, Stmt::ret(None));
        let mut p = b.finish();
        p.assign_lines();
        let info = LivenessInfo::compute(&p);
        assert!(!info.live_after(main, dead, 1));
        assert!(info.read_lines(main, dead).is_empty());
    }
}
