//! Source-level static analyses used by the conjecture checkers.
//!
//! The three conjectures of the paper are phrased over source constructs:
//!
//! * **Conjecture 1** needs the *opaque-call argument sites*: lines where a
//!   plain program variable is passed to a call whose target the optimizer
//!   cannot see ([`sites::opaque_call_sites`]).
//! * **Conjecture 2** needs the *global-store sites*: lines assigning to
//!   global storage through a non-simplifiable expression, together with the
//!   classification of each constituent variable (constant-valued,
//!   address-constant, or unalterable loop index) and whether it is live
//!   afterwards ([`sites::global_store_sites`]).
//! * **Conjecture 3** needs the *local assignment sites*: for every local
//!   variable, the lines at which it is (re)assigned, which delimit the
//!   variable instances whose availability may only decay
//!   ([`sites::local_assignment_sites`]).
//!
//! Supporting analyses: [`induction`] detects canonical loop induction
//! variables and loop line ranges; [`liveness`] computes a conservative
//! "used at or after a line" relation.

pub mod induction;
pub mod liveness;
pub mod sites;

pub use induction::{induction_variables, LoopIv};
pub use liveness::{LivenessInfo, UseKind};
pub use sites::{
    global_store_sites, local_assignment_sites, opaque_call_sites, Constituent, ConstituentKind,
    GlobalStoreSite, LocalAssignmentSite, OpaqueCallSite,
};

use crate::ast::Program;

/// All analysis results bundled together; computed once per program and
/// shared by every conjecture checker and the reducer oracle.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    /// Canonical loop induction variables.
    pub loops: Vec<LoopIv>,
    /// Liveness / use information.
    pub liveness: LivenessInfo,
    /// Conjecture 1 sites.
    pub opaque_calls: Vec<OpaqueCallSite>,
    /// Conjecture 2 sites.
    pub global_stores: Vec<GlobalStoreSite>,
    /// Conjecture 3 sites.
    pub local_assignments: Vec<LocalAssignmentSite>,
}

impl ProgramAnalysis {
    /// Run every analysis on a program whose lines have already been
    /// assigned (see [`Program::assign_lines`]).
    pub fn analyze(program: &Program) -> ProgramAnalysis {
        let loops = induction_variables(program);
        let liveness = LivenessInfo::compute(program);
        let opaque_calls = opaque_call_sites(program);
        let global_stores = global_store_sites(program, &loops, &liveness);
        let local_assignments = local_assignment_sites(program);
        ProgramAnalysis {
            loops,
            liveness,
            opaque_calls,
            global_stores,
            local_assignments,
        }
    }
}
