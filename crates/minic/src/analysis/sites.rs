//! Conjecture sites: the program points each conjecture is checked at.

use crate::analysis::induction::LoopIv;
use crate::analysis::liveness::LivenessInfo;
use crate::ast::{
    Callee, Expr, ExprKind, Function, FunctionId, LValue, LocalId, Program, Stmt, StmtKind, VarRef,
};

/// A Conjecture 1 site: a statement-level call to the opaque sink function
/// with at least one plain variable argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpaqueCallSite {
    /// Function containing the call.
    pub function: FunctionId,
    /// Source line of the call.
    pub line: u32,
    /// Plain variable arguments (the conjecture applies to each of them).
    pub arg_vars: Vec<VarRef>,
}

/// How a constituent variable of a global-store expression is classified for
/// Conjecture 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstituentKind {
    /// Every assignment to the variable in the function is a literal, so it
    /// holds a compile-time constant (trivial to describe in debug info).
    ConstantValued,
    /// Every assignment takes the address of another variable; also a
    /// compile-time constant from the optimizer's point of view.
    AddressConstant,
    /// A canonical loop induction variable used to index global storage: the
    /// optimizer cannot alter its value sequence.
    UnalterableIndex,
}

/// One constituent variable of a Conjecture 2 site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constituent {
    /// The local variable.
    pub var: LocalId,
    /// Why the conjecture expects it to be available.
    pub kind: ConstituentKind,
    /// Whether the variable may be used after the store line.
    pub live_after: bool,
}

/// A Conjecture 2 site: an assignment to global storage through a
/// non-simplifiable expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalStoreSite {
    /// Function containing the assignment.
    pub function: FunctionId,
    /// Source line of the assignment.
    pub line: u32,
    /// The constituents the conjecture expects to be available.
    pub constituents: Vec<Constituent>,
    /// Whether the right-hand side is trivially simplifiable (e.g. contains a
    /// multiplication by literal zero); such sites are skipped by the checker.
    pub simplifiable: bool,
}

/// A Conjecture 3 site: an assignment (or initialized declaration) of a local
/// variable. Consecutive sites of the same variable delimit its instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalAssignmentSite {
    /// Function containing the assignment.
    pub function: FunctionId,
    /// The assigned local.
    pub local: LocalId,
    /// Source line of the assignment.
    pub line: u32,
}

/// Collect Conjecture 1 sites: opaque calls with plain-variable arguments.
pub fn opaque_call_sites(program: &Program) -> Vec<OpaqueCallSite> {
    let mut out = Vec::new();
    for (id, func) in program.functions_with_ids() {
        walk_stmts(&func.body, &mut |stmt| {
            if let StmtKind::Call {
                callee: Callee::Opaque,
                args,
            } = &stmt.kind
            {
                let arg_vars: Vec<VarRef> = args
                    .iter()
                    .filter_map(|a| match a.kind {
                        ExprKind::Var(v) => Some(v),
                        _ => None,
                    })
                    .collect();
                if !arg_vars.is_empty() {
                    out.push(OpaqueCallSite {
                        function: id,
                        line: stmt.line,
                        arg_vars,
                    });
                }
            }
        });
    }
    out
}

/// Collect Conjecture 2 sites.
pub fn global_store_sites(
    program: &Program,
    loops: &[LoopIv],
    liveness: &LivenessInfo,
) -> Vec<GlobalStoreSite> {
    let mut out = Vec::new();
    for (id, func) in program.functions_with_ids() {
        walk_stmts(&func.body, &mut |stmt| {
            if let StmtKind::Assign { target, value } = &stmt.kind {
                if !target.writes_global_storage() {
                    return;
                }
                let mut reads: Vec<LocalId> = Vec::new();
                for v in value.reads() {
                    if let VarRef::Local(l) = v {
                        reads.push(l);
                    }
                }
                if let LValue::Index { indices, .. } = target {
                    for idx in indices {
                        for v in idx.reads() {
                            if let VarRef::Local(l) = v {
                                reads.push(l);
                            }
                        }
                    }
                }
                reads.sort_unstable();
                reads.dedup();
                if reads.is_empty() {
                    return;
                }
                let constituents: Vec<Constituent> = reads
                    .into_iter()
                    .filter_map(|local| {
                        classify_constituent(func, id, local, stmt, loops).map(|kind| Constituent {
                            var: local,
                            kind,
                            live_after: liveness.live_after(id, local, stmt.line),
                        })
                    })
                    .collect();
                if constituents.is_empty() {
                    return;
                }
                out.push(GlobalStoreSite {
                    function: id,
                    line: stmt.line,
                    constituents,
                    simplifiable: is_trivially_simplifiable(value),
                });
            }
        });
    }
    out
}

/// Collect Conjecture 3 sites: every assignment to a local variable.
pub fn local_assignment_sites(program: &Program) -> Vec<LocalAssignmentSite> {
    let mut out = Vec::new();
    for (id, func) in program.functions_with_ids() {
        walk_stmts(&func.body, &mut |stmt| match &stmt.kind {
            StmtKind::Decl {
                local,
                init: Some(_),
            } => out.push(LocalAssignmentSite {
                function: id,
                local: *local,
                line: stmt.line,
            }),
            StmtKind::Assign {
                target: LValue::Var(VarRef::Local(l)),
                ..
            } => out.push(LocalAssignmentSite {
                function: id,
                local: *l,
                line: stmt.line,
            }),
            _ => {}
        });
        let _ = func;
    }
    out.sort_by_key(|s| (s.function, s.local, s.line));
    out
}

/// Classify a constituent local, returning `None` when the conjecture makes
/// no claim about it (e.g. an ordinary mutable temporary).
fn classify_constituent(
    func: &Function,
    func_id: FunctionId,
    local: LocalId,
    stmt: &Stmt,
    loops: &[LoopIv],
) -> Option<ConstituentKind> {
    // Induction variable used at a line inside its own loop body.
    let is_iv_here = loops
        .iter()
        .any(|iv| iv.function == func_id && iv.var == local && iv.contains_line(stmt.line));
    if is_iv_here {
        return Some(ConstituentKind::UnalterableIndex);
    }
    // Constant-valued: every write in the function is a literal (or addr-of).
    let writes = collect_writes(func, local);
    if writes.is_empty() {
        return None;
    }
    if writes.iter().all(|e| matches!(e.kind, ExprKind::Lit(_))) {
        return Some(ConstituentKind::ConstantValued);
    }
    if writes.iter().all(|e| matches!(e.kind, ExprKind::AddrOf(_))) {
        return Some(ConstituentKind::AddressConstant);
    }
    None
}

/// Every expression assigned to `local` anywhere in the function.
fn collect_writes(func: &Function, local: LocalId) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(stmts: &'a [Stmt], local: LocalId, out: &mut Vec<&'a Expr>) {
        for stmt in stmts {
            match &stmt.kind {
                StmtKind::Decl {
                    local: l,
                    init: Some(e),
                } if *l == local => out.push(e),
                StmtKind::Assign {
                    target: LValue::Var(VarRef::Local(l)),
                    value,
                } if *l == local => out.push(value),
                StmtKind::For {
                    init, step, body, ..
                } => {
                    if let Some(s) = init {
                        walk(std::slice::from_ref(s), local, out);
                    }
                    if let Some(s) = step {
                        walk(std::slice::from_ref(s), local, out);
                    }
                    walk(body, local, out);
                }
                StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, local, out);
                    walk(else_branch, local, out);
                }
                StmtKind::Block(body) => walk(body, local, out),
                _ => {}
            }
        }
    }
    walk(&func.body, local, &mut out);
    out
}

/// A right-hand side is trivially simplifiable when a sub-expression
/// multiplies or ANDs a variable with a literal zero: the optimizer may drop
/// constituents without this being a defect (the paper excludes such sites).
pub fn is_trivially_simplifiable(expr: &Expr) -> bool {
    match &expr.kind {
        ExprKind::Binary(op, lhs, rhs) => {
            let zero = |e: &Expr| matches!(e.kind, ExprKind::Lit(0));
            let simplifying_op = matches!(op, crate::ast::BinOp::Mul | crate::ast::BinOp::And);
            (simplifying_op && (zero(lhs) || zero(rhs)))
                || is_trivially_simplifiable(lhs)
                || is_trivially_simplifiable(rhs)
        }
        ExprKind::Unary(_, inner) | ExprKind::Deref(inner) => is_trivially_simplifiable(inner),
        ExprKind::Index { indices, .. } => indices.iter().any(is_trivially_simplifiable),
        ExprKind::Call { args, .. } => args.iter().any(is_trivially_simplifiable),
        _ => false,
    }
}

/// Depth-first walk over all statements, visiting loop init/step too.
fn walk_stmts(stmts: &[Stmt], visit: &mut impl FnMut(&Stmt)) {
    for stmt in stmts {
        visit(stmt);
        match &stmt.kind {
            StmtKind::For {
                init, step, body, ..
            } => {
                if let Some(s) = init {
                    visit(s);
                }
                if let Some(s) = step {
                    visit(s);
                }
                walk_stmts(body, visit);
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                walk_stmts(then_branch, visit);
                walk_stmts(else_branch, visit);
            }
            StmtKind::Block(body) => walk_stmts(body, visit),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::induction::induction_variables;
    use crate::ast::{BinOp, Ty};
    use crate::build::ProgramBuilder;

    /// Program modelled on the paper's Conjecture 2 example (§3.3): nested
    /// loops writing a volatile global indexed by induction variables.
    fn lsr_style_program() -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.global_array("a", Ty::I32, false, vec![2, 4], (0..8).collect());
        let c = b.global("c", Ty::I32, true, vec![0]);
        let main = b.function("main", Ty::I32);
        let i = b.local(main, "i", Ty::I32);
        let j = b.local(main, "j", Ty::I32);
        let inner = Stmt::for_loop(
            Some(Stmt::assign(LValue::local(j), Expr::lit(0))),
            Some(Expr::binary(BinOp::Lt, Expr::local(j), Expr::lit(4))),
            Some(Stmt::assign(
                LValue::local(j),
                Expr::binary(BinOp::Add, Expr::local(j), Expr::lit(1)),
            )),
            vec![Stmt::assign(
                LValue::global(c),
                Expr::index(VarRef::Global(a), vec![Expr::local(i), Expr::local(j)]),
            )],
        );
        b.push(
            main,
            Stmt::for_loop(
                Some(Stmt::assign(LValue::local(i), Expr::lit(0))),
                Some(Expr::binary(BinOp::Lt, Expr::local(i), Expr::lit(2))),
                Some(Stmt::assign(
                    LValue::local(i),
                    Expr::binary(BinOp::Add, Expr::local(i), Expr::lit(1)),
                )),
                vec![inner],
            ),
        );
        b.push(main, Stmt::ret(Some(Expr::lit(0))));
        let mut p = b.finish();
        p.assign_lines();
        p
    }

    #[test]
    fn opaque_call_sites_pick_plain_variables_only() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", Ty::I32);
        let x = b.local(main, "x", Ty::I32);
        let y = b.local(main, "y", Ty::I32);
        b.push(main, Stmt::decl(x, Some(Expr::lit(1))));
        b.push(main, Stmt::decl(y, Some(Expr::lit(2))));
        b.push(
            main,
            Stmt::call_opaque(vec![
                Expr::local(x),
                Expr::binary(BinOp::Add, Expr::local(y), Expr::lit(1)),
            ]),
        );
        b.push(main, Stmt::ret(None));
        let mut p = b.finish();
        p.assign_lines();
        let sites = opaque_call_sites(&p);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].arg_vars, vec![VarRef::Local(x)]);
    }

    #[test]
    fn global_store_sites_classify_induction_variables() {
        let p = lsr_style_program();
        let loops = induction_variables(&p);
        let liveness = LivenessInfo::compute(&p);
        let sites = global_store_sites(&p, &loops, &liveness);
        assert_eq!(sites.len(), 1);
        let site = &sites[0];
        assert!(!site.simplifiable);
        assert_eq!(site.constituents.len(), 2);
        assert!(site
            .constituents
            .iter()
            .all(|c| c.kind == ConstituentKind::UnalterableIndex));
        assert!(site.constituents.iter().all(|c| c.live_after));
    }

    #[test]
    fn constant_valued_constituents_are_detected() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let main = b.function("main", Ty::I32);
        let k = b.local(main, "k", Ty::I32);
        b.push(main, Stmt::decl(k, Some(Expr::lit(3))));
        b.push(
            main,
            Stmt::assign(
                LValue::global(g),
                Expr::binary(BinOp::Add, Expr::local(k), Expr::lit(1)),
            ),
        );
        b.push(main, Stmt::ret(None));
        let mut p = b.finish();
        p.assign_lines();
        let loops = induction_variables(&p);
        let liveness = LivenessInfo::compute(&p);
        let sites = global_store_sites(&p, &loops, &liveness);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].constituents.len(), 1);
        assert_eq!(
            sites[0].constituents[0].kind,
            ConstituentKind::ConstantValued
        );
    }

    #[test]
    fn address_constants_are_detected() {
        let mut b = ProgramBuilder::new();
        let g = b.global("b", Ty::I32, false, vec![0]);
        let out = b.global("out", Ty::I64, false, vec![0]);
        let main = b.function("main", Ty::I32);
        let p1 = b.local(main, "v1", Ty::Ptr(&Ty::I32));
        b.push(main, Stmt::decl(p1, Some(Expr::addr_of(VarRef::Global(g)))));
        b.push(
            main,
            Stmt::assign(
                LValue::global(out),
                Expr::binary(BinOp::Add, Expr::local(p1), Expr::lit(0)),
            ),
        );
        b.push(main, Stmt::ret(None));
        let mut prog = b.finish();
        prog.assign_lines();
        let loops = induction_variables(&prog);
        let liveness = LivenessInfo::compute(&prog);
        let sites = global_store_sites(&prog, &loops, &liveness);
        assert_eq!(sites.len(), 1);
        assert_eq!(
            sites[0].constituents[0].kind,
            ConstituentKind::AddressConstant
        );
    }

    #[test]
    fn simplifiable_expressions_are_flagged() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let main = b.function("main", Ty::I32);
        let v = b.local(main, "v", Ty::I32);
        b.push(main, Stmt::decl(v, Some(Expr::lit(7))));
        b.push(
            main,
            Stmt::assign(
                LValue::global(g),
                Expr::binary(BinOp::And, Expr::local(v), Expr::lit(0)),
            ),
        );
        b.push(main, Stmt::ret(None));
        let mut p = b.finish();
        p.assign_lines();
        let loops = induction_variables(&p);
        let liveness = LivenessInfo::compute(&p);
        let sites = global_store_sites(&p, &loops, &liveness);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].simplifiable);
    }

    #[test]
    fn mutable_temporaries_are_not_constituents() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let h = b.global("h", Ty::I32, false, vec![9]);
        let main = b.function("main", Ty::I32);
        let t = b.local(main, "t", Ty::I32);
        b.push(main, Stmt::decl(t, Some(Expr::global(h))));
        b.push(
            main,
            Stmt::assign(
                LValue::global(g),
                Expr::binary(BinOp::Add, Expr::local(t), Expr::lit(1)),
            ),
        );
        b.push(main, Stmt::ret(None));
        let mut p = b.finish();
        p.assign_lines();
        let loops = induction_variables(&p);
        let liveness = LivenessInfo::compute(&p);
        let sites = global_store_sites(&p, &loops, &liveness);
        // t is assigned from a global read: not constant, not an induction
        // variable, so the conjecture makes no claim and the site is dropped.
        assert!(sites.is_empty());
    }

    #[test]
    fn local_assignment_sites_are_ordered() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", Ty::I32);
        let x = b.local(main, "x", Ty::I32);
        b.push(main, Stmt::decl(x, Some(Expr::lit(1))));
        b.push(main, Stmt::assign(LValue::local(x), Expr::lit(2)));
        b.push(main, Stmt::ret(Some(Expr::local(x))));
        let mut p = b.finish();
        p.assign_lines();
        let sites = local_assignment_sites(&p);
        assert_eq!(sites.len(), 2);
        assert!(sites[0].line < sites[1].line);
        assert_eq!(sites[0].local, x);
    }
}
