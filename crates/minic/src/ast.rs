//! Abstract syntax tree for MiniC programs.
//!
//! Every statement carries a `line` field filled in by
//! [`Program::assign_lines`]; until then it is zero. Line numbers are the
//! common currency between the source program, the debug information emitted
//! by the compiler, and the conjectures of the paper.

use std::fmt;

/// Integer types available in MiniC. All arithmetic is performed on `i64`
/// with wrap-around, then truncated to the destination type on store, so no
/// operation has undefined behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ty {
    /// Signed 8-bit integer (`char`).
    I8,
    /// Signed 16-bit integer (`short`).
    I16,
    /// Signed 32-bit integer (`int`).
    I32,
    /// Signed 64-bit integer (`long`).
    I64,
    /// Unsigned 8-bit integer.
    U8,
    /// Unsigned 16-bit integer.
    U16,
    /// Unsigned 32-bit integer.
    U32,
    /// Unsigned 64-bit integer.
    U64,
    /// Pointer to a scalar of the given type.
    Ptr(&'static Ty),
}

impl Ty {
    /// All scalar (non-pointer) types.
    pub const SCALARS: [Ty; 8] = [
        Ty::I8,
        Ty::I16,
        Ty::I32,
        Ty::I64,
        Ty::U8,
        Ty::U16,
        Ty::U32,
        Ty::U64,
    ];

    /// Width of the type in bits.
    pub fn bits(self) -> u32 {
        match self {
            Ty::I8 | Ty::U8 => 8,
            Ty::I16 | Ty::U16 => 16,
            Ty::I32 | Ty::U32 => 32,
            Ty::I64 | Ty::U64 | Ty::Ptr(_) => 64,
        }
    }

    /// Whether the type is signed.
    pub fn signed(self) -> bool {
        matches!(self, Ty::I8 | Ty::I16 | Ty::I32 | Ty::I64)
    }

    /// Whether the type is a pointer.
    pub fn is_pointer(self) -> bool {
        matches!(self, Ty::Ptr(_))
    }

    /// Truncate (and sign- or zero-extend) a raw 64-bit value to this type.
    ///
    /// This is the single place where MiniC defines integer conversion, and
    /// it is total: every `i64` maps to a valid value of every type.
    pub fn wrap(self, value: i64) -> i64 {
        let bits = self.bits();
        if bits == 64 {
            return value;
        }
        let mask = (1u64 << bits) - 1;
        let truncated = (value as u64) & mask;
        if self.signed() {
            let sign_bit = 1u64 << (bits - 1);
            if truncated & sign_bit != 0 {
                (truncated | !mask) as i64
            } else {
                truncated as i64
            }
        } else {
            truncated as i64
        }
    }

    /// The C spelling of this type, used by the source renderer.
    pub fn c_name(self) -> &'static str {
        match self {
            Ty::I8 => "signed char",
            Ty::I16 => "short",
            Ty::I32 => "int",
            Ty::I64 => "long",
            Ty::U8 => "unsigned char",
            Ty::U16 => "unsigned short",
            Ty::U32 => "unsigned int",
            Ty::U64 => "unsigned long",
            Ty::Ptr(inner) => match *inner {
                Ty::I32 => "int *",
                Ty::I64 => "long *",
                _ => "void *",
            },
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.c_name())
    }
}

/// Identifier of a global variable within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub usize);

/// Identifier of a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FunctionId(pub usize);

/// Identifier of a local variable (or parameter) within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalId(pub usize);

impl fmt::Display for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl fmt::Display for LocalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A reference to a variable: either a global of the program or a local of
/// the enclosing function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VarRef {
    /// A program global.
    Global(GlobalId),
    /// A local variable or parameter of the current function.
    Local(LocalId),
}

impl VarRef {
    /// Returns the local id if this is a local reference.
    pub fn as_local(self) -> Option<LocalId> {
        match self {
            VarRef::Local(l) => Some(l),
            VarRef::Global(_) => None,
        }
    }

    /// Returns the global id if this is a global reference.
    pub fn as_global(self) -> Option<GlobalId> {
        match self {
            VarRef::Global(g) => Some(g),
            VarRef::Local(_) => None,
        }
    }
}

/// Binary operators. Division, remainder and shifts are deliberately absent
/// so that no expression can trap or have undefined behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Equality comparison (yields 0 or 1).
    Eq,
    /// Inequality comparison.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl BinOp {
    /// All binary operators.
    pub const ALL: [BinOp; 12] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ];

    /// Whether the operator yields a boolean (0/1) result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Evaluate the operator on two raw 64-bit values.
    pub fn eval(self, lhs: i64, rhs: i64) -> i64 {
        match self {
            BinOp::Add => lhs.wrapping_add(rhs),
            BinOp::Sub => lhs.wrapping_sub(rhs),
            BinOp::Mul => lhs.wrapping_mul(rhs),
            BinOp::And => lhs & rhs,
            BinOp::Or => lhs | rhs,
            BinOp::Xor => lhs ^ rhs,
            BinOp::Eq => (lhs == rhs) as i64,
            BinOp::Ne => (lhs != rhs) as i64,
            BinOp::Lt => (lhs < rhs) as i64,
            BinOp::Le => (lhs <= rhs) as i64,
            BinOp::Gt => (lhs > rhs) as i64,
            BinOp::Ge => (lhs >= rhs) as i64,
        }
    }

    /// The C spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation (wrapping).
    Neg,
    /// Bitwise complement.
    Not,
    /// Logical negation (yields 0 or 1).
    LogicalNot,
}

impl UnOp {
    /// Evaluate the operator on a raw 64-bit value.
    pub fn eval(self, value: i64) -> i64 {
        match self {
            UnOp::Neg => value.wrapping_neg(),
            UnOp::Not => !value,
            UnOp::LogicalNot => (value == 0) as i64,
        }
    }

    /// The C spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "~",
            UnOp::LogicalNot => "!",
        }
    }
}

/// An expression. Expressions are side-effect free except for [`ExprKind::Call`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// The expression node.
    pub kind: ExprKind,
}

/// Expression variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// An integer literal.
    Lit(i64),
    /// A variable read.
    Var(VarRef),
    /// Read of an element of a (global) array: `base[i0][i1]...`.
    Index {
        /// The array variable, always a global array in generated programs.
        base: VarRef,
        /// One index expression per dimension.
        indices: Vec<Expr>,
    },
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Address of a variable (`&x`). The result is a pointer value.
    AddrOf(VarRef),
    /// Dereference of a pointer-valued expression (`*p`).
    Deref(Box<Expr>),
    /// Call to an internal (defined) function; opaque functions may only be
    /// called at statement level.
    Call {
        /// Callee function.
        callee: FunctionId,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// An integer literal expression.
    pub fn lit(value: i64) -> Expr {
        Expr {
            kind: ExprKind::Lit(value),
        }
    }

    /// A variable read expression.
    pub fn var(var: VarRef) -> Expr {
        Expr {
            kind: ExprKind::Var(var),
        }
    }

    /// A local variable read expression.
    pub fn local(local: LocalId) -> Expr {
        Expr::var(VarRef::Local(local))
    }

    /// A global variable read expression.
    pub fn global(global: GlobalId) -> Expr {
        Expr::var(VarRef::Global(global))
    }

    /// A binary operation expression.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr {
            kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
        }
    }

    /// A unary operation expression.
    pub fn unary(op: UnOp, operand: Expr) -> Expr {
        Expr {
            kind: ExprKind::Unary(op, Box::new(operand)),
        }
    }

    /// An array-indexing expression.
    pub fn index(base: VarRef, indices: Vec<Expr>) -> Expr {
        Expr {
            kind: ExprKind::Index { base, indices },
        }
    }

    /// An address-of expression.
    pub fn addr_of(var: VarRef) -> Expr {
        Expr {
            kind: ExprKind::AddrOf(var),
        }
    }

    /// A pointer dereference expression.
    pub fn deref(inner: Expr) -> Expr {
        Expr {
            kind: ExprKind::Deref(Box::new(inner)),
        }
    }

    /// A call expression to an internal function.
    pub fn call(callee: FunctionId, args: Vec<Expr>) -> Expr {
        Expr {
            kind: ExprKind::Call { callee, args },
        }
    }

    /// Collect every variable read (not written) by this expression,
    /// in left-to-right order, including duplicates.
    pub fn reads(&self) -> Vec<VarRef> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads(&self, out: &mut Vec<VarRef>) {
        match &self.kind {
            ExprKind::Lit(_) => {}
            ExprKind::Var(v) => out.push(*v),
            ExprKind::Index { base, indices } => {
                out.push(*base);
                for idx in indices {
                    idx.collect_reads(out);
                }
            }
            ExprKind::Unary(_, inner) => inner.collect_reads(out),
            ExprKind::Binary(_, lhs, rhs) => {
                lhs.collect_reads(out);
                rhs.collect_reads(out);
            }
            ExprKind::AddrOf(v) => out.push(*v),
            ExprKind::Deref(inner) => inner.collect_reads(out),
            ExprKind::Call { args, .. } => {
                for arg in args {
                    arg.collect_reads(out);
                }
            }
        }
    }

    /// Whether this expression is a plain literal.
    pub fn is_literal(&self) -> bool {
        matches!(self.kind, ExprKind::Lit(_))
    }

    /// Whether this expression contains a call (the only source of side
    /// effects inside expressions).
    pub fn contains_call(&self) -> bool {
        match &self.kind {
            ExprKind::Lit(_) | ExprKind::Var(_) | ExprKind::AddrOf(_) => false,
            ExprKind::Index { indices, .. } => indices.iter().any(Expr::contains_call),
            ExprKind::Unary(_, inner) | ExprKind::Deref(inner) => inner.contains_call(),
            ExprKind::Binary(_, lhs, rhs) => lhs.contains_call() || rhs.contains_call(),
            ExprKind::Call { .. } => true,
        }
    }

    /// Number of nodes in the expression tree (used by the reducer to pick
    /// simplification candidates).
    pub fn size(&self) -> usize {
        1 + match &self.kind {
            ExprKind::Lit(_) | ExprKind::Var(_) | ExprKind::AddrOf(_) => 0,
            ExprKind::Index { indices, .. } => indices.iter().map(Expr::size).sum(),
            ExprKind::Unary(_, inner) | ExprKind::Deref(inner) => inner.size(),
            ExprKind::Binary(_, lhs, rhs) => lhs.size() + rhs.size(),
            ExprKind::Call { args, .. } => args.iter().map(Expr::size).sum(),
        }
    }
}

/// The target of an assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValue {
    /// A plain variable.
    Var(VarRef),
    /// An element of a (global) array.
    Index {
        /// The array variable.
        base: VarRef,
        /// One index expression per dimension.
        indices: Vec<Expr>,
    },
    /// A store through a pointer-typed variable (`*p = ...`).
    Deref(VarRef),
}

impl LValue {
    /// Assignment target referring to a global scalar.
    pub fn global(global: GlobalId) -> LValue {
        LValue::Var(VarRef::Global(global))
    }

    /// Assignment target referring to a local scalar.
    pub fn local(local: LocalId) -> LValue {
        LValue::Var(VarRef::Local(local))
    }

    /// The variable written to (for [`LValue::Deref`] this is the pointer
    /// variable that is *read*; the written storage is indirect).
    pub fn base_var(&self) -> VarRef {
        match self {
            LValue::Var(v) => *v,
            LValue::Index { base, .. } => *base,
            LValue::Deref(v) => *v,
        }
    }

    /// Variables read while evaluating the target (indices and the pointer of
    /// a deref target).
    pub fn reads(&self) -> Vec<VarRef> {
        match self {
            LValue::Var(_) => Vec::new(),
            LValue::Index { indices, .. } => {
                let mut out = Vec::new();
                for idx in indices {
                    idx.collect_reads(&mut out);
                }
                out
            }
            LValue::Deref(v) => vec![*v],
        }
    }

    /// Whether the assignment writes to global storage (directly, to a global
    /// array element, or through a pointer — pointers in MiniC may only point
    /// to globals or address-taken locals, and the analyses treat pointer
    /// stores conservatively as global).
    pub fn writes_global_storage(&self) -> bool {
        match self {
            LValue::Var(VarRef::Global(_)) | LValue::Deref(_) => true,
            LValue::Index { base, .. } => matches!(base, VarRef::Global(_)),
            LValue::Var(VarRef::Local(_)) => false,
        }
    }
}

/// A statement, carrying the source line assigned by
/// [`Program::assign_lines`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Source line of the statement (0 until lines are assigned).
    pub line: u32,
    /// The statement node.
    pub kind: StmtKind,
}

/// Statement variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// Declaration of a local variable with an optional initializer.
    Decl {
        /// The declared local.
        local: LocalId,
        /// Optional initializer expression.
        init: Option<Expr>,
    },
    /// An assignment `target = value;`.
    Assign {
        /// Assignment target.
        target: LValue,
        /// Assigned expression.
        value: Expr,
    },
    /// A `for` loop. All parts are optional, as in C.
    For {
        /// Loop initialization (assignment executed once).
        init: Option<Box<Stmt>>,
        /// Loop condition; absent means infinite (never generated).
        cond: Option<Expr>,
        /// Loop step (assignment executed after each iteration).
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// An `if`/`else` statement.
    If {
        /// Condition expression.
        cond: Expr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_branch: Vec<Stmt>,
    },
    /// A call used as a statement. `opaque` calls target the external sink
    /// function that the optimizer must treat as unknown.
    Call {
        /// Callee: either an internal function or the opaque external sink.
        callee: Callee,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `return expr;` or `return;`.
    Return(Option<Expr>),
    /// A `goto` to a label defined in the same function.
    Goto(u32),
    /// A label definition (the `u32` is a function-unique label id).
    Label(u32),
    /// An unnamed scope `{ ... }` (the paper's bug 104891 involves these).
    Block(Vec<Stmt>),
    /// An empty statement used by the reducer to replace removed statements
    /// without perturbing later line numbering decisions.
    Empty,
}

/// The callee of a statement-level call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A function defined in the program.
    Internal(FunctionId),
    /// The opaque external sink function (the paper's `printf` stub): the
    /// optimizer knows nothing about it and must materialize all arguments.
    Opaque,
}

impl Stmt {
    /// Build a declaration statement.
    pub fn decl(local: LocalId, init: Option<Expr>) -> Stmt {
        Stmt {
            line: 0,
            kind: StmtKind::Decl { local, init },
        }
    }

    /// Build an assignment statement.
    pub fn assign(target: LValue, value: Expr) -> Stmt {
        Stmt {
            line: 0,
            kind: StmtKind::Assign { target, value },
        }
    }

    /// Build a `for` loop statement.
    pub fn for_loop(
        init: Option<Stmt>,
        cond: Option<Expr>,
        step: Option<Stmt>,
        body: Vec<Stmt>,
    ) -> Stmt {
        Stmt {
            line: 0,
            kind: StmtKind::For {
                init: init.map(Box::new),
                cond,
                step: step.map(Box::new),
                body,
            },
        }
    }

    /// Build an `if` statement.
    pub fn if_stmt(cond: Expr, then_branch: Vec<Stmt>, else_branch: Vec<Stmt>) -> Stmt {
        Stmt {
            line: 0,
            kind: StmtKind::If {
                cond,
                then_branch,
                else_branch,
            },
        }
    }

    /// Build a statement-level call to an internal function.
    pub fn call_internal(callee: FunctionId, args: Vec<Expr>) -> Stmt {
        Stmt {
            line: 0,
            kind: StmtKind::Call {
                callee: Callee::Internal(callee),
                args,
            },
        }
    }

    /// Build a statement-level call to the opaque external sink.
    pub fn call_opaque(args: Vec<Expr>) -> Stmt {
        Stmt {
            line: 0,
            kind: StmtKind::Call {
                callee: Callee::Opaque,
                args,
            },
        }
    }

    /// Build a `return` statement.
    pub fn ret(value: Option<Expr>) -> Stmt {
        Stmt {
            line: 0,
            kind: StmtKind::Return(value),
        }
    }

    /// Build an unnamed scope.
    pub fn block(body: Vec<Stmt>) -> Stmt {
        Stmt {
            line: 0,
            kind: StmtKind::Block(body),
        }
    }

    /// Build a label definition.
    pub fn label(id: u32) -> Stmt {
        Stmt {
            line: 0,
            kind: StmtKind::Label(id),
        }
    }

    /// Build a `goto`.
    pub fn goto(id: u32) -> Stmt {
        Stmt {
            line: 0,
            kind: StmtKind::Goto(id),
        }
    }

    /// Number of statements in this subtree (used for reduction budgeting).
    pub fn size(&self) -> usize {
        1 + match &self.kind {
            StmtKind::For {
                init, step, body, ..
            } => {
                init.as_ref().map_or(0, |s| s.size())
                    + step.as_ref().map_or(0, |s| s.size())
                    + body.iter().map(Stmt::size).sum::<usize>()
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.iter().map(Stmt::size).sum::<usize>()
                    + else_branch.iter().map(Stmt::size).sum::<usize>()
            }
            StmtKind::Block(body) => body.iter().map(Stmt::size).sum::<usize>(),
            _ => 0,
        }
    }
}

/// A local variable or parameter of a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalVar {
    /// Source-level name.
    pub name: String,
    /// Type.
    pub ty: Ty,
    /// Whether this local is a formal parameter.
    pub is_param: bool,
    /// Whether the local's address is taken anywhere in the function.
    pub address_taken: bool,
}

/// A global variable of the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalVar {
    /// Source-level name.
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// Array dimensions; empty for scalars.
    pub dims: Vec<usize>,
    /// Whether the global is declared `volatile` (optimizers must preserve
    /// every access).
    pub is_volatile: bool,
    /// Flattened initializer values (row-major); length is the product of the
    /// dimensions, or 1 for scalars.
    pub init: Vec<i64>,
}

impl GlobalVar {
    /// Total number of scalar elements.
    pub fn element_count(&self) -> usize {
        if self.dims.is_empty() {
            1
        } else {
            self.dims.iter().product()
        }
    }

    /// Whether this global is an array.
    pub fn is_array(&self) -> bool {
        !self.dims.is_empty()
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Source-level name (`main`, `f1`, ...).
    pub name: String,
    /// Return type.
    pub ret_ty: Ty,
    /// All locals; the first [`Function::param_count`] entries are parameters.
    pub locals: Vec<LocalVar>,
    /// Number of formal parameters.
    pub param_count: usize,
    /// Function body.
    pub body: Vec<Stmt>,
    /// Source line of the opening `{` (assigned with the rest of the lines).
    pub decl_line: u32,
}

impl Function {
    /// Iterator over parameter ids.
    pub fn params(&self) -> impl Iterator<Item = LocalId> + '_ {
        (0..self.param_count).map(LocalId)
    }

    /// Look up a local by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this function.
    pub fn local(&self, id: LocalId) -> &LocalVar {
        &self.locals[id.0]
    }

    /// Total number of statements in the body (recursively).
    pub fn stmt_count(&self) -> usize {
        self.body.iter().map(Stmt::size).sum()
    }
}

/// A complete MiniC program: globals plus functions, `main` last by
/// convention of the generator but located by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Global variables.
    pub globals: Vec<GlobalVar>,
    /// Function definitions.
    pub functions: Vec<Function>,
}

impl Program {
    /// Create an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Look up a global by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn global(&self, id: GlobalId) -> &GlobalVar {
        &self.globals[id.0]
    }

    /// Look up a function by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn function(&self, id: FunctionId) -> &Function {
        &self.functions[id.0]
    }

    /// Find the `main` function.
    ///
    /// # Panics
    ///
    /// Panics if the program has no `main` (the builder and generator always
    /// produce one).
    pub fn main(&self) -> FunctionId {
        self.functions
            .iter()
            .position(|f| f.name == "main")
            .map(FunctionId)
            .expect("program has no main function")
    }

    /// Iterate over `(id, function)` pairs.
    pub fn functions_with_ids(&self) -> impl Iterator<Item = (FunctionId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FunctionId(i), f))
    }

    /// Total number of statements across all functions.
    pub fn stmt_count(&self) -> usize {
        self.functions.iter().map(Function::stmt_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ty_wrap_signed_and_unsigned() {
        assert_eq!(Ty::I8.wrap(130), -126);
        assert_eq!(Ty::U8.wrap(130), 130);
        assert_eq!(Ty::U8.wrap(256), 0);
        assert_eq!(Ty::I16.wrap(65535), -1);
        assert_eq!(Ty::U16.wrap(65535), 65535);
        assert_eq!(Ty::I32.wrap(1 << 40), 0);
        assert_eq!(Ty::I64.wrap(i64::MIN), i64::MIN);
    }

    #[test]
    fn ty_wrap_is_idempotent() {
        for ty in Ty::SCALARS {
            for v in [-1, 0, 1, 127, 128, -129, 65536, i64::MAX, i64::MIN] {
                assert_eq!(ty.wrap(ty.wrap(v)), ty.wrap(v), "{ty:?} {v}");
            }
        }
    }

    #[test]
    fn binop_eval_basic() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Mul.eval(i64::MAX, 2), -2);
        assert_eq!(BinOp::Lt.eval(1, 2), 1);
        assert_eq!(BinOp::Ge.eval(1, 2), 0);
        assert_eq!(BinOp::Xor.eval(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn unop_eval_basic() {
        assert_eq!(UnOp::Neg.eval(5), -5);
        assert_eq!(UnOp::Not.eval(0), -1);
        assert_eq!(UnOp::LogicalNot.eval(0), 1);
        assert_eq!(UnOp::LogicalNot.eval(3), 0);
    }

    #[test]
    fn expr_reads_collects_in_order() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::local(LocalId(0)),
            Expr::index(VarRef::Global(GlobalId(1)), vec![Expr::local(LocalId(2))]),
        );
        assert_eq!(
            e.reads(),
            vec![
                VarRef::Local(LocalId(0)),
                VarRef::Global(GlobalId(1)),
                VarRef::Local(LocalId(2))
            ]
        );
    }

    #[test]
    fn expr_size_counts_nodes() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::lit(1),
            Expr::unary(UnOp::Neg, Expr::lit(2)),
        );
        assert_eq!(e.size(), 4);
    }

    #[test]
    fn lvalue_global_storage_classification() {
        assert!(LValue::global(GlobalId(0)).writes_global_storage());
        assert!(!LValue::local(LocalId(0)).writes_global_storage());
        assert!(LValue::Deref(VarRef::Local(LocalId(0))).writes_global_storage());
        assert!(LValue::Index {
            base: VarRef::Global(GlobalId(0)),
            indices: vec![Expr::lit(0)]
        }
        .writes_global_storage());
    }

    #[test]
    fn stmt_size_recurses() {
        let s = Stmt::for_loop(
            Some(Stmt::assign(LValue::local(LocalId(0)), Expr::lit(0))),
            Some(Expr::lit(1)),
            Some(Stmt::assign(LValue::local(LocalId(0)), Expr::lit(1))),
            vec![Stmt::call_opaque(vec![]), Stmt::ret(None)],
        );
        assert_eq!(s.size(), 5);
    }

    #[test]
    fn global_var_element_count() {
        let g = GlobalVar {
            name: "a".into(),
            ty: Ty::I32,
            dims: vec![2, 3, 4],
            is_volatile: false,
            init: vec![0; 24],
        };
        assert_eq!(g.element_count(), 24);
        assert!(g.is_array());
    }
}
