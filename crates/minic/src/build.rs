//! A small builder API for constructing MiniC programs by hand.
//!
//! The program generator ([`holes_progen`](https://docs.rs/holes-progen)) and
//! the directed test programs that mirror the paper's bug case studies are
//! both written against this builder.

use crate::ast::{
    Expr, Function, FunctionId, GlobalId, GlobalVar, LocalId, LocalVar, Program, Stmt, Ty,
};

/// Incrementally builds a [`Program`].
///
/// # Example
///
/// ```
/// use holes_minic::ast::{Expr, LValue, Stmt, Ty, VarRef};
/// use holes_minic::build::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new();
/// let g = b.global("g", Ty::I32, false, vec![1]);
/// let main = b.function("main", Ty::I32);
/// b.push(main, Stmt::assign(LValue::global(g), Expr::lit(42)));
/// b.push(main, Stmt::ret(Some(Expr::lit(0))));
/// let program = b.finish();
/// assert_eq!(program.globals.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Create an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Add a scalar or array global variable and return its id.
    ///
    /// For scalars pass the single initial value in `init`; for arrays call
    /// [`ProgramBuilder::global_array`].
    pub fn global(&mut self, name: &str, ty: Ty, volatile: bool, init: Vec<i64>) -> GlobalId {
        assert!(!init.is_empty(), "global initializer must not be empty");
        self.program.globals.push(GlobalVar {
            name: name.to_owned(),
            ty,
            dims: Vec::new(),
            is_volatile: volatile,
            init,
        });
        GlobalId(self.program.globals.len() - 1)
    }

    /// Add a (possibly multi-dimensional) global array and return its id.
    ///
    /// # Panics
    ///
    /// Panics if `init` does not have exactly `dims.iter().product()`
    /// elements.
    pub fn global_array(
        &mut self,
        name: &str,
        ty: Ty,
        volatile: bool,
        dims: Vec<usize>,
        init: Vec<i64>,
    ) -> GlobalId {
        let expected: usize = dims.iter().product();
        assert_eq!(
            init.len(),
            expected,
            "array initializer length must match dimensions"
        );
        self.program.globals.push(GlobalVar {
            name: name.to_owned(),
            ty,
            dims,
            is_volatile: volatile,
            init,
        });
        GlobalId(self.program.globals.len() - 1)
    }

    /// Add a new function with no parameters and return its id.
    pub fn function(&mut self, name: &str, ret_ty: Ty) -> FunctionId {
        self.program.functions.push(Function {
            name: name.to_owned(),
            ret_ty,
            locals: Vec::new(),
            param_count: 0,
            body: Vec::new(),
            decl_line: 0,
        });
        FunctionId(self.program.functions.len() - 1)
    }

    /// Add a formal parameter to a function. Must be called before any
    /// non-parameter local is added.
    ///
    /// # Panics
    ///
    /// Panics if a non-parameter local already exists for the function.
    pub fn param(&mut self, func: FunctionId, name: &str, ty: Ty) -> LocalId {
        let f = &mut self.program.functions[func.0];
        assert_eq!(
            f.locals.len(),
            f.param_count,
            "parameters must be declared before locals"
        );
        f.locals.push(LocalVar {
            name: name.to_owned(),
            ty,
            is_param: true,
            address_taken: false,
        });
        f.param_count += 1;
        LocalId(f.locals.len() - 1)
    }

    /// Add a local variable to a function and return its id.
    pub fn local(&mut self, func: FunctionId, name: &str, ty: Ty) -> LocalId {
        let f = &mut self.program.functions[func.0];
        f.locals.push(LocalVar {
            name: name.to_owned(),
            ty,
            is_param: false,
            address_taken: false,
        });
        LocalId(f.locals.len() - 1)
    }

    /// Append a statement to a function body.
    pub fn push(&mut self, func: FunctionId, stmt: Stmt) {
        self.program.functions[func.0].body.push(stmt);
    }

    /// Append several statements to a function body.
    pub fn push_all(&mut self, func: FunctionId, stmts: impl IntoIterator<Item = Stmt>) {
        self.program.functions[func.0].body.extend(stmts);
    }

    /// Mark a local as address-taken (done automatically by
    /// [`ProgramBuilder::finish`] for any local whose address is taken in the
    /// body, but exposed for tests).
    pub fn mark_address_taken(&mut self, func: FunctionId, local: LocalId) {
        self.program.functions[func.0].locals[local.0].address_taken = true;
    }

    /// Read-only access to the program built so far.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Finish building: computes the `address_taken` flags and returns the
    /// program. Line numbers are *not* assigned; call
    /// [`Program::assign_lines`] on the result.
    pub fn finish(mut self) -> Program {
        compute_address_taken(&mut self.program);
        self.program
    }
}

/// Recompute the `address_taken` flag of every local from the program body.
pub fn compute_address_taken(program: &mut Program) {
    for func in &mut program.functions {
        let mut taken = vec![false; func.locals.len()];
        for stmt in &func.body {
            mark_stmt(stmt, &mut taken);
        }
        for (local, flag) in func.locals.iter_mut().zip(taken) {
            local.address_taken = flag;
        }
    }
}

fn mark_stmt(stmt: &Stmt, taken: &mut [bool]) {
    use crate::ast::StmtKind::*;
    match &stmt.kind {
        Decl { init, .. } => {
            if let Some(e) = init {
                mark_expr(e, taken);
            }
        }
        Assign { target, value } => {
            for v in target.reads() {
                let _ = v;
            }
            if let crate::ast::LValue::Index { indices, .. } = target {
                for idx in indices {
                    mark_expr(idx, taken);
                }
            }
            mark_expr(value, taken);
        }
        For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(s) = init {
                mark_stmt(s, taken);
            }
            if let Some(c) = cond {
                mark_expr(c, taken);
            }
            if let Some(s) = step {
                mark_stmt(s, taken);
            }
            for s in body {
                mark_stmt(s, taken);
            }
        }
        If {
            cond,
            then_branch,
            else_branch,
        } => {
            mark_expr(cond, taken);
            for s in then_branch.iter().chain(else_branch) {
                mark_stmt(s, taken);
            }
        }
        Call { args, .. } => {
            for a in args {
                mark_expr(a, taken);
            }
        }
        Return(Some(e)) => mark_expr(e, taken),
        Block(body) => {
            for s in body {
                mark_stmt(s, taken);
            }
        }
        Return(None) | Goto(_) | Label(_) | Empty => {}
    }
}

fn mark_expr(expr: &Expr, taken: &mut [bool]) {
    use crate::ast::ExprKind::*;
    match &expr.kind {
        AddrOf(crate::ast::VarRef::Local(l)) => taken[l.0] = true,
        AddrOf(_) | Lit(_) | Var(_) => {}
        Index { indices, .. } => {
            for idx in indices {
                mark_expr(idx, taken);
            }
        }
        Unary(_, inner) | Deref(inner) => mark_expr(inner, taken),
        Binary(_, lhs, rhs) => {
            mark_expr(lhs, taken);
            mark_expr(rhs, taken);
        }
        Call { args, .. } => {
            for a in args {
                mark_expr(a, taken);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{LValue, VarRef};

    #[test]
    fn builder_constructs_program() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, true, vec![0]);
        let f = b.function("main", Ty::I32);
        let x = b.local(f, "x", Ty::I32);
        b.push(f, Stmt::decl(x, Some(Expr::lit(3))));
        b.push(f, Stmt::assign(LValue::global(g), Expr::local(x)));
        b.push(f, Stmt::ret(Some(Expr::lit(0))));
        let p = b.finish();
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.function(FunctionId(0)).body.len(), 3);
        assert!(p.global(g).is_volatile);
    }

    #[test]
    fn address_taken_is_computed() {
        let mut b = ProgramBuilder::new();
        let f = b.function("main", Ty::I32);
        let x = b.local(f, "x", Ty::I32);
        let p = b.local(f, "p", Ty::Ptr(&Ty::I32));
        b.push(f, Stmt::decl(x, Some(Expr::lit(1))));
        b.push(f, Stmt::decl(p, Some(Expr::addr_of(VarRef::Local(x)))));
        b.push(f, Stmt::ret(None));
        let prog = b.finish();
        assert!(prog.functions[0].locals[x.0].address_taken);
        assert!(!prog.functions[0].locals[p.0].address_taken);
    }

    #[test]
    #[should_panic(expected = "array initializer length")]
    fn array_initializer_length_checked() {
        let mut b = ProgramBuilder::new();
        b.global_array("a", Ty::I32, false, vec![2, 2], vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "parameters must be declared before locals")]
    fn params_before_locals() {
        let mut b = ProgramBuilder::new();
        let f = b.function("f", Ty::I32);
        b.local(f, "x", Ty::I32);
        b.param(f, "p", Ty::I32);
    }
}
