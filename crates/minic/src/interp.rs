//! Reference interpreter for MiniC.
//!
//! The interpreter executes the AST directly and records every externally
//! visible effect: the arguments of every call to the opaque `sink` function,
//! the final values of all globals, and `main`'s return value. The optimizing
//! compiler in `holes-compiler` is differentially tested against this
//! interpreter: for every generated program and every optimization level, the
//! compiled executable must produce an identical [`ExecOutcome`].

use std::collections::HashMap;

use crate::ast::{
    Callee, Expr, ExprKind, Function, FunctionId, LValue, LocalId, Program, Stmt, StmtKind, VarRef,
};

/// Base address assigned to global storage.
pub const GLOBAL_BASE: i64 = 0x1000_0000;
/// Base address assigned to address-taken locals (the simulated stack).
pub const STACK_BASE: i64 = 0x7000_0000;

/// Everything externally observable about one program execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Arguments of each `sink(...)` call, in call order.
    pub sink_calls: Vec<Vec<i64>>,
    /// Final value of every global, flattened row-major, indexed by global id.
    pub final_globals: Vec<Vec<i64>>,
    /// Return value of `main`.
    pub return_value: i64,
    /// Number of statements executed (a rough cost measure).
    pub steps: u64,
}

/// Errors the interpreter can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The step budget was exhausted; the program may not terminate.
    OutOfFuel,
    /// An array access was out of bounds (generated programs never do this;
    /// hand-written ones might).
    OutOfBounds {
        /// Name of the array involved.
        array: String,
        /// The flattened index that was attempted.
        index: i64,
    },
    /// A pointer dereference hit an address that maps to no storage.
    WildPointer(i64),
    /// A `goto` targeted a label that does not exist in the function.
    UnknownLabel(u32),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::OutOfFuel => write!(f, "execution exceeded the step budget"),
            ExecError::OutOfBounds { array, index } => {
                write!(
                    f,
                    "out-of-bounds access to {array} at flattened index {index}"
                )
            }
            ExecError::WildPointer(addr) => write!(f, "dereference of wild pointer {addr:#x}"),
            ExecError::UnknownLabel(l) => write!(f, "goto to unknown label L{l}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// What a statement told its enclosing block to do next.
enum Flow {
    Normal,
    Return(i64),
    Goto(u32),
}

/// The reference interpreter. Create one per execution.
#[derive(Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    globals: Vec<Vec<i64>>,
    global_base: Vec<i64>,
    stack_mem: Vec<i64>,
    sink_calls: Vec<Vec<i64>>,
    steps: u64,
    fuel: u64,
}

/// Default execution budget (statements). Generated programs stay far below
/// this; it exists to make non-termination observable instead of hanging.
pub const DEFAULT_FUEL: u64 = 2_000_000;

struct Frame<'f> {
    func: &'f Function,
    locals: Vec<i64>,
    /// For address-taken locals: index into the interpreter's stack memory.
    slots: HashMap<LocalId, usize>,
}

impl<'p> Interpreter<'p> {
    /// Create an interpreter for a program with the default fuel.
    pub fn new(program: &'p Program) -> Interpreter<'p> {
        Interpreter::with_fuel(program, DEFAULT_FUEL)
    }

    /// Create an interpreter with an explicit step budget.
    pub fn with_fuel(program: &'p Program, fuel: u64) -> Interpreter<'p> {
        let mut global_base = Vec::with_capacity(program.globals.len());
        let mut offset = 0i64;
        for g in &program.globals {
            global_base.push(GLOBAL_BASE + offset * 8);
            offset += g.element_count() as i64;
        }
        Interpreter {
            program,
            globals: program.globals.iter().map(|g| g.init.clone()).collect(),
            global_base,
            stack_mem: Vec::new(),
            sink_calls: Vec::new(),
            steps: 0,
            fuel,
        }
    }

    /// Execute `main` and return the observable outcome.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] if the program runs out of fuel, performs an
    /// out-of-bounds access, dereferences a wild pointer, or jumps to an
    /// unknown label.
    pub fn run(mut self) -> Result<ExecOutcome, ExecError> {
        let main = self.program.main();
        let ret = self.call_function(main, &[])?;
        Ok(ExecOutcome {
            sink_calls: self.sink_calls,
            final_globals: self.globals,
            return_value: ret,
            steps: self.steps,
        })
    }

    fn call_function(&mut self, id: FunctionId, args: &[i64]) -> Result<i64, ExecError> {
        let func = self.program.function(id);
        let mut locals = vec![0i64; func.locals.len()];
        for (i, arg) in args.iter().enumerate().take(func.param_count) {
            locals[i] = func.locals[i].ty.wrap(*arg);
        }
        let mut slots = HashMap::new();
        for (i, local) in func.locals.iter().enumerate() {
            if local.address_taken {
                let slot = self.stack_mem.len();
                self.stack_mem.push(locals[i]);
                slots.insert(LocalId(i), slot);
            }
        }
        let stack_watermark = self.stack_mem.len();
        let mut frame = Frame {
            func,
            locals,
            slots,
        };
        let flow = self.exec_block(&mut frame, &func.body)?;
        // Address-taken locals live in stack memory; frames are popped LIFO so
        // truncation keeps addresses of live frames valid.
        self.stack_mem
            .truncate(stack_watermark.min(self.stack_mem.len()));
        match flow {
            Flow::Return(v) => Ok(func.ret_ty.wrap(v)),
            Flow::Normal => Ok(0),
            Flow::Goto(l) => Err(ExecError::UnknownLabel(l)),
        }
    }

    fn exec_block(&mut self, frame: &mut Frame<'_>, stmts: &[Stmt]) -> Result<Flow, ExecError> {
        let mut index = 0usize;
        while index < stmts.len() {
            let stmt = &stmts[index];
            match self.exec_stmt(frame, stmt)? {
                Flow::Normal => index += 1,
                Flow::Return(v) => return Ok(Flow::Return(v)),
                Flow::Goto(label) => {
                    // Labels are only generated at the top level of a function
                    // body or the current block; search this block first.
                    if let Some(pos) = stmts
                        .iter()
                        .position(|s| matches!(s.kind, StmtKind::Label(l) if l == label))
                    {
                        index = pos + 1;
                    } else {
                        return Ok(Flow::Goto(label));
                    }
                }
            }
        }
        Ok(Flow::Normal)
    }

    fn burn(&mut self) -> Result<(), ExecError> {
        self.steps += 1;
        if self.steps > self.fuel {
            Err(ExecError::OutOfFuel)
        } else {
            Ok(())
        }
    }

    fn exec_stmt(&mut self, frame: &mut Frame<'_>, stmt: &Stmt) -> Result<Flow, ExecError> {
        self.burn()?;
        match &stmt.kind {
            StmtKind::Decl { local, init } => {
                let value = match init {
                    Some(e) => self.eval(frame, e)?,
                    None => 0,
                };
                self.write_local(frame, *local, value);
                Ok(Flow::Normal)
            }
            StmtKind::Assign { target, value } => {
                let v = self.eval(frame, value)?;
                self.write_lvalue(frame, target, v)?;
                Ok(Flow::Normal)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(s) = init {
                    self.exec_stmt(frame, s)?;
                }
                loop {
                    self.burn()?;
                    let go = match cond {
                        Some(c) => self.eval(frame, c)? != 0,
                        None => true,
                    };
                    if !go {
                        break;
                    }
                    match self.exec_block(frame, body)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                    if let Some(s) = step {
                        self.exec_stmt(frame, s)?;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.eval(frame, cond)?;
                if c != 0 {
                    self.exec_block(frame, then_branch)
                } else {
                    self.exec_block(frame, else_branch)
                }
            }
            StmtKind::Call { callee, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(frame, a)?);
                }
                match callee {
                    Callee::Opaque => {
                        self.sink_calls.push(values);
                    }
                    Callee::Internal(f) => {
                        self.call_function(*f, &values)?;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Return(value) => {
                let v = match value {
                    Some(e) => self.eval(frame, e)?,
                    None => 0,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Goto(label) => Ok(Flow::Goto(*label)),
            StmtKind::Label(_) | StmtKind::Empty => Ok(Flow::Normal),
            StmtKind::Block(body) => self.exec_block(frame, body),
        }
    }

    fn write_local(&mut self, frame: &mut Frame<'_>, local: LocalId, value: i64) {
        let wrapped = frame.func.local(local).ty.wrap(value);
        frame.locals[local.0] = wrapped;
        if let Some(&slot) = frame.slots.get(&local) {
            self.stack_mem[slot] = wrapped;
        }
    }

    fn read_local(&self, frame: &Frame<'_>, local: LocalId) -> i64 {
        if let Some(&slot) = frame.slots.get(&local) {
            self.stack_mem[slot]
        } else {
            frame.locals[local.0]
        }
    }

    fn write_lvalue(
        &mut self,
        frame: &mut Frame<'_>,
        target: &LValue,
        value: i64,
    ) -> Result<(), ExecError> {
        match target {
            LValue::Var(VarRef::Local(l)) => {
                self.write_local(frame, *l, value);
                Ok(())
            }
            LValue::Var(VarRef::Global(g)) => {
                let ty = self.program.global(*g).ty;
                self.globals[g.0][0] = ty.wrap(value);
                Ok(())
            }
            LValue::Index { base, indices } => {
                let flat = self.flat_index(frame, *base, indices)?;
                match base {
                    VarRef::Global(g) => {
                        let ty = self.program.global(*g).ty;
                        self.globals[g.0][flat as usize] = ty.wrap(value);
                        Ok(())
                    }
                    VarRef::Local(_) => Ok(()),
                }
            }
            LValue::Deref(ptr) => {
                let addr = match ptr {
                    VarRef::Local(l) => self.read_local(frame, *l),
                    VarRef::Global(g) => self.globals[g.0][0],
                };
                self.store_address(addr, value)
            }
        }
    }

    fn flat_index(
        &mut self,
        frame: &mut Frame<'_>,
        base: VarRef,
        indices: &[Expr],
    ) -> Result<i64, ExecError> {
        let (dims, name) = match base {
            VarRef::Global(g) => {
                let gv = self.program.global(g);
                (gv.dims.clone(), gv.name.clone())
            }
            VarRef::Local(l) => (Vec::new(), frame.func.local(l).name.clone()),
        };
        let mut flat = 0i64;
        for (i, idx) in indices.iter().enumerate() {
            let v = self.eval(frame, idx)?;
            let dim = dims.get(i).copied().unwrap_or(1) as i64;
            flat = flat * dim + v;
        }
        let total: i64 = if dims.is_empty() {
            1
        } else {
            dims.iter().product::<usize>() as i64
        };
        if flat < 0 || flat >= total {
            return Err(ExecError::OutOfBounds {
                array: name,
                index: flat,
            });
        }
        Ok(flat)
    }

    fn store_address(&mut self, addr: i64, value: i64) -> Result<(), ExecError> {
        if addr >= STACK_BASE {
            let slot = ((addr - STACK_BASE) / 8) as usize;
            if slot < self.stack_mem.len() {
                self.stack_mem[slot] = value;
                return Ok(());
            }
            return Err(ExecError::WildPointer(addr));
        }
        if addr >= GLOBAL_BASE {
            let elem = ((addr - GLOBAL_BASE) / 8) as usize;
            let mut offset = 0usize;
            for (gi, g) in self.program.globals.iter().enumerate() {
                let count = g.element_count();
                if elem < offset + count {
                    self.globals[gi][elem - offset] = g.ty.wrap(value);
                    return Ok(());
                }
                offset += count;
            }
        }
        Err(ExecError::WildPointer(addr))
    }

    fn load_address(&self, addr: i64) -> Result<i64, ExecError> {
        if addr >= STACK_BASE {
            let slot = ((addr - STACK_BASE) / 8) as usize;
            return self
                .stack_mem
                .get(slot)
                .copied()
                .ok_or(ExecError::WildPointer(addr));
        }
        if addr >= GLOBAL_BASE {
            let elem = ((addr - GLOBAL_BASE) / 8) as usize;
            let mut offset = 0usize;
            for (gi, g) in self.program.globals.iter().enumerate() {
                let count = g.element_count();
                if elem < offset + count {
                    return Ok(self.globals[gi][elem - offset]);
                }
                offset += count;
            }
        }
        Err(ExecError::WildPointer(addr))
    }

    /// Address of a variable, as used by `&x`.
    fn address_of(&mut self, frame: &mut Frame<'_>, var: VarRef) -> i64 {
        match var {
            VarRef::Global(g) => self.global_base[g.0],
            VarRef::Local(l) => {
                let slot = *frame.slots.entry(l).or_insert_with(|| {
                    let s = self.stack_mem.len();
                    self.stack_mem.push(frame.locals[l.0]);
                    s
                });
                STACK_BASE + (slot as i64) * 8
            }
        }
    }

    fn eval(&mut self, frame: &mut Frame<'_>, expr: &Expr) -> Result<i64, ExecError> {
        match &expr.kind {
            ExprKind::Lit(v) => Ok(*v),
            ExprKind::Var(VarRef::Local(l)) => Ok(self.read_local(frame, *l)),
            ExprKind::Var(VarRef::Global(g)) => Ok(self.globals[g.0][0]),
            ExprKind::Index { base, indices } => {
                let flat = self.flat_index(frame, *base, indices)?;
                match base {
                    VarRef::Global(g) => Ok(self.globals[g.0][flat as usize]),
                    VarRef::Local(l) => Ok(self.read_local(frame, *l)),
                }
            }
            ExprKind::Unary(op, inner) => {
                let v = self.eval(frame, inner)?;
                Ok(op.eval(v))
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let l = self.eval(frame, lhs)?;
                let r = self.eval(frame, rhs)?;
                Ok(op.eval(l, r))
            }
            ExprKind::AddrOf(var) => Ok(self.address_of(frame, *var)),
            ExprKind::Deref(inner) => {
                let addr = self.eval(frame, inner)?;
                self.load_address(addr)
            }
            ExprKind::Call { callee, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(frame, a)?);
                }
                self.call_function(*callee, &values)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Ty};
    use crate::build::ProgramBuilder;

    fn run(program: &Program) -> ExecOutcome {
        Interpreter::new(program).run().expect("execution succeeds")
    }

    #[test]
    fn straight_line_assignment() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let main = b.function("main", Ty::I32);
        let x = b.local(main, "x", Ty::I32);
        b.push(main, Stmt::decl(x, Some(Expr::lit(21))));
        b.push(
            main,
            Stmt::assign(
                LValue::global(g),
                Expr::binary(BinOp::Mul, Expr::local(x), Expr::lit(2)),
            ),
        );
        b.push(main, Stmt::ret(Some(Expr::global(g))));
        let p = b.finish();
        let out = run(&p);
        assert_eq!(out.return_value, 42);
        assert_eq!(out.final_globals[0], vec![42]);
    }

    #[test]
    fn for_loop_sums_array() {
        let mut b = ProgramBuilder::new();
        let a = b.global_array("a", Ty::I32, false, vec![4], vec![1, 2, 3, 4]);
        let s = b.global("s", Ty::I32, false, vec![0]);
        let main = b.function("main", Ty::I32);
        let i = b.local(main, "i", Ty::I32);
        b.push(
            main,
            Stmt::for_loop(
                Some(Stmt::assign(LValue::local(i), Expr::lit(0))),
                Some(Expr::binary(BinOp::Lt, Expr::local(i), Expr::lit(4))),
                Some(Stmt::assign(
                    LValue::local(i),
                    Expr::binary(BinOp::Add, Expr::local(i), Expr::lit(1)),
                )),
                vec![Stmt::assign(
                    LValue::global(s),
                    Expr::binary(
                        BinOp::Add,
                        Expr::global(s),
                        Expr::index(VarRef::Global(a), vec![Expr::local(i)]),
                    ),
                )],
            ),
        );
        b.push(main, Stmt::ret(Some(Expr::global(s))));
        let p = b.finish();
        assert_eq!(run(&p).return_value, 10);
    }

    #[test]
    fn sink_calls_are_recorded_in_order() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", Ty::I32);
        let x = b.local(main, "x", Ty::I32);
        b.push(main, Stmt::decl(x, Some(Expr::lit(7))));
        b.push(main, Stmt::call_opaque(vec![Expr::local(x), Expr::lit(1)]));
        b.push(main, Stmt::call_opaque(vec![Expr::lit(2)]));
        b.push(main, Stmt::ret(None));
        let p = b.finish();
        let out = run(&p);
        assert_eq!(out.sink_calls, vec![vec![7, 1], vec![2]]);
    }

    #[test]
    fn internal_call_passes_arguments_and_returns() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let callee = b.function("add3", Ty::I32);
        let p0 = b.param(callee, "p0", Ty::I32);
        b.push(
            callee,
            Stmt::ret(Some(Expr::binary(
                BinOp::Add,
                Expr::local(p0),
                Expr::lit(3),
            ))),
        );
        let main = b.function("main", Ty::I32);
        b.push(
            main,
            Stmt::assign(LValue::global(g), Expr::call(callee, vec![Expr::lit(39)])),
        );
        b.push(main, Stmt::ret(Some(Expr::global(g))));
        let p = b.finish();
        assert_eq!(run(&p).return_value, 42);
    }

    #[test]
    fn pointers_to_globals_and_locals() {
        let mut b = ProgramBuilder::new();
        let g = b.global("b", Ty::I32, false, vec![5]);
        let main = b.function("main", Ty::I32);
        let v1 = b.local(main, "v1", Ty::Ptr(&Ty::I32));
        let x = b.local(main, "x", Ty::I32);
        b.push(main, Stmt::decl(x, Some(Expr::lit(9))));
        b.push(main, Stmt::decl(v1, Some(Expr::addr_of(VarRef::Global(g)))));
        // *v1 = 11; then v1 = &x; then return *v1 + b
        b.push(
            main,
            Stmt::assign(LValue::Deref(VarRef::Local(v1)), Expr::lit(11)),
        );
        b.push(
            main,
            Stmt::assign(LValue::local(v1), Expr::addr_of(VarRef::Local(x))),
        );
        b.push(
            main,
            Stmt::ret(Some(Expr::binary(
                BinOp::Add,
                Expr::deref(Expr::local(v1)),
                Expr::global(g),
            ))),
        );
        let p = b.finish();
        assert_eq!(run(&p).return_value, 20);
    }

    #[test]
    fn goto_loop_terminates_when_condition_clears() {
        // Mirrors the paper's Conjecture 3 example: `f: if (a) goto f;` with a = 0.
        let mut b = ProgramBuilder::new();
        let a = b.global("a", Ty::I32, false, vec![0]);
        let main = b.function("main", Ty::I32);
        b.push(main, Stmt::label(1));
        b.push(
            main,
            Stmt::if_stmt(Expr::global(a), vec![Stmt::goto(1)], vec![]),
        );
        b.push(main, Stmt::ret(Some(Expr::lit(3))));
        let p = b.finish();
        assert_eq!(run(&p).return_value, 3);
    }

    #[test]
    fn fuel_limit_detects_nontermination() {
        let mut b = ProgramBuilder::new();
        let a = b.global("a", Ty::I32, false, vec![1]);
        let main = b.function("main", Ty::I32);
        b.push(main, Stmt::label(1));
        b.push(
            main,
            Stmt::if_stmt(Expr::global(a), vec![Stmt::goto(1)], vec![]),
        );
        b.push(main, Stmt::ret(None));
        let p = b.finish();
        let err = Interpreter::with_fuel(&p, 1000).run().unwrap_err();
        assert_eq!(err, ExecError::OutOfFuel);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut b = ProgramBuilder::new();
        let a = b.global_array("a", Ty::I32, false, vec![2], vec![1, 2]);
        let main = b.function("main", Ty::I32);
        b.push(
            main,
            Stmt::ret(Some(Expr::index(VarRef::Global(a), vec![Expr::lit(5)]))),
        );
        let p = b.finish();
        let err = Interpreter::new(&p).run().unwrap_err();
        assert!(matches!(err, ExecError::OutOfBounds { .. }));
    }

    #[test]
    fn narrow_types_wrap_on_store() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::U8, false, vec![0]);
        let main = b.function("main", Ty::I32);
        b.push(main, Stmt::assign(LValue::global(g), Expr::lit(300)));
        b.push(main, Stmt::ret(Some(Expr::global(g))));
        let p = b.finish();
        assert_eq!(run(&p).return_value, 44);
    }

    #[test]
    fn unnamed_scope_executes() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let main = b.function("main", Ty::I32);
        let x = b.local(main, "x", Ty::I32);
        b.push(
            main,
            Stmt::block(vec![
                Stmt::decl(x, Some(Expr::lit(4))),
                Stmt::assign(LValue::global(g), Expr::local(x)),
            ]),
        );
        b.push(main, Stmt::ret(Some(Expr::global(g))));
        let p = b.finish();
        assert_eq!(run(&p).return_value, 4);
    }
}
