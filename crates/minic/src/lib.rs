//! MiniC: the source language used throughout the *Poking Holes in Incomplete
//! Debug Information* reproduction.
//!
//! The paper tests C compilers on programs produced by the Csmith fuzzer. We
//! substitute a small, deterministic C-like language that contains every
//! construct the paper's three conjectures and bug case studies exercise:
//!
//! * scalar integer types of several widths and signedness,
//! * global variables, optionally `volatile`, optionally multi-dimensional
//!   arrays with static initializers,
//! * local variables, address-taken locals, and pointers,
//! * `for` loops (with induction variables), `if`/`else`, `goto`/labels,
//! * calls to *opaque* external functions (the paper's `printf` stub) and to
//!   ordinary internal functions,
//! * assignments to global storage through non-trivial expressions.
//!
//! The crate also provides:
//!
//! * a deterministic source renderer that assigns a line number to every
//!   statement ([`ast::Program::assign_lines`]) — conjectures and debug
//!   information are all expressed in terms of these lines,
//! * a reference interpreter ([`interp`]) used as the semantic oracle for the
//!   optimizing compiler (differential testing),
//! * the static analyses the conjectures of the paper rely on
//!   ([`analysis`]): opaque-call argument sites (Conjecture 1), global-store
//!   constituent sites (Conjecture 2), local variable lifetimes
//!   (Conjecture 3), source-level liveness and induction-variable detection,
//! * a validity checker ([`validate`]) that rejects programs which could
//!   exhibit undefined behaviour or unbounded execution.
//!
//! # Example
//!
//! ```
//! use holes_minic::ast::*;
//! use holes_minic::build::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new();
//! let g = b.global("g", Ty::I32, false, vec![0]);
//! let main = b.function("main", Ty::I32);
//! let x = b.local(main, "x", Ty::I32);
//! b.push(main, Stmt::decl(x, Some(Expr::lit(7))));
//! b.push(main, Stmt::assign(LValue::global(g), Expr::var(VarRef::Local(x))));
//! b.push(main, Stmt::ret(Some(Expr::lit(0))));
//! let mut program = b.finish();
//! let source = program.assign_lines();
//! assert!(source.text.contains("g = x;"));
//! ```

pub mod analysis;
pub mod ast;
pub mod build;
pub mod interp;
pub mod lines;
pub mod validate;

pub use ast::{
    BinOp, Expr, ExprKind, Function, FunctionId, GlobalId, GlobalVar, LValue, LocalId, Program,
    Stmt, StmtKind, Ty, UnOp, VarRef,
};
pub use interp::{ExecOutcome, Interpreter};
pub use lines::SourceMap;
