//! Source rendering and line assignment.
//!
//! The paper's methodology is entirely phrased in terms of *source lines*: a
//! debugger "steps on a line", a variable is "visible/available at a line".
//! [`Program::assign_lines`] walks the program exactly like the renderer
//! does, assigns a 1-based line to every statement, and returns a
//! [`SourceMap`] with the rendered text plus lookup tables used by the
//! compiler (line table emission) and the conjecture checkers.

use std::collections::BTreeMap;

use crate::ast::{
    Callee, Expr, ExprKind, Function, FunctionId, LValue, Program, Stmt, StmtKind, VarRef,
};

/// Rendered source text plus per-line information.
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    /// The rendered C-like source text.
    pub text: String,
    /// For every line that holds an executable statement: the owning function.
    pub line_function: BTreeMap<u32, FunctionId>,
    /// Lines holding executable statements, per function, in ascending order.
    pub function_lines: BTreeMap<FunctionId, Vec<u32>>,
    /// Total number of lines in the rendered text.
    pub line_count: u32,
}

impl SourceMap {
    /// Lines with executable statements in the given function.
    pub fn lines_of(&self, func: FunctionId) -> &[u32] {
        self.function_lines
            .get(&func)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The function owning a statement line, if any.
    pub fn function_of_line(&self, line: u32) -> Option<FunctionId> {
        self.line_function.get(&line).copied()
    }
}

struct Renderer<'p> {
    program: &'p Program,
    out: String,
    line: u32,
    map: SourceMap,
    current_function: FunctionId,
}

impl Program {
    /// Assign a source line to every statement and return the rendered
    /// source. Rendering is deterministic: the same program always produces
    /// the same text and line numbers.
    pub fn assign_lines(&mut self) -> SourceMap {
        // Render from an immutable clone to collect the line assignments,
        // then write them back. (The walk order is identical.)
        let snapshot = self.clone();
        let mut renderer = Renderer {
            program: &snapshot,
            out: String::new(),
            line: 0,
            map: SourceMap::default(),
            current_function: FunctionId(0),
        };
        let mut assignments: Vec<(FunctionId, Vec<u32>)> = Vec::new();
        renderer.render_globals();
        for (id, func) in snapshot.functions_with_ids() {
            renderer.current_function = id;
            let lines = renderer.render_function(func);
            assignments.push((id, lines));
        }
        let mut map = renderer.map;
        map.text = renderer.out;
        map.line_count = renderer.line;
        for lines in map.function_lines.values_mut() {
            lines.sort_unstable();
        }
        // Write the assigned lines back into self.
        for (id, lines) in assignments {
            let mut iter = lines.into_iter();
            let func = &mut self.functions[id.0];
            func.decl_line = iter.next().unwrap_or(0);
            assign_stmts(&mut func.body, &mut iter);
        }
        map
    }

    /// Render the program to text without mutating line numbers. Mostly
    /// useful for displaying reduced test cases in reports.
    pub fn render(&self) -> String {
        let mut clone = self.clone();
        clone.assign_lines().text
    }
}

/// Walk statements in the same order as the renderer, popping one line per
/// statement from `lines`.
fn assign_stmts(stmts: &mut [Stmt], lines: &mut impl Iterator<Item = u32>) {
    for stmt in stmts {
        stmt.line = lines.next().unwrap_or(0);
        match &mut stmt.kind {
            StmtKind::For {
                init, step, body, ..
            } => {
                // init/cond/step share the `for` line.
                if let Some(s) = init {
                    s.line = stmt.line;
                }
                if let Some(s) = step {
                    s.line = stmt.line;
                }
                assign_stmts(body, lines);
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                assign_stmts(then_branch, lines);
                assign_stmts(else_branch, lines);
            }
            StmtKind::Block(body) => assign_stmts(body, lines),
            _ => {}
        }
    }
}

impl<'p> Renderer<'p> {
    fn emit(&mut self, text: &str) -> u32 {
        self.line += 1;
        self.out.push_str(text);
        self.out.push('\n');
        self.line
    }

    fn render_globals(&mut self) {
        for global in &self.program.globals {
            let vol = if global.is_volatile { "volatile " } else { "" };
            if global.dims.is_empty() {
                let line = format!(
                    "{}{} {} = {};",
                    vol,
                    global.ty.c_name(),
                    global.name,
                    global.init[0]
                );
                self.emit(&line);
            } else {
                let dims: String = global.dims.iter().map(|d| format!("[{d}]")).collect();
                let init: Vec<String> = global.init.iter().map(i64::to_string).collect();
                let line = format!(
                    "{}{} {}{} = {{{}}};",
                    vol,
                    global.ty.c_name(),
                    global.name,
                    dims,
                    init.join(", ")
                );
                self.emit(&line);
            }
        }
        self.emit("extern void sink(long, ...);");
    }

    fn render_function(&mut self, func: &Function) -> Vec<u32> {
        let mut lines = Vec::new();
        let params: Vec<String> = func
            .params()
            .map(|p| {
                let local = func.local(p);
                format!("{} {}", local.ty.c_name(), local.name)
            })
            .collect();
        let header = format!(
            "{} {}({}) {{",
            func.ret_ty.c_name(),
            func.name,
            if params.is_empty() {
                "void".to_owned()
            } else {
                params.join(", ")
            }
        );
        let decl_line = self.emit(&header);
        lines.push(decl_line);
        self.render_stmts(func, &func.body, 1, &mut lines);
        self.emit("}");
        lines
    }

    fn indent(depth: usize) -> String {
        "  ".repeat(depth)
    }

    fn render_stmts(
        &mut self,
        func: &Function,
        stmts: &[Stmt],
        depth: usize,
        lines: &mut Vec<u32>,
    ) {
        for stmt in stmts {
            self.render_stmt(func, stmt, depth, lines);
        }
    }

    fn render_stmt(&mut self, func: &Function, stmt: &Stmt, depth: usize, lines: &mut Vec<u32>) {
        let pad = Self::indent(depth);
        let own_index = lines.len();
        match &stmt.kind {
            StmtKind::Decl { local, init } => {
                let var = func.local(*local);
                let text = match init {
                    Some(e) => format!(
                        "{pad}{} {} = {};",
                        var.ty.c_name(),
                        var.name,
                        self.expr(func, e)
                    ),
                    None => format!("{pad}{} {};", var.ty.c_name(), var.name),
                };
                lines.push(self.emit(&text));
            }
            StmtKind::Assign { target, value } => {
                let text = format!(
                    "{pad}{} = {};",
                    self.lvalue(func, target),
                    self.expr(func, value)
                );
                lines.push(self.emit(&text));
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let init_s = init
                    .as_ref()
                    .map(|s| self.inline_assign(func, s))
                    .unwrap_or_default();
                let cond_s = cond
                    .as_ref()
                    .map(|e| self.expr(func, e))
                    .unwrap_or_default();
                let step_s = step
                    .as_ref()
                    .map(|s| self.inline_assign(func, s))
                    .unwrap_or_default();
                let text = format!("{pad}for ({init_s}; {cond_s}; {step_s}) {{");
                lines.push(self.emit(&text));
                self.render_stmts(func, body, depth + 1, lines);
                self.emit(&format!("{pad}}}"));
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let text = format!("{pad}if ({}) {{", self.expr(func, cond));
                lines.push(self.emit(&text));
                self.render_stmts(func, then_branch, depth + 1, lines);
                if else_branch.is_empty() {
                    self.emit(&format!("{pad}}}"));
                } else {
                    self.emit(&format!("{pad}}} else {{"));
                    self.render_stmts(func, else_branch, depth + 1, lines);
                    self.emit(&format!("{pad}}}"));
                }
            }
            StmtKind::Call { callee, args } => {
                let args_s: Vec<String> = args.iter().map(|a| self.expr(func, a)).collect();
                let name = match callee {
                    Callee::Internal(f) => self.program.function(*f).name.clone(),
                    Callee::Opaque => "sink".to_owned(),
                };
                let text = format!("{pad}{}({});", name, args_s.join(", "));
                lines.push(self.emit(&text));
            }
            StmtKind::Return(value) => {
                let text = match value {
                    Some(e) => format!("{pad}return {};", self.expr(func, e)),
                    None => format!("{pad}return;"),
                };
                lines.push(self.emit(&text));
            }
            StmtKind::Goto(label) => {
                lines.push(self.emit(&format!("{pad}goto L{label};")));
            }
            StmtKind::Label(label) => {
                lines.push(self.emit(&format!("{pad}L{label}:;")));
            }
            StmtKind::Block(body) => {
                lines.push(self.emit(&format!("{pad}{{")));
                self.render_stmts(func, body, depth + 1, lines);
                self.emit(&format!("{pad}}}"));
            }
            StmtKind::Empty => {
                lines.push(self.emit(&format!("{pad};")));
            }
        }
        // Record which function owns the line pushed for *this* statement
        // (nested statements record their own lines during recursion).
        if let Some(&line) = lines.get(own_index) {
            self.record_line(line);
        }
    }

    fn record_line(&mut self, line: u32) {
        self.map
            .line_function
            .entry(line)
            .or_insert(self.current_function);
        self.map
            .function_lines
            .entry(self.current_function)
            .or_default()
            .push(line);
    }

    fn inline_assign(&self, func: &Function, stmt: &Stmt) -> String {
        match &stmt.kind {
            StmtKind::Assign { target, value } => {
                format!("{} = {}", self.lvalue(func, target), self.expr(func, value))
            }
            StmtKind::Decl { local, init } => {
                let var = func.local(*local);
                match init {
                    Some(e) => format!("{} = {}", var.name, self.expr(func, e)),
                    None => var.name.clone(),
                }
            }
            _ => String::new(),
        }
    }

    fn var_name(&self, func: &Function, var: VarRef) -> String {
        match var {
            VarRef::Global(g) => self.program.global(g).name.clone(),
            VarRef::Local(l) => func.local(l).name.clone(),
        }
    }

    fn lvalue(&self, func: &Function, lv: &LValue) -> String {
        match lv {
            LValue::Var(v) => self.var_name(func, *v),
            LValue::Index { base, indices } => {
                let idx: String = indices
                    .iter()
                    .map(|e| format!("[{}]", self.expr(func, e)))
                    .collect();
                format!("{}{}", self.var_name(func, *base), idx)
            }
            LValue::Deref(v) => format!("*{}", self.var_name(func, *v)),
        }
    }

    fn expr(&self, func: &Function, expr: &Expr) -> String {
        match &expr.kind {
            ExprKind::Lit(v) => v.to_string(),
            ExprKind::Var(v) => self.var_name(func, *v),
            ExprKind::Index { base, indices } => {
                let idx: String = indices
                    .iter()
                    .map(|e| format!("[{}]", self.expr(func, e)))
                    .collect();
                format!("{}{}", self.var_name(func, *base), idx)
            }
            ExprKind::Unary(op, inner) => format!("{}({})", op.symbol(), self.expr(func, inner)),
            ExprKind::Binary(op, lhs, rhs) => format!(
                "({} {} {})",
                self.expr(func, lhs),
                op.symbol(),
                self.expr(func, rhs)
            ),
            ExprKind::AddrOf(v) => format!("&{}", self.var_name(func, *v)),
            ExprKind::Deref(inner) => format!("*({})", self.expr(func, inner)),
            ExprKind::Call { callee, args } => {
                let args_s: Vec<String> = args.iter().map(|a| self.expr(func, a)).collect();
                format!(
                    "{}({})",
                    self.program.function(*callee).name,
                    args_s.join(", ")
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, GlobalId, LocalId, Ty};
    use crate::build::ProgramBuilder;

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new();
        let g = b.global("g", Ty::I32, false, vec![0]);
        let arr = b.global_array("a", Ty::I32, false, vec![2, 2], vec![1, 2, 3, 4]);
        let main = b.function("main", Ty::I32);
        let i = b.local(main, "i", Ty::I32);
        let x = b.local(main, "x", Ty::I32);
        b.push(main, Stmt::decl(x, Some(Expr::lit(5))));
        b.push(
            main,
            Stmt::for_loop(
                Some(Stmt::assign(LValue::local(i), Expr::lit(0))),
                Some(Expr::binary(BinOp::Lt, Expr::local(i), Expr::lit(2))),
                Some(Stmt::assign(
                    LValue::local(i),
                    Expr::binary(BinOp::Add, Expr::local(i), Expr::lit(1)),
                )),
                vec![Stmt::assign(
                    LValue::global(g),
                    Expr::index(
                        crate::ast::VarRef::Global(arr),
                        vec![Expr::local(i), Expr::lit(1)],
                    ),
                )],
            ),
        );
        b.push(main, Stmt::call_opaque(vec![Expr::local(x)]));
        b.push(main, Stmt::ret(Some(Expr::lit(0))));
        b.finish()
    }

    #[test]
    fn lines_are_assigned_sequentially_and_unique() {
        let mut p = sample_program();
        let map = p.assign_lines();
        let main = p.main();
        let lines = map.lines_of(main);
        assert!(!lines.is_empty());
        let mut sorted = lines.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), lines.len(), "statement lines must be unique");
        // Every statement in the body received a nonzero line.
        fn check(stmts: &[Stmt]) {
            for s in stmts {
                assert_ne!(s.line, 0, "statement has no line: {s:?}");
                match &s.kind {
                    StmtKind::For { body, .. } => check(body),
                    StmtKind::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        check(then_branch);
                        check(else_branch);
                    }
                    StmtKind::Block(b) => check(b),
                    _ => {}
                }
            }
        }
        check(&p.functions[main.0].body);
    }

    #[test]
    fn rendering_is_deterministic() {
        let mut p1 = sample_program();
        let mut p2 = sample_program();
        assert_eq!(p1.assign_lines().text, p2.assign_lines().text);
    }

    #[test]
    fn rendered_text_contains_constructs() {
        let mut p = sample_program();
        let map = p.assign_lines();
        assert!(map.text.contains("int g = 0;"));
        assert!(map.text.contains("int a[2][2] = {1, 2, 3, 4};"));
        assert!(map.text.contains("for ("));
        assert!(map.text.contains("sink(x);"));
        assert!(map.text.contains("extern void sink"));
    }

    #[test]
    fn for_init_and_step_share_the_for_line() {
        let mut p = sample_program();
        p.assign_lines();
        let main = p.main();
        let body = &p.functions[main.0].body;
        if let StmtKind::For { init, step, .. } = &body[1].kind {
            assert_eq!(init.as_ref().unwrap().line, body[1].line);
            assert_eq!(step.as_ref().unwrap().line, body[1].line);
        } else {
            panic!("expected for loop");
        }
    }

    #[test]
    fn line_function_map_points_to_main() {
        let mut p = sample_program();
        let map = p.assign_lines();
        let main = p.main();
        for &line in map.lines_of(main) {
            assert_eq!(map.function_of_line(line), Some(main));
        }
        assert_eq!(map.function_of_line(9999), None);
    }

    #[test]
    fn empty_and_goto_render() {
        let mut b = ProgramBuilder::new();
        let g = b.global("flag", Ty::I32, false, vec![0]);
        let main = b.function("main", Ty::I32);
        b.push(main, Stmt::label(1));
        b.push(
            main,
            Stmt::if_stmt(Expr::global(g), vec![Stmt::goto(1)], vec![]),
        );
        b.push(main, Stmt::ret(Some(Expr::lit(0))));
        let mut p = b.finish();
        let map = p.assign_lines();
        assert!(map.text.contains("L1:;"));
        assert!(map.text.contains("goto L1;"));
        let _ = GlobalId(0);
        let _ = LocalId(0);
    }
}
