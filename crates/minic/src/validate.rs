//! Static validity checks for MiniC programs.
//!
//! The paper screens generated programs for undefined behaviour before filing
//! reports (compile-time checks plus CompCert). MiniC is UB-free by
//! construction (wrapping arithmetic, no division, bounds declared on every
//! array) but a hand-written or reduced program could still contain
//! structural mistakes; [`validate`] rejects those. Dynamic properties
//! (in-bounds variable indices, termination) are checked by running the
//! [`crate::interp::Interpreter`], which the generator does for every emitted
//! program.

use std::collections::HashSet;

use crate::ast::{
    Callee, Expr, ExprKind, Function, FunctionId, LValue, Program, Stmt, StmtKind, VarRef,
};

/// A structural validity problem in a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The program has no `main` function.
    NoMain,
    /// A `goto` targets a label that is not defined in the same function.
    UnknownLabel {
        /// Function containing the `goto`.
        function: String,
        /// The missing label id.
        label: u32,
    },
    /// A local id is out of range for its function.
    BadLocal {
        /// Function name.
        function: String,
        /// The referenced local index.
        index: usize,
    },
    /// A global id is out of range.
    BadGlobal(usize),
    /// A call passes the wrong number of arguments to an internal function.
    ArityMismatch {
        /// Caller function name.
        caller: String,
        /// Callee function name.
        callee: String,
        /// Number of arguments at the call.
        got: usize,
        /// Number of parameters expected.
        expected: usize,
    },
    /// An array is indexed with the wrong number of dimensions.
    DimensionMismatch {
        /// Array name.
        array: String,
        /// Number of indices used.
        got: usize,
        /// Number of dimensions declared.
        expected: usize,
    },
    /// A literal array index is statically out of bounds.
    LiteralIndexOutOfBounds {
        /// Array name.
        array: String,
        /// The literal index.
        index: i64,
        /// The dimension bound.
        bound: usize,
    },
    /// An internal-call callee id is out of range.
    BadCallee(usize),
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::NoMain => write!(f, "program has no main function"),
            ValidationError::UnknownLabel { function, label } => {
                write!(f, "goto to unknown label L{label} in {function}")
            }
            ValidationError::BadLocal { function, index } => {
                write!(f, "local index {index} out of range in {function}")
            }
            ValidationError::BadGlobal(i) => write!(f, "global index {i} out of range"),
            ValidationError::ArityMismatch {
                caller,
                callee,
                got,
                expected,
            } => write!(
                f,
                "call from {caller} to {callee} passes {got} arguments, expected {expected}"
            ),
            ValidationError::DimensionMismatch {
                array,
                got,
                expected,
            } => write!(
                f,
                "array {array} indexed with {got} indices, has {expected}"
            ),
            ValidationError::LiteralIndexOutOfBounds {
                array,
                index,
                bound,
            } => write!(
                f,
                "literal index {index} out of bounds for {array} (dim {bound})"
            ),
            ValidationError::BadCallee(i) => write!(f, "callee index {i} out of range"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validate the structural well-formedness of a program.
///
/// # Errors
///
/// Returns the first [`ValidationError`] found, if any.
pub fn validate(program: &Program) -> Result<(), ValidationError> {
    if !program.functions.iter().any(|f| f.name == "main") {
        return Err(ValidationError::NoMain);
    }
    for (id, func) in program.functions_with_ids() {
        let labels = collect_labels(&func.body);
        let mut checker = Checker {
            program,
            func,
            func_id: id,
            labels,
        };
        checker.check_stmts(&func.body)?;
    }
    Ok(())
}

fn collect_labels(stmts: &[Stmt]) -> HashSet<u32> {
    let mut labels = HashSet::new();
    fn walk(stmts: &[Stmt], labels: &mut HashSet<u32>) {
        for s in stmts {
            match &s.kind {
                StmtKind::Label(l) => {
                    labels.insert(*l);
                }
                StmtKind::For { body, .. } => walk(body, labels),
                StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, labels);
                    walk(else_branch, labels);
                }
                StmtKind::Block(body) => walk(body, labels),
                _ => {}
            }
        }
    }
    walk(stmts, &mut labels);
    labels
}

struct Checker<'p> {
    program: &'p Program,
    func: &'p Function,
    #[allow(dead_code)]
    func_id: FunctionId,
    labels: HashSet<u32>,
}

impl<'p> Checker<'p> {
    fn check_stmts(&mut self, stmts: &[Stmt]) -> Result<(), ValidationError> {
        for stmt in stmts {
            self.check_stmt(stmt)?;
        }
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<(), ValidationError> {
        match &stmt.kind {
            StmtKind::Decl { local, init } => {
                self.check_local(*local)?;
                if let Some(e) = init {
                    self.check_expr(e)?;
                }
            }
            StmtKind::Assign { target, value } => {
                self.check_lvalue(target)?;
                self.check_expr(value)?;
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(s) = init {
                    self.check_stmt(s)?;
                }
                if let Some(c) = cond {
                    self.check_expr(c)?;
                }
                if let Some(s) = step {
                    self.check_stmt(s)?;
                }
                self.check_stmts(body)?;
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.check_expr(cond)?;
                self.check_stmts(then_branch)?;
                self.check_stmts(else_branch)?;
            }
            StmtKind::Call { callee, args } => {
                for a in args {
                    self.check_expr(a)?;
                }
                if let Callee::Internal(f) = callee {
                    self.check_call(*f, args.len())?;
                }
            }
            StmtKind::Return(Some(e)) => self.check_expr(e)?,
            StmtKind::Goto(label) => {
                if !self.labels.contains(label) {
                    return Err(ValidationError::UnknownLabel {
                        function: self.func.name.clone(),
                        label: *label,
                    });
                }
            }
            StmtKind::Block(body) => self.check_stmts(body)?,
            StmtKind::Return(None) | StmtKind::Label(_) | StmtKind::Empty => {}
        }
        Ok(())
    }

    fn check_local(&self, local: crate::ast::LocalId) -> Result<(), ValidationError> {
        if local.0 >= self.func.locals.len() {
            return Err(ValidationError::BadLocal {
                function: self.func.name.clone(),
                index: local.0,
            });
        }
        Ok(())
    }

    fn check_var(&self, var: VarRef) -> Result<(), ValidationError> {
        match var {
            VarRef::Local(l) => self.check_local(l),
            VarRef::Global(g) => {
                if g.0 >= self.program.globals.len() {
                    Err(ValidationError::BadGlobal(g.0))
                } else {
                    Ok(())
                }
            }
        }
    }

    fn check_call(&self, callee: FunctionId, argc: usize) -> Result<(), ValidationError> {
        if callee.0 >= self.program.functions.len() {
            return Err(ValidationError::BadCallee(callee.0));
        }
        let target = self.program.function(callee);
        if target.param_count != argc {
            return Err(ValidationError::ArityMismatch {
                caller: self.func.name.clone(),
                callee: target.name.clone(),
                got: argc,
                expected: target.param_count,
            });
        }
        Ok(())
    }

    fn check_index(&self, base: VarRef, indices: &[Expr]) -> Result<(), ValidationError> {
        self.check_var(base)?;
        if let VarRef::Global(g) = base {
            let global = self.program.global(g);
            if global.dims.len() != indices.len() {
                return Err(ValidationError::DimensionMismatch {
                    array: global.name.clone(),
                    got: indices.len(),
                    expected: global.dims.len(),
                });
            }
            for (idx, dim) in indices.iter().zip(&global.dims) {
                if let ExprKind::Lit(v) = idx.kind {
                    if v < 0 || v >= *dim as i64 {
                        return Err(ValidationError::LiteralIndexOutOfBounds {
                            array: global.name.clone(),
                            index: v,
                            bound: *dim,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn check_lvalue(&self, lv: &LValue) -> Result<(), ValidationError> {
        match lv {
            LValue::Var(v) | LValue::Deref(v) => self.check_var(*v),
            LValue::Index { base, indices } => {
                for idx in indices {
                    self.check_expr(idx)?;
                }
                self.check_index(*base, indices)
            }
        }
    }

    fn check_expr(&self, expr: &Expr) -> Result<(), ValidationError> {
        match &expr.kind {
            ExprKind::Lit(_) => Ok(()),
            ExprKind::Var(v) | ExprKind::AddrOf(v) => self.check_var(*v),
            ExprKind::Index { base, indices } => {
                for idx in indices {
                    self.check_expr(idx)?;
                }
                self.check_index(*base, indices)
            }
            ExprKind::Unary(_, inner) | ExprKind::Deref(inner) => self.check_expr(inner),
            ExprKind::Binary(_, lhs, rhs) => {
                self.check_expr(lhs)?;
                self.check_expr(rhs)
            }
            ExprKind::Call { callee, args } => {
                for a in args {
                    self.check_expr(a)?;
                }
                self.check_call(*callee, args.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{LocalId, Ty};
    use crate::build::ProgramBuilder;

    #[test]
    fn valid_program_passes() {
        let mut b = ProgramBuilder::new();
        let g = b.global_array("a", Ty::I32, false, vec![3], vec![1, 2, 3]);
        let main = b.function("main", Ty::I32);
        b.push(
            main,
            Stmt::ret(Some(Expr::index(VarRef::Global(g), vec![Expr::lit(2)]))),
        );
        let p = b.finish();
        assert_eq!(validate(&p), Ok(()));
    }

    #[test]
    fn missing_main_is_rejected() {
        let mut b = ProgramBuilder::new();
        b.function("helper", Ty::I32);
        let p = b.finish();
        assert_eq!(validate(&p), Err(ValidationError::NoMain));
    }

    #[test]
    fn unknown_label_is_rejected() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", Ty::I32);
        b.push(main, Stmt::goto(9));
        b.push(main, Stmt::ret(None));
        let p = b.finish();
        assert!(matches!(
            validate(&p),
            Err(ValidationError::UnknownLabel { label: 9, .. })
        ));
    }

    #[test]
    fn literal_out_of_bounds_is_rejected() {
        let mut b = ProgramBuilder::new();
        let g = b.global_array("a", Ty::I32, false, vec![2], vec![1, 2]);
        let main = b.function("main", Ty::I32);
        b.push(
            main,
            Stmt::ret(Some(Expr::index(VarRef::Global(g), vec![Expr::lit(2)]))),
        );
        let p = b.finish();
        assert!(matches!(
            validate(&p),
            Err(ValidationError::LiteralIndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut b = ProgramBuilder::new();
        let callee = b.function("f", Ty::I32);
        b.param(callee, "p", Ty::I32);
        b.push(callee, Stmt::ret(Some(Expr::lit(0))));
        let main = b.function("main", Ty::I32);
        b.push(main, Stmt::call_internal(callee, vec![]));
        b.push(main, Stmt::ret(None));
        let p = b.finish();
        assert!(matches!(
            validate(&p),
            Err(ValidationError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn bad_local_is_rejected() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", Ty::I32);
        b.push(main, Stmt::ret(Some(Expr::local(LocalId(5)))));
        let p = b.finish();
        assert!(matches!(
            validate(&p),
            Err(ValidationError::BadLocal { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut b = ProgramBuilder::new();
        let g = b.global_array("a", Ty::I32, false, vec![2, 2], vec![1, 2, 3, 4]);
        let main = b.function("main", Ty::I32);
        b.push(
            main,
            Stmt::ret(Some(Expr::index(VarRef::Global(g), vec![Expr::lit(0)]))),
        );
        let p = b.finish();
        assert!(matches!(
            validate(&p),
            Err(ValidationError::DimensionMismatch { .. })
        ));
    }
}
