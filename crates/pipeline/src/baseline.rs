//! Baseline regression gating: snapshot a campaign's unique-violation set
//! and diff later runs against it — the paper's §5.4 regression study
//! turned into a CI gate.
//!
//! A [`Baseline`] is the set of [`ViolationFingerprint`]s of one run,
//! persisted as a deterministic `holes.baseline/v1` document
//! ([`BASELINE_FORMAT`]). Fingerprints are keyed by the *absolute seed* (not
//! the shard-local subject index), so baselines recorded from different
//! shardings — or diffed across grown seed ranges and different compiler
//! versions — compare meaningfully. Because the set is stored sorted and the
//! serializer is deterministic, a baseline recorded from `K` shard files is
//! **byte-identical** to one recorded from the unsharded run: the fold order
//! of [`crate::campaign::CampaignTallies`] never leaks into the bytes.
//!
//! [`Baseline::diff`] partitions a later run's violations into *known*
//! (present in both), *new* (only in the run), and *fixed* (only in the
//! baseline). Only *new* violations gate: the `holes baseline diff` CLI
//! exits 3 when the `new` partition is non-empty, and renders the diff as
//! text, JSON (`holes.baseline-diff/v1`), SARIF, or JUnit (see
//! [`crate::report::sarif`] and [`crate::report::junit`]).

use std::collections::BTreeSet;

use holes_compiler::{BackendKind, Personality};
use holes_core::json::Json;
use holes_core::Conjecture;
use holes_progen::SeedRange;

use crate::campaign::CampaignTallies;
use crate::report::junit::{junit_xml, CaseOutcome, TestCase};
use crate::report::sarif::{sarif_log, SarifResult};
use crate::shard::CampaignSpec;

/// The identifying `format` value of a baseline file.
pub const BASELINE_FORMAT: &str = "holes.baseline/v1";

/// The identifying `format` value of a baseline-diff JSON document.
pub const BASELINE_DIFF_FORMAT: &str = "holes.baseline-diff/v1";

/// The identity of one unique violation across processes and shardings:
/// the absolute generator seed plus the (conjecture, line, variable) site —
/// exactly the information of a [`crate::campaign::UniqueKey`] with the
/// shard-relative subject index rebased to the seed.
///
/// The canonical spelling is `s<seed>:<conjecture>:L<line>:<variable>`
/// (for example `s12:C1:L7:g0`); [`std::fmt::Display`] renders it and
/// [`std::str::FromStr`] parses it back losslessly (the variable name is
/// the remainder after the third `:`, so any identifier round-trips).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ViolationFingerprint {
    /// Generator seed of the exposing program.
    pub seed: u64,
    /// The violated conjecture.
    pub conjecture: Conjecture,
    /// The violating source line.
    pub line: u32,
    /// The affected variable's source name.
    pub variable: String,
}

impl std::fmt::Display for ViolationFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "s{}:{}:L{}:{}",
            self.seed, self.conjecture, self.line, self.variable
        )
    }
}

impl std::str::FromStr for ViolationFingerprint {
    type Err = BaselineError;

    fn from_str(s: &str) -> Result<ViolationFingerprint, BaselineError> {
        let bad = || BaselineError(format!("malformed violation fingerprint `{s}`"));
        let mut parts = s.splitn(4, ':');
        let seed = parts
            .next()
            .and_then(|p| p.strip_prefix('s'))
            .and_then(|p| p.parse().ok())
            .ok_or_else(bad)?;
        let conjecture = parts.next().and_then(|p| p.parse().ok()).ok_or_else(bad)?;
        let line = parts
            .next()
            .and_then(|p| p.strip_prefix('L'))
            .and_then(|p| p.parse().ok())
            .ok_or_else(bad)?;
        let variable = parts.next().filter(|v| !v.is_empty()).ok_or_else(bad)?;
        Ok(ViolationFingerprint {
            seed,
            conjecture,
            line,
            variable: variable.to_owned(),
        })
    }
}

/// Why a baseline file, fingerprint, or diff request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError(pub String);

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed baseline: {}", self.0)
    }
}

impl std::error::Error for BaselineError {}

/// One recorded unique-violation set: the snapshot `holes baseline record`
/// writes and `holes baseline diff` compares against.
///
/// A baseline deliberately carries **no shard fields**: it describes the
/// merged campaign, so recording from any complete sharding produces the
/// same document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// The compiler personality the run tested.
    pub personality: Personality,
    /// Index into [`Personality::version_names`].
    pub version: usize,
    /// The seed range the run covered.
    pub seeds: SeedRange,
    /// The backend the run compiled for.
    pub backend: BackendKind,
    /// The unique violations, keyed by fingerprint.
    pub fingerprints: BTreeSet<ViolationFingerprint>,
}

impl Baseline {
    /// Snapshot a merged campaign's unique-violation set: every
    /// [`crate::campaign::UniqueKey`] of the tallies, rebased from the
    /// subject index to the absolute seed of `spec`'s range.
    pub fn from_tallies(spec: &CampaignSpec, tallies: &CampaignTallies) -> Baseline {
        let fingerprints = tallies
            .unique_violations()
            .map(
                |((subject, conjecture, line, variable), _)| ViolationFingerprint {
                    seed: spec.seeds.start + *subject as u64,
                    conjecture: *conjecture,
                    line: *line,
                    variable: variable.to_string(),
                },
            )
            .collect();
        Baseline {
            personality: spec.personality,
            version: spec.version,
            seeds: spec.seeds,
            backend: spec.backend,
            fingerprints,
        }
    }

    /// Serialize to the deterministic `holes.baseline/v1` document:
    /// fingerprints in ascending canonical order, the `backend` field only
    /// when non-default (matching the shard-header convention).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("format".to_owned(), Json::str(BASELINE_FORMAT)),
            ("personality".to_owned(), Json::str(self.personality.name())),
            (
                "compiler_version".to_owned(),
                Json::str(self.personality.version_names()[self.version]),
            ),
            ("seeds".to_owned(), Json::str(self.seeds.to_string())),
        ];
        if self.backend != BackendKind::Reg {
            pairs.push(("backend".to_owned(), Json::str(self.backend.name())));
        }
        pairs.push((
            "fingerprints".to_owned(),
            Json::Arr(
                self.fingerprints
                    .iter()
                    .map(|fp| Json::str(fp.to_string()))
                    .collect(),
            ),
        ));
        Json::Obj(pairs)
    }

    /// Parse and validate a document produced by [`Baseline::to_json`].
    ///
    /// Beyond field syntax this checks that every fingerprint parses, that
    /// its seed lies inside the recorded range, and that the list is
    /// strictly ascending in canonical order — rejecting duplicated,
    /// reordered, or injected fingerprints that would silently skew a diff.
    ///
    /// # Errors
    ///
    /// Returns a [`BaselineError`] naming the offending field or fingerprint
    /// index.
    pub fn from_json(json: &Json) -> Result<Baseline, BaselineError> {
        let str_field = |key: &str| {
            json.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| BaselineError(format!("missing or non-string field `{key}`")))
        };
        let format = str_field("format")?;
        if format != BASELINE_FORMAT {
            return Err(BaselineError(format!(
                "unsupported format `{format}` (expected `{BASELINE_FORMAT}`)"
            )));
        }
        let personality: Personality = str_field("personality")?
            .parse()
            .map_err(|_| BaselineError("malformed field `personality`".into()))?;
        let version_name = str_field("compiler_version")?;
        let version = personality.version_index(version_name).ok_or_else(|| {
            BaselineError(format!("unknown {personality} version `{version_name}`"))
        })?;
        let seeds: SeedRange = str_field("seeds")?
            .parse()
            .map_err(|_| BaselineError("malformed field `seeds`".into()))?;
        let backend = match json.get("backend") {
            None => BackendKind::Reg,
            Some(value) => value
                .as_str()
                .and_then(|name| name.parse().ok())
                .ok_or_else(|| BaselineError("malformed field `backend`".into()))?,
        };
        let raw = json
            .get("fingerprints")
            .and_then(Json::as_arr)
            .ok_or_else(|| BaselineError("missing `fingerprints` array".into()))?;
        let mut fingerprints = BTreeSet::new();
        let mut previous: Option<ViolationFingerprint> = None;
        for (index, value) in raw.iter().enumerate() {
            let text = value
                .as_str()
                .ok_or_else(|| BaselineError(format!("fingerprint {index}: not a string")))?;
            let fp: ViolationFingerprint = text
                .parse()
                .map_err(|BaselineError(m)| BaselineError(format!("fingerprint {index}: {m}")))?;
            if !seeds.contains(fp.seed) {
                return Err(BaselineError(format!(
                    "fingerprint {index}: seed {} is outside the recorded range {seeds}",
                    fp.seed
                )));
            }
            if previous.as_ref().is_some_and(|prev| *prev >= fp) {
                return Err(BaselineError(format!(
                    "fingerprint {index}: not in strictly ascending canonical order"
                )));
            }
            previous = Some(fp.clone());
            fingerprints.insert(fp);
        }
        Ok(Baseline {
            personality,
            version,
            seeds,
            backend,
            fingerprints,
        })
    }

    /// Partition a later run's violations against this baseline into known,
    /// new, and fixed fingerprints (each list in ascending canonical order).
    ///
    /// The runs must share the personality and backend; the seed range and
    /// compiler version **may** differ — growing the range and bumping the
    /// version are exactly the §5.4 regression axes the diff exists to
    /// gate.
    ///
    /// # Errors
    ///
    /// Returns a [`BaselineError`] when the runs' personalities or backends
    /// differ.
    pub fn diff(&self, run: &Baseline) -> Result<BaselineDiff, BaselineError> {
        if self.personality != run.personality {
            return Err(BaselineError(format!(
                "cannot diff {} baseline against {} run",
                self.personality.name(),
                run.personality.name()
            )));
        }
        if self.backend != run.backend {
            return Err(BaselineError(format!(
                "cannot diff {} baseline against {} run",
                self.backend.name(),
                run.backend.name()
            )));
        }
        let known = run
            .fingerprints
            .intersection(&self.fingerprints)
            .cloned()
            .collect();
        let new = run
            .fingerprints
            .difference(&self.fingerprints)
            .cloned()
            .collect();
        let fixed = self
            .fingerprints
            .difference(&run.fingerprints)
            .cloned()
            .collect();
        Ok(BaselineDiff {
            personality: self.personality,
            backend: self.backend,
            baseline_version: self.personality.version_names()[self.version].to_owned(),
            run_version: run.personality.version_names()[run.version].to_owned(),
            baseline_seeds: self.seeds,
            run_seeds: run.seeds,
            known,
            new,
            fixed,
        })
    }
}

/// The outcome of [`Baseline::diff`]: a later run's violations partitioned
/// against a recorded baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineDiff {
    /// The shared personality of the two runs.
    pub personality: Personality,
    /// The shared backend of the two runs.
    pub backend: BackendKind,
    /// Version name of the baseline run.
    pub baseline_version: String,
    /// Version name of the later run.
    pub run_version: String,
    /// Seed range of the baseline run.
    pub baseline_seeds: SeedRange,
    /// Seed range of the later run.
    pub run_seeds: SeedRange,
    /// Violations present in both the baseline and the run.
    pub known: Vec<ViolationFingerprint>,
    /// Violations present only in the run: the regressions that gate.
    pub new: Vec<ViolationFingerprint>,
    /// Violations present only in the baseline: no longer reproducing.
    pub fixed: Vec<ViolationFingerprint>,
}

impl BaselineDiff {
    /// Whether the diff contains new violations — the (only) condition the
    /// CLI gate fails on.
    pub fn has_regressions(&self) -> bool {
        !self.new.is_empty()
    }

    /// The `, backend stack` suffix of the text header; empty on the
    /// default backend.
    fn backend_suffix(&self) -> String {
        if self.backend == BackendKind::Reg {
            String::new()
        } else {
            format!(", backend {}", self.backend.name())
        }
    }

    /// Render the diff as plain text: a header, the partition counts, and
    /// the new (and fixed) fingerprints, one per line.
    pub fn render(&self) -> String {
        let mut out = format!(
            "baseline diff: {}{}, baseline {} seeds {}, run {} seeds {}\n\
             known: {}\nnew: {}\nfixed: {}\n",
            self.personality.name(),
            self.backend_suffix(),
            self.baseline_version,
            self.baseline_seeds,
            self.run_version,
            self.run_seeds,
            self.known.len(),
            self.new.len(),
            self.fixed.len(),
        );
        if !self.new.is_empty() {
            out.push_str("\nnew violations (not in baseline):\n");
            for fp in &self.new {
                out.push_str(&format!("  {fp}\n"));
            }
        }
        if !self.fixed.is_empty() {
            out.push_str("\nfixed violations (no longer reproducing):\n");
            for fp in &self.fixed {
                out.push_str(&format!("  {fp}\n"));
            }
        }
        out
    }

    /// The machine-readable diff (`holes.baseline-diff/v1`). Deterministic —
    /// equal diffs always serialize to equal bytes.
    pub fn to_json(&self) -> Json {
        let list = |fps: &[ViolationFingerprint]| {
            Json::Arr(fps.iter().map(|fp| Json::str(fp.to_string())).collect())
        };
        let mut pairs = vec![
            ("format".to_owned(), Json::str(BASELINE_DIFF_FORMAT)),
            ("personality".to_owned(), Json::str(self.personality.name())),
        ];
        if self.backend != BackendKind::Reg {
            pairs.push(("backend".to_owned(), Json::str(self.backend.name())));
        }
        pairs.extend([
            (
                "baseline_version".to_owned(),
                Json::str(&self.baseline_version),
            ),
            ("run_version".to_owned(), Json::str(&self.run_version)),
            (
                "baseline_seeds".to_owned(),
                Json::str(self.baseline_seeds.to_string()),
            ),
            (
                "run_seeds".to_owned(),
                Json::str(self.run_seeds.to_string()),
            ),
            (
                "counts".to_owned(),
                Json::Obj(vec![
                    ("known".to_owned(), Json::from_usize(self.known.len())),
                    ("new".to_owned(), Json::from_usize(self.new.len())),
                    ("fixed".to_owned(), Json::from_usize(self.fixed.len())),
                ]),
            ),
            ("known".to_owned(), list(&self.known)),
            ("new".to_owned(), list(&self.new)),
            ("fixed".to_owned(), list(&self.fixed)),
        ]);
        Json::Obj(pairs)
    }

    /// The diff as a SARIF 2.1.0 log: one `error`-level result per **new**
    /// violation (known and fixed fingerprints stay out of the results, so
    /// a code-scanning upload flags exactly the regressions).
    pub fn sarif(&self) -> Json {
        let results: Vec<SarifResult> = self
            .new
            .iter()
            .map(|fp| SarifResult {
                rule: fp.conjecture,
                level: "error",
                message: format!(
                    "new {} violation not in baseline: variable `{}` at line {} of seed {} \
                     ({} {}{})",
                    fp.conjecture,
                    fp.variable,
                    fp.line,
                    fp.seed,
                    self.personality.name(),
                    self.run_version,
                    self.backend_suffix(),
                ),
                uri: format!("seed-{}.minic", fp.seed),
                line: fp.line,
                fingerprint: fp.to_string(),
            })
            .collect();
        sarif_log(&results)
    }

    /// The diff as a JUnit XML report: one test case per fingerprint —
    /// known pass, new fail, fixed skip — so any CI test-summary UI shows
    /// the gate's verdict per violation.
    pub fn junit(&self) -> String {
        let case = |fp: &ViolationFingerprint, outcome: CaseOutcome| TestCase {
            classname: format!("holes.{}", fp.conjecture),
            name: fp.to_string(),
            outcome,
        };
        let mut cases: Vec<TestCase> = Vec::new();
        cases.extend(self.known.iter().map(|fp| case(fp, CaseOutcome::Passed)));
        cases.extend(self.new.iter().map(|fp| {
            case(
                fp,
                CaseOutcome::Failed {
                    message: format!("new violation not in baseline: {fp}"),
                },
            )
        }));
        cases.extend(self.fixed.iter().map(|fp| {
            case(
                fp,
                CaseOutcome::Skipped {
                    message: format!("fixed: no longer reproduces: {fp}"),
                },
            )
        }));
        junit_xml("baseline-diff", &cases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::run_shard;

    fn fp(seed: u64, conjecture: Conjecture, line: u32, variable: &str) -> ViolationFingerprint {
        ViolationFingerprint {
            seed,
            conjecture,
            line,
            variable: variable.to_owned(),
        }
    }

    fn baseline(seeds: SeedRange, fps: &[ViolationFingerprint]) -> Baseline {
        Baseline {
            personality: Personality::Ccg,
            version: Personality::Ccg.trunk(),
            seeds,
            backend: BackendKind::Reg,
            fingerprints: fps.iter().cloned().collect(),
        }
    }

    #[test]
    fn fingerprints_round_trip_through_their_spelling() {
        let original = fp(12, Conjecture::C1, 7, "g0");
        assert_eq!(original.to_string(), "s12:C1:L7:g0");
        assert_eq!(
            "s12:C1:L7:g0".parse::<ViolationFingerprint>().unwrap(),
            original
        );
        for bad in [
            "",
            "s12",
            "12:C1:L7:g0",
            "s12:C9:L7:g0",
            "s12:C1:7:g0",
            "s12:C1:L7:",
        ] {
            assert!(
                bad.parse::<ViolationFingerprint>().is_err(),
                "`{bad}` was accepted"
            );
        }
    }

    #[test]
    fn baselines_round_trip_and_reject_tampering() {
        let original = baseline(
            SeedRange::new(10, 20),
            &[
                fp(12, Conjecture::C1, 7, "g0"),
                fp(12, Conjecture::C2, 9, "l1"),
                fp(15, Conjecture::C3, 3, "g2"),
            ],
        );
        let rendered = original.to_json().to_pretty();
        let reparsed = Baseline::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(reparsed, original);
        assert_eq!(reparsed.to_json().to_pretty(), rendered);
        for (needle, replacement) in [
            ("holes.baseline/v1", "holes.baseline/v0"),
            ("\"ccg\"", "\"gcc\""),
            ("\"trunk\"", "\"99\""),
            ("\"10..20\"", "\"20..10\""),
            ("s12:C1:L7:g0", "s99:C1:L7:g0"), // seed outside range
            ("s15:C3:L3:g2", "s12:C1:L7:g0"), // duplicate / reordered
            ("s12:C2:L9:l1", "s12:C2:L9000000000000000000:l1"), // overflow
        ] {
            let bad = rendered.replace(needle, replacement);
            assert_ne!(bad, rendered, "replacement `{needle}` did not apply");
            let parsed = Json::parse(&bad).unwrap();
            assert!(
                Baseline::from_json(&parsed).is_err(),
                "tampered `{needle}` was accepted"
            );
        }
    }

    #[test]
    fn diff_partitions_known_new_and_fixed() {
        let old = baseline(
            SeedRange::new(0, 10),
            &[fp(1, Conjecture::C1, 5, "a"), fp(2, Conjecture::C2, 6, "b")],
        );
        let new_run = baseline(
            SeedRange::new(0, 11),
            &[
                fp(1, Conjecture::C1, 5, "a"),
                fp(10, Conjecture::C3, 2, "c"),
            ],
        );
        let diff = old.diff(&new_run).unwrap();
        assert_eq!(diff.known, vec![fp(1, Conjecture::C1, 5, "a")]);
        assert_eq!(diff.new, vec![fp(10, Conjecture::C3, 2, "c")]);
        assert_eq!(diff.fixed, vec![fp(2, Conjecture::C2, 6, "b")]);
        assert!(diff.has_regressions());
        let text = diff.render();
        assert!(text.contains("known: 1"));
        assert!(text.contains("s10:C3:L2:c"));
        let json = diff.to_json().to_pretty();
        assert!(json.contains("holes.baseline-diff/v1"));
        assert!(json.contains("s10:C3:L2:c"));
        // The identity diff is all-known.
        let same = old.diff(&old).unwrap();
        assert!(!same.has_regressions());
        assert!(same.new.is_empty() && same.fixed.is_empty());
        assert_eq!(same.known.len(), 2);
    }

    #[test]
    fn diff_rejects_mismatched_personality_or_backend() {
        let ccg = baseline(SeedRange::new(0, 5), &[]);
        let mut lcc = ccg.clone();
        lcc.personality = Personality::Lcc;
        lcc.version = Personality::Lcc.trunk();
        assert!(ccg.diff(&lcc).is_err());
        let mut stack = ccg.clone();
        stack.backend = BackendKind::Stack;
        assert!(ccg.diff(&stack).is_err());
    }

    #[test]
    fn sharded_recording_is_byte_identical_to_unsharded() {
        let range = SeedRange::new(2500, 2512);
        let spec = CampaignSpec::new(Personality::Ccg, Personality::Ccg.trunk(), range);
        let monolithic = run_shard(&spec).unwrap();
        let reference = Baseline::from_tallies(&spec, &monolithic.result.tallies());
        assert!(
            !reference.fingerprints.is_empty(),
            "range produced no violations to baseline"
        );
        for shards in [2u64, 3] {
            // Fold the shards' records into one accumulator in reverse shard
            // order — the bytes must not notice.
            let mut tallies = crate::campaign::CampaignTallies::new(
                spec.personality.levels().to_vec(),
                range.len() as usize,
            );
            for index in (0..shards).rev() {
                let shard = run_shard(&spec.clone().with_shard(shards, index)).unwrap();
                for record in &shard.result.records {
                    tallies.add(record);
                }
            }
            let sharded = Baseline::from_tallies(&spec, &tallies);
            assert_eq!(
                sharded.to_json().to_pretty(),
                reference.to_json().to_pretty(),
                "K={shards}"
            );
        }
    }
}
