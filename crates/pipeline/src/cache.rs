//! The artifact cache: memoized compilation, tracing, and conjecture
//! checking per compiler configuration.
//!
//! The oracle behind every campaign, triage, and reduction step is
//! "compile + trace + check". Triage revisits the *same* configuration many
//! times (the full-pipeline endpoint of a bisection, the base configuration
//! of a flag search) and different pipeline stages revisit configurations
//! other stages already evaluated. The paper pays ~30 s per program per
//! conjecture for each of those queries; we make every revisit free.
//!
//! Each [`crate::Subject`] owns one [`ArtifactCache`], shared by all clones
//! of the subject. Artifacts are keyed by the full [`CompilerConfig`] (plus
//! the debugger personality for traces and violation sets) — never by a
//! lossy hash, so distinct configurations can never alias; the stable
//! [`holes_compiler::Fingerprint`] exists for display and for on-disk keys.
//! Artifacts are stored behind [`Arc`], so concurrent readers on the
//! parallel campaign paths share one copy. All maps are guarded by plain
//! mutexes held only for lookups and inserts — the expensive work
//! (compiling, tracing) runs outside the lock, so parallel misses on
//! *different* configurations never serialize. Two threads racing to fill
//! the *same* key may both do the work; the first insert wins and the
//! results are identical because compilation is deterministic.
//!
//! The cache holds everything it has computed for the lifetime of the
//! subject — artifacts in this simulator are kilobytes, and the evaluation
//! loops revisit configurations heavily, so retention is the right default.
//! Long-lived subjects probing unbounded configuration streams should call
//! [`ArtifactCache::clear`] (via `Subject::clear_cache`) at phase
//! boundaries.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use holes_compiler::{CompilerConfig, Executable};
use holes_core::Violation;
use holes_debugger::{DebugTrace, DebuggerKind};

/// Cache activity counters, taken at one instant (see
/// [`ArtifactCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Compilations actually performed (executable-map misses).
    pub compiles: usize,
    /// Debugger runs actually performed (trace-map misses).
    pub traces: usize,
    /// Full conjecture sweeps actually performed (violation-map misses).
    pub checks: usize,
    /// Lookups answered from the cache across all three maps.
    pub hits: usize,
}

impl CacheStats {
    /// Total lookups (hits plus misses) across all three maps.
    pub fn lookups(&self) -> usize {
        self.hits + self.compiles + self.traces + self.checks
    }
}

/// Memoized artifacts for one subject across compiler configurations.
///
/// Cloning is shallow: clones share the same storage, which is what
/// [`crate::Subject`]'s `Clone` wants — a cloned subject re-uses everything
/// already computed for the original.
#[derive(Clone, Default)]
pub struct ArtifactCache {
    inner: Arc<CacheInner>,
}

/// One shared, mutex-guarded artifact map.
type Shard<K, V> = Mutex<HashMap<K, Arc<V>>>;

#[derive(Default)]
struct CacheInner {
    executables: Shard<CompilerConfig, Executable>,
    traces: Shard<(CompilerConfig, DebuggerKind), DebugTrace>,
    violations: Shard<(CompilerConfig, DebuggerKind), Vec<Violation>>,
    compiles: AtomicUsize,
    traces_run: AtomicUsize,
    checks_run: AtomicUsize,
    hits: AtomicUsize,
}

/// Look up `key`, or build outside the lock and insert. First insert wins a
/// race; the counter records work actually performed.
fn memoize<K: std::hash::Hash + Eq, V>(
    map: &Shard<K, V>,
    key: K,
    misses: &AtomicUsize,
    hits: &AtomicUsize,
    build: impl FnOnce() -> V,
) -> Arc<V> {
    if let Some(found) = map.lock().unwrap_or_else(PoisonError::into_inner).get(&key) {
        hits.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(found);
    }
    let built = Arc::new(build());
    misses.fetch_add(1, Ordering::Relaxed);
    Arc::clone(
        map.lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_insert(built),
    )
}

impl ArtifactCache {
    /// The executable for a configuration, compiling on a miss.
    pub fn executable(
        &self,
        config: &CompilerConfig,
        compile: impl FnOnce() -> Executable,
    ) -> Arc<Executable> {
        memoize(
            &self.inner.executables,
            config.clone(),
            &self.inner.compiles,
            &self.inner.hits,
            compile,
        )
    }

    /// The debug trace for a configuration and debugger, tracing on a miss.
    pub fn trace(
        &self,
        config: &CompilerConfig,
        kind: DebuggerKind,
        run: impl FnOnce() -> DebugTrace,
    ) -> Arc<DebugTrace> {
        memoize(
            &self.inner.traces,
            (config.clone(), kind),
            &self.inner.traces_run,
            &self.inner.hits,
            run,
        )
    }

    /// The full violation set for a configuration and debugger, checking on
    /// a miss.
    pub fn violations(
        &self,
        config: &CompilerConfig,
        kind: DebuggerKind,
        check: impl FnOnce() -> Vec<Violation>,
    ) -> Arc<Vec<Violation>> {
        memoize(
            &self.inner.violations,
            (config.clone(), kind),
            &self.inner.checks_run,
            &self.inner.hits,
            check,
        )
    }

    /// A snapshot of the activity counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            compiles: self.inner.compiles.load(Ordering::Relaxed),
            traces: self.inner.traces_run.load(Ordering::Relaxed),
            checks: self.inner.checks_run.load(Ordering::Relaxed),
            hits: self.inner.hits.load(Ordering::Relaxed),
        }
    }

    /// Drop every memoized artifact (counters are kept; they describe work
    /// performed, not storage).
    pub fn clear(&self) {
        self.inner
            .executables
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.inner
            .traces
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.inner
            .violations
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}
