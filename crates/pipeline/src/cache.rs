//! The artifact cache: memoized compilation, tracing, and conjecture
//! checking per compiler configuration.
//!
//! The oracle behind every campaign, triage, and reduction step is
//! "compile + trace + check". Triage revisits the *same* configuration many
//! times (the full-pipeline endpoint of a bisection, the base configuration
//! of a flag search) and different pipeline stages revisit configurations
//! other stages already evaluated. The paper pays ~30 s per program per
//! conjecture for each of those queries; we make every revisit free.
//!
//! Each [`crate::Subject`] owns one [`ArtifactCache`], shared by all clones
//! of the subject. Artifacts are keyed by the full [`CompilerConfig`] (plus
//! the debugger personality for traces and violation sets) — never by a
//! lossy hash, so distinct configurations can never alias; the stable
//! [`holes_compiler::Fingerprint`] exists for display and for on-disk keys.
//! Artifacts are stored behind [`Arc`], so concurrent readers on the
//! parallel campaign paths share one copy. All maps are guarded by plain
//! mutexes held only for lookups and inserts — the expensive work
//! (compiling, tracing) runs outside the lock, so parallel misses on
//! *different* configurations never serialize. Two threads racing to fill
//! the *same* key may both do the work; the first insert wins and the
//! results are identical because compilation is deterministic.
//!
//! The cache holds everything it has computed for the lifetime of the
//! subject — artifacts in this simulator are kilobytes, and the evaluation
//! loops revisit configurations heavily, so retention is the right default.
//! Long-lived subjects probing unbounded configuration streams should call
//! [`ArtifactCache::clear`] (via `Subject::clear_cache`) at phase
//! boundaries.
//!
//! A cache may additionally be bound to a persistent [`ArtifactStore`]
//! ([`ArtifactCache::attach_store`]) as a **write-through second level**:
//! in-memory misses first try to load the artifact from disk, and freshly
//! computed artifacts are spilled back, so later *processes* revisiting the
//! same configurations skip the work entirely (see [`crate::store`]).
//!
//! Two auxiliary maps make the oracle's remaining work cheap. **Stop
//! plans** ([`ArtifactCache::stop_plan`]) hold the per-(configuration,
//! debugger) [`StopPlan`]s the tracer services breakpoint stops from —
//! resolved once, reused by every later trace of that executable. **Pass
//! snapshots** ([`ArtifactCache::snapshots`]) hold the recorded IR
//! checkpoints of a base configuration's pipeline run, from which any
//! pass-budget sibling is derived by code generation alone — so a triage
//! bisection probing a dozen budgets runs the optimization pipeline once.
//! [`CacheStats::codegen_only`] and [`CacheStats::plan_hits`] make both
//! savings observable.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use holes_compiler::{CompilerConfig, Executable, PassSnapshots};
use holes_core::Violation;
use holes_debugger::{DebugTrace, DebuggerKind, StopPlan};

use crate::store::{ArtifactStore, SubjectKey};

/// Cache activity counters, taken at one instant (see
/// [`ArtifactCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Full compilations actually performed (executable-map misses the
    /// whole pipeline had to run for).
    pub compiles: usize,
    /// Debugger runs actually performed (trace-map misses).
    pub traces: usize,
    /// Full conjecture sweeps actually performed (violation-map misses).
    pub checks: usize,
    /// Lookups answered from the cache across all three maps.
    pub hits: usize,
    /// In-memory misses answered by the persistent store instead of being
    /// recomputed (see [`crate::store`]); zero when no store is attached.
    pub disk_loads: usize,
    /// Executable-map misses satisfied by **code generation alone**: the
    /// requested configuration was a pass-budget prefix of an already
    /// recorded pipeline run, so the executable was derived from its IR
    /// checkpoint instead of re-running the pipeline (see
    /// [`holes_compiler::PassSnapshots`]). Proves a bisection performs no
    /// full recompiles for non-trunk budgets.
    pub codegen_only: usize,
    /// Breakpoint stops answered from a precomputed
    /// [`holes_debugger::StopPlan`] — a plan lookup plus machine reads —
    /// instead of a per-stop DIE traversal. Proves the tracing oracle ran
    /// on the allocation-free hot path.
    pub plan_hits: usize,
}

impl CacheStats {
    /// Total lookups (hits plus misses) across all three maps. Stop-plan
    /// hits are per *stop*, not per lookup, and are excluded.
    pub fn lookups(&self) -> usize {
        self.hits + self.compiles + self.traces + self.checks + self.disk_loads + self.codegen_only
    }

    /// Fold another snapshot into this one (used to aggregate per-subject
    /// stats over a whole campaign pool).
    pub fn absorb(&mut self, other: CacheStats) {
        self.compiles += other.compiles;
        self.traces += other.traces;
        self.checks += other.checks;
        self.hits += other.hits;
        self.disk_loads += other.disk_loads;
        self.codegen_only += other.codegen_only;
        self.plan_hits += other.plan_hits;
    }
}

/// Memoized artifacts for one subject across compiler configurations.
///
/// Cloning is shallow: clones share the same storage, which is what
/// [`crate::Subject`]'s `Clone` wants — a cloned subject re-uses everything
/// already computed for the original.
#[derive(Clone, Default)]
pub struct ArtifactCache {
    inner: Arc<CacheInner>,
}

/// One shared, mutex-guarded artifact map.
type Shard<K, V> = Mutex<HashMap<K, Arc<V>>>;

/// The persistent second level a cache may be bound to: a shared store plus
/// the owning subject's stable on-disk identity.
struct StoreBinding {
    store: Arc<ArtifactStore>,
    subject: SubjectKey,
}

#[derive(Default)]
struct CacheInner {
    executables: Shard<CompilerConfig, Executable>,
    traces: Shard<(CompilerConfig, DebuggerKind), DebugTrace>,
    violations: Shard<(CompilerConfig, DebuggerKind), Vec<Violation>>,
    /// Precomputed stop plans, one per (configuration, debugger) — the
    /// per-executable resolution [`holes_debugger::trace_with_plan`] runs
    /// stops through.
    plans: Shard<(CompilerConfig, DebuggerKind), StopPlan>,
    /// Recorded pass-prefix checkpoints, keyed by the **budget-free** base
    /// configuration; any budgeted sibling derives from them.
    snapshots: Shard<CompilerConfig, PassSnapshots>,
    compiles: AtomicUsize,
    traces_run: AtomicUsize,
    checks_run: AtomicUsize,
    hits: AtomicUsize,
    disk_loads: AtomicUsize,
    codegen_only: AtomicUsize,
    plan_hits: AtomicUsize,
    store: OnceLock<StoreBinding>,
}

/// Look up `key`; on an in-memory miss try the persistent store (`load`),
/// then a cheap derivation (`derive` — the snapshot codegen-only path;
/// traces and violations pass a constant `None`), and only then build
/// outside the lock — writing fresh artifacts through to the store
/// (`save`). First insert wins a race; the counters record work actually
/// performed (a disk load is neither a hit nor a recompute, a derivation is
/// counted by `derives`).
#[allow(clippy::too_many_arguments)] // counters + staged closures; a param struct would obscure more than it helps
fn memoize<K: std::hash::Hash + Eq, V>(
    map: &Shard<K, V>,
    key: K,
    misses: &AtomicUsize,
    hits: &AtomicUsize,
    disk_loads: &AtomicUsize,
    derives: &AtomicUsize,
    load: impl FnOnce() -> Option<V>,
    derive: impl FnOnce() -> Option<V>,
    save: impl FnOnce(&V),
    build: impl FnOnce() -> V,
) -> Arc<V> {
    if let Some(found) = map.lock().unwrap_or_else(PoisonError::into_inner).get(&key) {
        hits.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(found);
    }
    let built = match load() {
        Some(loaded) => {
            disk_loads.fetch_add(1, Ordering::Relaxed);
            Arc::new(loaded)
        }
        None => match derive() {
            Some(derived) => {
                let derived = Arc::new(derived);
                derives.fetch_add(1, Ordering::Relaxed);
                save(&derived);
                derived
            }
            None => {
                let built = Arc::new(build());
                misses.fetch_add(1, Ordering::Relaxed);
                save(&built);
                built
            }
        },
    };
    Arc::clone(
        map.lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_insert(built),
    )
}

impl ArtifactCache {
    /// Bind this cache (and every clone sharing its storage) to a persistent
    /// store as its write-through second level. At most one binding takes
    /// effect per cache; later calls are no-ops.
    pub fn attach_store(&self, store: Arc<ArtifactStore>, subject: SubjectKey) {
        let _ = self.inner.store.set(StoreBinding { store, subject });
    }

    /// The store this cache is bound to, if any.
    pub fn store(&self) -> Option<&Arc<ArtifactStore>> {
        self.inner.store.get().map(|binding| &binding.store)
    }

    /// The executable for a configuration, compiling on a miss — after
    /// consulting the persistent store (when one is attached) and the
    /// caller's cheap derivation (`derive`; `Subject` supplies the
    /// snapshot codegen-only path for budgeted configurations, counted by
    /// [`CacheStats::codegen_only`]).
    pub fn executable(
        &self,
        config: &CompilerConfig,
        derive: impl FnOnce() -> Option<Executable>,
        compile: impl FnOnce() -> Executable,
    ) -> Arc<Executable> {
        let binding = self.inner.store.get();
        memoize(
            &self.inner.executables,
            config.clone(),
            &self.inner.compiles,
            &self.inner.hits,
            &self.inner.disk_loads,
            &self.inner.codegen_only,
            || binding.and_then(|b| b.store.load_executable(b.subject, config)),
            derive,
            |built| {
                if let Some(b) = binding {
                    b.store.save_executable(b.subject, built);
                }
            },
            compile,
        )
    }

    /// The debug trace for a configuration and debugger, tracing on a miss
    /// (after consulting the persistent store, when one is attached).
    pub fn trace(
        &self,
        config: &CompilerConfig,
        kind: DebuggerKind,
        run: impl FnOnce() -> DebugTrace,
    ) -> Arc<DebugTrace> {
        let binding = self.inner.store.get();
        memoize(
            &self.inner.traces,
            (config.clone(), kind),
            &self.inner.traces_run,
            &self.inner.hits,
            &self.inner.disk_loads,
            &self.inner.codegen_only,
            || binding.and_then(|b| b.store.load_trace(b.subject, config, kind)),
            || None,
            |built| {
                if let Some(b) = binding {
                    b.store.save_trace(b.subject, config, kind, built);
                }
            },
            run,
        )
    }

    /// The full violation set for a configuration and debugger, checking on
    /// a miss (after consulting the persistent store, when one is attached).
    pub fn violations(
        &self,
        config: &CompilerConfig,
        kind: DebuggerKind,
        check: impl FnOnce() -> Vec<Violation>,
    ) -> Arc<Vec<Violation>> {
        let binding = self.inner.store.get();
        memoize(
            &self.inner.violations,
            (config.clone(), kind),
            &self.inner.checks_run,
            &self.inner.hits,
            &self.inner.disk_loads,
            &self.inner.codegen_only,
            || binding.and_then(|b| b.store.load_violations(b.subject, config, kind)),
            || None,
            |built| {
                if let Some(b) = binding {
                    b.store.save_violations(b.subject, config, kind, built);
                }
            },
            check,
        )
    }

    /// The stop plan for a configuration and debugger, computing it on a
    /// miss. Plans live next to traces (same key) but carry no counters of
    /// their own: the per-stop reuse they enable is what
    /// [`CacheStats::plan_hits`] counts.
    pub fn stop_plan(
        &self,
        config: &CompilerConfig,
        kind: DebuggerKind,
        compute: impl FnOnce() -> StopPlan,
    ) -> Arc<StopPlan> {
        get_or_insert(&self.inner.plans, (config.clone(), kind), compute)
    }

    /// The recorded pass-prefix checkpoints for a **budget-free** base
    /// configuration, recording the pipeline once on a miss.
    pub fn snapshots(
        &self,
        base: &CompilerConfig,
        record: impl FnOnce() -> PassSnapshots,
    ) -> Arc<PassSnapshots> {
        debug_assert!(base.pass_budget.is_none(), "snapshot keys are budget-free");
        get_or_insert(&self.inner.snapshots, base.clone(), record)
    }

    /// Record breakpoint stops that were answered from a precomputed stop
    /// plan (see [`CacheStats::plan_hits`]).
    pub fn note_plan_hits(&self, stops: usize) {
        self.inner.plan_hits.fetch_add(stops, Ordering::Relaxed);
    }

    /// A snapshot of the activity counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            compiles: self.inner.compiles.load(Ordering::Relaxed),
            traces: self.inner.traces_run.load(Ordering::Relaxed),
            checks: self.inner.checks_run.load(Ordering::Relaxed),
            hits: self.inner.hits.load(Ordering::Relaxed),
            disk_loads: self.inner.disk_loads.load(Ordering::Relaxed),
            codegen_only: self.inner.codegen_only.load(Ordering::Relaxed),
            plan_hits: self.inner.plan_hits.load(Ordering::Relaxed),
        }
    }

    /// Drop every memoized artifact (counters are kept; they describe work
    /// performed, not storage).
    pub fn clear(&self) {
        self.inner
            .executables
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.inner
            .traces
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.inner
            .violations
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.inner
            .plans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.inner
            .snapshots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}

/// Plain counter-free get-or-insert for the auxiliary maps (plans,
/// snapshots); first insert wins a race, like [`memoize`].
fn get_or_insert<K: std::hash::Hash + Eq, V>(
    map: &Shard<K, V>,
    key: K,
    build: impl FnOnce() -> V,
) -> Arc<V> {
    if let Some(found) = map.lock().unwrap_or_else(PoisonError::into_inner).get(&key) {
        return Arc::clone(found);
    }
    let built = Arc::new(build());
    Arc::clone(
        map.lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_insert(built),
    )
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}
